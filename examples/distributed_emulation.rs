//! Distributed A-SBP emulation (the paper's §6 future work: "how best to
//! distribute A-SBP and H-SBP"): what happens to convergence when workers
//! evaluate against a blockmodel that is `d` sweeps stale (synchronisation
//! every `d` rounds), and how batched rebuilds (the paper's proposed
//! "batched A-SBP") recover accuracy without any serial processing.
//!
//! ```text
//! cargo run --release --example distributed_emulation
//! ```

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::metrics::nmi;
use hsbp::{run_sbp, SbpConfig, Variant};

fn main() {
    let data = generate(DcsbmConfig {
        num_vertices: 1200,
        num_communities: 8,
        target_num_edges: 12_000,
        within_between_ratio: 2.0,
        seed: 33,
        ..Default::default()
    });
    println!(
        "graph: {} vertices, {} edges, 8 planted communities\n",
        data.graph.num_vertices(),
        data.graph.num_edges()
    );

    println!("--- staleness (sync every d sweeps; d = 1 is the paper's A-SBP) ---");
    println!("{:>4} {:>8} {:>10} {:>8}", "d", "NMI", "MDL_norm", "sweeps");
    for staleness in [1usize, 2, 4, 8] {
        let cfg = SbpConfig {
            variant: Variant::AsyncGibbs,
            asbp_staleness: staleness,
            seed: 5,
            ..Default::default()
        };
        let result = run_sbp(&data.graph, &cfg);
        println!(
            "{:>4} {:>8.3} {:>10.4} {:>8}",
            staleness,
            nmi(&data.ground_truth, &result.assignment),
            result.normalized_mdl,
            result.stats.mcmc_sweeps
        );
    }

    println!("\n--- batched A-SBP (k rebuilds per sweep; paper conclusion) ---");
    println!("{:>4} {:>8} {:>10} {:>8}", "k", "NMI", "MDL_norm", "sweeps");
    for batches in [1usize, 2, 4, 8] {
        let cfg = SbpConfig {
            variant: Variant::AsyncGibbs,
            asbp_batches: batches,
            seed: 5,
            ..Default::default()
        };
        let result = run_sbp(&data.graph, &cfg);
        println!(
            "{:>4} {:>8.3} {:>10.4} {:>8}",
            batches,
            nmi(&data.ground_truth, &result.assignment),
            result.normalized_mdl,
            result.stats.mcmc_sweeps
        );
    }
}
