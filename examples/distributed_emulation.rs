//! Distributed SBP emulation: sharded divide-and-conquer vs. the
//! single-model driver.
//!
//! The paper parallelises MCMC inside one shared-memory blockmodel; its §6
//! future work asks how to *distribute* SBP. This example runs the
//! `hsbp-shard` pipeline (partition → per-shard SBP → stitch → H-SBP
//! finetune) on a generated DCSBM graph at 1/2/4/8 shards and two
//! partitioning strategies, comparing NMI against ground truth, NMI against
//! the single-model result, normalized MDL, cut fraction, and the emulated
//! distributed-rank speedup from the simulated cost model.
//!
//! ```text
//! cargo run --release --example distributed_emulation
//! ```

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::metrics::nmi;
use hsbp::shard::run_sharded_sbp_detailed;
use hsbp::{run_sbp, PartitionStrategy, SbpConfig, ShardConfig};

fn main() {
    let data = generate(DcsbmConfig {
        num_vertices: 2000,
        num_communities: 10,
        target_num_edges: 20_000,
        within_between_ratio: 2.5,
        seed: 33,
        ..Default::default()
    });
    println!(
        "graph: {} vertices, {} edges, 10 planted communities\n",
        data.graph.num_vertices(),
        data.graph.num_edges()
    );

    let single = run_sbp(
        &data.graph,
        &SbpConfig {
            seed: 5,
            ..Default::default()
        },
    );
    println!(
        "single-model baseline: {} blocks  NMI {:.3}  MDL_norm {:.4}\n",
        single.num_blocks,
        nmi(&data.ground_truth, &single.assignment),
        single.normalized_mdl
    );

    for (name, strategy) in [
        ("round-robin", PartitionStrategy::RoundRobin),
        ("degree-balanced", PartitionStrategy::DegreeBalanced),
    ] {
        println!("--- {name} partitioning ---");
        println!(
            "{:>7} {:>6} {:>8} {:>10} {:>10} {:>8} {:>9}",
            "shards", "blocks", "NMI", "NMI_single", "MDL_norm", "cut", "speedup"
        );
        for shards in [1usize, 2, 4, 8] {
            let cfg = ShardConfig {
                num_shards: shards,
                strategy: strategy.clone(),
                sbp: SbpConfig {
                    seed: 5,
                    ..Default::default()
                },
                ..Default::default()
            };
            let run = run_sharded_sbp_detailed(&data.graph, &cfg).expect("valid config");
            let speedup = run.scaling.speedup(shards).unwrap_or(1.0);
            println!(
                "{:>7} {:>6} {:>8.3} {:>10.3} {:>10.4} {:>8.3} {:>8.2}x",
                shards,
                run.result.num_blocks,
                nmi(&data.ground_truth, &run.result.assignment),
                nmi(&single.assignment, &run.result.assignment),
                run.result.normalized_mdl,
                run.cut_fraction,
                speedup
            );
        }
        println!();
    }
    println!("(speedup = emulated distributed-rank makespan at 1 rank / at k ranks;");
    println!(" accuracy falls as the cut fraction grows — see README's hsbp-shard caveat)");
}
