//! Strong scaling on a web graph: how H-SBP's MCMC runtime shrinks with
//! thread count (the paper's Fig. 7 experiment, on a `web-BerkStan`
//! surrogate instead of `soc-Slashdot0902` to show a second domain).
//!
//! The thread axis uses the deterministic simulated-thread scheduler, so
//! the curve is reproducible on any host (see DESIGN.md §3).
//!
//! ```text
//! cargo run --release --example web_strong_scaling
//! ```

use hsbp::generator::{generate, table2_by_id};
use hsbp::{run_sbp, SbpConfig, Variant};

fn main() {
    let spec = table2_by_id("web-BerkStan").expect("catalog entry");
    let config = spec.config(0.004); // ~2.7k vertices of the 685k-vertex crawl
    println!(
        "surrogate of {} ({}): V={} E≈{}\n",
        spec.id, spec.note, config.num_vertices, config.target_num_edges
    );
    let data = generate(config);

    let result = run_sbp(&data.graph, &SbpConfig::new(Variant::Hybrid, 9));
    println!(
        "H-SBP found {} communities (MDL_norm {:.4}) in {} MCMC sweeps\n",
        result.num_blocks, result.normalized_mdl, result.stats.mcmc_sweeps
    );

    println!(
        "{:>8} {:>16} {:>9} {:>11}",
        "threads", "sim MCMC time", "speedup", "efficiency"
    );
    let base = result.stats.sim_mcmc_time(1).unwrap();
    for (threads, time) in result.stats.sim_mcmc.curve() {
        let speedup = base / time;
        println!(
            "{:>8} {:>16.0} {:>8.2}x {:>10.1}%",
            threads,
            time,
            speedup,
            100.0 * speedup / threads as f64
        );
    }
    println!(
        "\n(benefit tapers once the serial 15% of high-degree vertices dominates — paper §5.5)"
    );
}
