//! Quickstart: sample a graph with planted communities, recover them with
//! all three SBP variants, and compare accuracy and (simulated) speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::metrics::{directed_modularity, nmi};
use hsbp::{run_sbp, SbpConfig, Variant};

fn main() {
    // A medium-strength community structure: 8 communities, ratio r = 2.5
    // within- to between-community edges, power-law degrees.
    let data = generate(DcsbmConfig {
        num_vertices: 1500,
        num_communities: 10,
        target_num_edges: 15_000,
        within_between_ratio: 2.5,
        degree_exponent: 2.5,
        min_degree: 2,
        max_degree: 150,
        community_size_exponent: 0.5,
        seed: 2022,
    });
    println!(
        "generated DCSBM graph: {} vertices, {} edges, {} planted communities\n",
        data.graph.num_vertices(),
        data.graph.num_edges(),
        data.config.num_communities
    );

    println!(
        "{:<8} {:>7} {:>7} {:>9} {:>11} {:>7} {:>14} {:>14}",
        "variant", "blocks", "NMI", "mod.", "MDL_norm", "sweeps", "sim t (1 thr)", "sim t (128)"
    );
    let mut sbp_mcmc_128 = None;
    for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
        let result = run_sbp(&data.graph, &SbpConfig::new(variant, 1));
        let t1 = result.stats.sim_mcmc_time(1).unwrap();
        let t128 = result.stats.sim_mcmc_time(128).unwrap();
        if variant == Variant::Metropolis {
            sbp_mcmc_128 = Some(t128);
        }
        println!(
            "{:<8} {:>7} {:>7.3} {:>9.3} {:>11.4} {:>7} {:>14.0} {:>14.0}",
            variant.name(),
            result.num_blocks,
            nmi(&data.ground_truth, &result.assignment),
            directed_modularity(&data.graph, &result.assignment),
            result.normalized_mdl,
            result.stats.mcmc_sweeps,
            t1,
            t128,
        );
        if let Some(base) = sbp_mcmc_128 {
            if variant != Variant::Metropolis {
                println!(
                    "         -> simulated MCMC-phase speedup over SBP at 128 threads: {:.1}x",
                    base / t128
                );
            }
        }
    }
}
