//! Functional-module detection in a protein-interaction-style network
//! (the paper's second motivating domain, §1): many small, dense modules
//! with sparse cross-talk, loaded from a Matrix Market file exactly the way
//! a SuiteSparse download would be.
//!
//! ```text
//! cargo run --release --example protein_modules
//! ```

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::graph::io::{read_matrix_market, write_matrix_market};
use hsbp::metrics::{adjusted_rand_index, nmi};
use hsbp::{run_sbp, SbpConfig, Variant};

fn main() {
    // Synthesize a PPI-like network: 25 small functional modules of varying
    // size, strong within-module interaction (r = 4), near-flat degrees
    // (proteins rarely have social-network-style hubs).
    let data = generate(DcsbmConfig {
        num_vertices: 1200,
        num_communities: 25,
        target_num_edges: 9000,
        within_between_ratio: 4.0,
        degree_exponent: 3.0,
        min_degree: 3,
        max_degree: 40,
        community_size_exponent: 0.7,
        seed: 17,
    });

    // Round-trip through Matrix Market to demonstrate the interchange path
    // a real dataset would take.
    let mut buffer = Vec::new();
    write_matrix_market(&data.graph, &mut buffer).expect("serialize");
    let graph = read_matrix_market(buffer.as_slice()).expect("parse");
    println!(
        "protein-interaction surrogate: {} proteins, {} interactions (via .mtx round-trip)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let result = run_sbp(&graph, &SbpConfig::new(Variant::Hybrid, 4));
    println!(
        "H-SBP found {} modules (planted: 25), MDL_norm {:.4}",
        result.num_blocks, result.normalized_mdl
    );
    println!(
        "agreement with planted modules: NMI {:.3}, adjusted Rand {:.3}",
        nmi(&data.ground_truth, &result.assignment),
        adjusted_rand_index(&data.ground_truth, &result.assignment)
    );

    // Print the five largest recovered modules.
    let mut sizes = std::collections::HashMap::new();
    for &b in &result.assignment {
        *sizes.entry(b).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<(u32, usize)> = sizes.into_iter().collect();
    sizes.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\nlargest recovered modules:");
    for (label, size) in sizes.into_iter().take(5) {
        println!("  module {label:>3}: {size} proteins");
    }
}
