//! Social-media community detection (the paper's motivating use case §1):
//! run SBP and H-SBP on a scaled surrogate of the `soc-Slashdot0902` social
//! graph from Table 2 and compare result quality and runtime.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use hsbp::generator::{generate, table2_by_id};
use hsbp::graph::GraphStats;
use hsbp::metrics::{directed_modularity, normalized_mdl};
use hsbp::{run_sbp, SbpConfig, Variant};

fn main() {
    let spec = table2_by_id("soc-Slashdot0902").expect("catalog entry");
    // 1/40 of the real dataset keeps this example under a minute.
    let config = spec.config(0.025);
    println!(
        "surrogate of {} ({}): paper size V={} E={}, surrogate V={} E≈{}",
        spec.id,
        spec.note,
        spec.paper_vertices,
        spec.paper_edges,
        config.num_vertices,
        config.target_num_edges
    );
    let data = generate(config);
    let stats = GraphStats::compute(&data.graph);
    println!(
        "degree: min {} max {} mean {:.1}; power-law exponent ≈ {:.2}\n",
        stats.min_degree, stats.max_degree, stats.mean_degree, stats.power_law_exponent
    );

    let mut baseline: Option<f64> = None;
    for variant in [Variant::Metropolis, Variant::Hybrid] {
        let start = std::time::Instant::now();
        let result = run_sbp(&data.graph, &SbpConfig::new(variant, 3));
        let t128 = result.stats.sim_mcmc_time(128).unwrap();
        println!(
            "{:<6} -> {} communities, MDL_norm {:.4}, modularity {:.3}, wall {:.1?}",
            variant.name(),
            result.num_blocks,
            normalized_mdl(&data.graph, &result.assignment),
            directed_modularity(&data.graph, &result.assignment),
            start.elapsed(),
        );
        match baseline {
            None => baseline = Some(t128),
            Some(base) => println!(
                "        simulated 128-thread MCMC speedup over SBP: {:.1}x",
                base / t128
            ),
        }
    }
}
