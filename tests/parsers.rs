//! Parser hardening: the three input parsers (Matrix Market, edge list,
//! METIS `.part.K`) must turn every malformed input into a line-numbered
//! `IoError::Parse` — never panic — and accept every well-formed input.
//!
//! Coverage comes from two directions: a curated corpus of malformed files
//! under `tests/data/`, and property tests throwing random byte soup,
//! token soup and single-token corruptions at each parser.

use hsbp::graph::io::{load_path, read_edge_list, read_matrix_market, write_edge_list, IoError};
use hsbp::graph::partition::read_partition;
use proptest::prelude::*;
use std::path::PathBuf;

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

/// Parse one corpus file with the parser its extension selects.
fn parse_corpus_file(name: &str) -> Result<(), IoError> {
    let path = data(name);
    let bytes = std::fs::read(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    match name.rsplit('.').next() {
        Some("mtx") => read_matrix_market(bytes.as_slice()).map(|_| ()),
        Some("edges") => read_edge_list(bytes.as_slice(), None).map(|_| ()),
        Some("part") => read_partition(bytes.as_slice()).map(|_| ()),
        other => panic!("unknown corpus extension {other:?}"),
    }
}

#[test]
fn malformed_corpus_yields_line_numbered_errors() {
    // (file, 1-based line the diagnostic must point at)
    let corpus: [(&str, usize); 12] = [
        ("mm_bad_header.mtx", 1),
        ("mm_bad_field.mtx", 1),
        ("mm_bad_size.mtx", 2),
        ("mm_index_oob.mtx", 3),
        ("mm_truncated.mtx", 4),
        ("mm_bad_value.mtx", 3),
        ("el_bad_source.edges", 1),
        ("el_missing_target.edges", 1),
        ("el_bad_weight.edges", 1),
        ("part_bad_id.part", 3),
        ("part_two_ids.part", 1),
        ("part_empty.part", 1),
    ];
    for (name, expected_line) in corpus {
        match parse_corpus_file(name) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, expected_line, "{name}: wrong line in `{message}`");
                assert!(!message.is_empty(), "{name}: empty diagnostic");
            }
            Err(other) => panic!("{name}: expected Parse error, got {other:?}"),
            Ok(()) => panic!("{name}: malformed input parsed successfully"),
        }
    }
}

#[test]
fn load_path_reports_corpus_errors_without_panicking() {
    for name in [
        "mm_bad_header.mtx",
        "mm_truncated.mtx",
        "el_bad_weight.edges",
    ] {
        let err = load_path(data(name)).expect_err(name);
        assert!(err.to_string().contains("line"), "{name}: {err}");
    }
}

/// A pool of tokens that exercises every parser code path: valid numbers,
/// signed/float/overflow numbers, comments, header fragments and garbage.
const TOKENS: [&str; 16] = [
    "0",
    "1",
    "17",
    "-3",
    "4.5",
    "99999999999999999999",
    "frog",
    "%",
    "#",
    "%%MatrixMarket",
    "matrix",
    "coordinate",
    "pattern",
    "integer",
    "general",
    "",
];

fn token_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::collection::vec(0usize..TOKENS.len(), 0..6), 0..12)
        .prop_map(|lines| {
            lines
                .iter()
                .map(|line| {
                    line.iter()
                        .map(|&t| TOKENS[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect::<Vec<_>>()
                .join("\n")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (including invalid UTF-8) must come back as a clean
    /// `Result` from all three parsers.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_matrix_market(bytes.as_slice());
        let _ = read_edge_list(bytes.as_slice(), None);
        let _ = read_partition(bytes.as_slice());
    }

    /// Structured token soup — much likelier than raw bytes to get past the
    /// early header checks and into the per-line parsing.
    #[test]
    fn token_soup_never_panics(text in token_soup()) {
        let _ = read_matrix_market(text.as_bytes());
        let _ = read_edge_list(text.as_bytes(), None);
        let _ = read_partition(text.as_bytes());
    }

    /// Every well-formed random edge list parses and round-trips.
    #[test]
    fn valid_edge_lists_roundtrip(
        edges in proptest::collection::vec((0u32..40, 0u32..40, 1u64..5), 1..50)
    ) {
        let text: String = edges
            .iter()
            .map(|(u, v, w)| format!("{u} {v} {w}\n"))
            .collect();
        let g = read_edge_list(text.as_bytes(), None).expect("valid edge list");
        // Parallel edges collapse into one weighted edge at build time.
        let unique: std::collections::HashSet<(u32, u32)> =
            edges.iter().map(|&(u, v, _)| (u, v)).collect();
        prop_assert_eq!(g.num_edges(), unique.len());
        let weight: u64 = edges.iter().map(|&(_, _, w)| w).sum();
        prop_assert_eq!(g.total_weight(), weight);

        let mut out = Vec::new();
        write_edge_list(&g, &mut out).expect("write");
        let g2 = read_edge_list(out.as_slice(), None).expect("reparse");
        prop_assert_eq!(g, g2);
    }

    /// Corrupting one token of a valid edge list fails with the exact line
    /// number of the corruption.
    #[test]
    fn corrupted_line_is_reported_precisely(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 2..30),
        pick in any::<u64>(),
    ) {
        let bad = (pick as usize) % edges.len();
        let text: String = edges
            .iter()
            .enumerate()
            .map(|(i, (u, v))| {
                if i == bad {
                    format!("{u} garbage\n")
                } else {
                    format!("{u} {v}\n")
                }
            })
            .collect();
        match read_edge_list(text.as_bytes(), None) {
            Err(IoError::Parse { line, .. }) => prop_assert_eq!(line, bad + 1),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    /// Same precision for the partition parser.
    #[test]
    fn corrupted_partition_line_is_reported_precisely(
        parts in proptest::collection::vec(0u32..8, 2..30),
        pick in any::<u64>(),
    ) {
        let bad = (pick as usize) % parts.len();
        let text: String = parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if i == bad {
                    "nope\n".to_string()
                } else {
                    format!("{p}\n")
                }
            })
            .collect();
        match read_partition(text.as_bytes()) {
            Err(IoError::Parse { line, .. }) => prop_assert_eq!(line, bad + 1),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }
}
