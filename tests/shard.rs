//! Integration tests of the sharded divide-and-conquer pipeline against the
//! single-model driver (the ISSUE's acceptance criterion), plus the
//! `hsbp shard` CLI subcommand end-to-end.

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::graph::partition::write_partition_file;
use hsbp::metrics::nmi;
use hsbp::shard::run_sharded_sbp_detailed;
use hsbp::{run_sbp, run_sharded_sbp, PartitionStrategy, SbpConfig, ShardConfig};
use std::path::PathBuf;
use std::process::Command;

fn hsbp_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hsbp"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hsbp-shard-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Acceptance criterion: 4 shards on a generated DCSBM graph with ≥5k
/// vertices and catalog-default parameters must land within 0.05 NMI of
/// the single-model result.
#[test]
fn four_shards_match_single_model_on_5k_dcsbm() {
    let data = generate(DcsbmConfig {
        num_vertices: 5000,
        num_communities: 16,
        target_num_edges: 50_000,
        seed: 71,
        ..Default::default()
    });

    let single = run_sbp(
        &data.graph,
        &SbpConfig {
            seed: 9,
            ..Default::default()
        },
    );
    let sharded = run_sharded_sbp(
        &data.graph,
        &ShardConfig {
            num_shards: 4,
            sbp: SbpConfig {
                seed: 9,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("valid config");

    assert_eq!(sharded.assignment.len(), 5000);
    assert!(sharded.num_blocks >= 2);
    assert!(sharded.mdl.total.is_finite());

    let nmi_single = nmi(&data.ground_truth, &single.assignment);
    let nmi_sharded = nmi(&data.ground_truth, &sharded.assignment);
    assert!(
        nmi_sharded >= nmi_single - 0.05,
        "sharded NMI {nmi_sharded:.4} trails single-model NMI {nmi_single:.4} by more than 0.05 \
         (single found {} blocks, sharded {})",
        single.num_blocks,
        sharded.num_blocks
    );
}

/// The detailed run reports coherent cut accounting, shard summaries and a
/// monotone emulated scaling curve.
#[test]
fn detailed_run_reports_are_coherent() {
    let data = generate(DcsbmConfig {
        num_vertices: 600,
        num_communities: 6,
        target_num_edges: 6000,
        seed: 13,
        ..Default::default()
    });
    let run = run_sharded_sbp_detailed(&data.graph, &ShardConfig::new(3, 2)).expect("valid config");
    assert_eq!(run.shard_summaries.len(), 3);
    let shard_vertices: usize = run.shard_summaries.iter().map(|s| s.num_vertices).sum();
    assert_eq!(shard_vertices, 600);
    assert!((0.0..=1.0).contains(&run.cut_fraction));
    assert!(run.stitch.blocks_stitched >= run.result.num_blocks);
    assert!(run.scaling.curve.first().map(|&(r, _)| r) == Some(1));
    // Finetune must not lose the stitched state: best MDL ≤ raw union MDL.
    assert!(run.result.mdl.total <= run.stitch.stitched_mdl + 1e-9);
}

/// An external `.part.K` file drives the same pipeline via the public API.
#[test]
fn partition_file_strategy_runs() {
    let data = generate(DcsbmConfig {
        num_vertices: 300,
        num_communities: 4,
        target_num_edges: 2400,
        seed: 29,
        ..Default::default()
    });
    // A deliberately coarse external partition: halves of the id space.
    let parts: Vec<u32> = (0..300).map(|v| u32::from(v >= 150)).collect();
    let path = tmp("external.part.2");
    write_partition_file(&parts, &path).unwrap();
    let loaded = hsbp::graph::partition::read_partition_file(&path).unwrap();
    let result = run_sharded_sbp(
        &data.graph,
        &ShardConfig {
            num_shards: 1, // overridden by the file's part count
            strategy: PartitionStrategy::FromParts(loaded),
            ..Default::default()
        },
    )
    .expect("valid config");
    assert_eq!(result.assignment.len(), 300);
    assert!(result.num_blocks >= 1);
}

/// `hsbp shard` exercises the same path end-to-end: generate → shard with
/// compare → labels file covering every vertex.
#[test]
fn shard_cli_end_to_end() {
    let mtx = tmp("cli.mtx");
    let labels = tmp("cli-labels.tsv");
    let out = hsbp_bin()
        .args([
            "generate",
            "--vertices",
            "400",
            "--edges",
            "3600",
            "--communities",
            "5",
        ])
        .args([
            "--ratio",
            "3.0",
            "--seed",
            "17",
            "--output",
            mtx.to_str().unwrap(),
        ])
        .output()
        .expect("run hsbp generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = hsbp_bin()
        .args(["shard", "--input", mtx.to_str().unwrap(), "--shards", "4"])
        .args(["--strategy", "degree", "--seed", "3", "--compare", "true"])
        .args(["--output", labels.to_str().unwrap()])
        .output()
        .expect("run hsbp shard");
    assert!(
        out.status.success(),
        "shard failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cut fraction"), "stderr:\n{stderr}");
    assert!(stderr.contains("emulated"), "stderr:\n{stderr}");
    assert!(stderr.contains("NMI(sharded, single)"), "stderr:\n{stderr}");

    let body = std::fs::read_to_string(&labels).unwrap();
    assert_eq!(body.lines().count(), 400);

    // A partition file drives the CLI too.
    let parts: Vec<u32> = (0..400).map(|v| v % 3).collect();
    let part_path = tmp("cli.part.3");
    write_partition_file(&parts, &part_path).unwrap();
    let out = hsbp_bin()
        .args([
            "shard",
            "--input",
            mtx.to_str().unwrap(),
            "--strategy",
            "file",
        ])
        .args(["--parts", part_path.to_str().unwrap(), "--seed", "3"])
        .output()
        .expect("run hsbp shard with parts file");
    assert!(
        out.status.success(),
        "shard(file) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
