//! Property suite for the end-of-sweep consolidation: the incremental
//! `apply_move` replay and the classic O(E) rebuild must produce
//! bit-identical runs — same assignment, same MDL, same trajectory — for
//! every variant, on random graphs, and under budget truncation. `Verify`
//! mode re-checks the same contract inside every sweep and turns any
//! divergence into `HsbpError::StateDrift`.

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::{
    run_sbp_budgeted, run_sbp_checked, CancelToken, Consolidation, Graph, RunBudget, SbpConfig,
    SbpResult, StopCause, Variant,
};
use proptest::prelude::*;

const VARIANTS: [Variant; 4] = [
    Variant::Metropolis,
    Variant::AsyncGibbs,
    Variant::Hybrid,
    Variant::ExactAsync,
];

fn planted_graph(seed: u64) -> Graph {
    generate(DcsbmConfig {
        num_vertices: 150,
        num_communities: 3,
        target_num_edges: 1200,
        within_between_ratio: 3.0,
        seed,
        ..Default::default()
    })
    .graph
}

fn run_with(graph: &Graph, cfg: &SbpConfig, mode: Consolidation) -> SbpResult {
    let cfg = SbpConfig {
        consolidation: mode,
        ..cfg.clone()
    };
    match run_sbp_checked(graph, &cfg) {
        Ok(result) => result,
        Err(e) => panic!("{mode:?} run failed: {e}"),
    }
}

fn assert_identical(a: &SbpResult, b: &SbpResult, label: &str) {
    assert_eq!(a.assignment, b.assignment, "{label}: assignment diverged");
    assert_eq!(a.num_blocks, b.num_blocks, "{label}: block count diverged");
    assert_eq!(a.mdl.total, b.mdl.total, "{label}: MDL diverged");
    assert_eq!(a.trajectory, b.trajectory, "{label}: trajectory diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole acceptance: all four consolidation modes yield bit-identical
    /// full runs for every variant. `Verify` completing at all proves the
    /// in-sweep equality check never fired.
    #[test]
    fn consolidation_modes_bit_identical_runs(
        seed in 0u64..500,
        which in 0usize..4,
        graph_seed in 0u64..5,
    ) {
        let graph = planted_graph(graph_seed);
        let cfg = SbpConfig::new(VARIANTS[which], seed);
        let incremental = run_with(&graph, &cfg, Consolidation::ForceIncremental);
        let rebuild = run_with(&graph, &cfg, Consolidation::ForceRebuild);
        let auto = run_with(&graph, &cfg, Consolidation::Auto);
        let verify = run_with(&graph, &cfg, Consolidation::Verify);
        assert_identical(&incremental, &rebuild, "incremental vs rebuild");
        assert_identical(&incremental, &auto, "incremental vs auto");
        assert_identical(&incremental, &verify, "incremental vs verify");
        // The forced modes actually exercise their paths (Metropolis applies
        // moves immediately and never consolidates).
        if VARIANTS[which] != Variant::Metropolis {
            prop_assert_eq!(incremental.stats.consolidations_rebuild, 0);
            prop_assert!(incremental.stats.consolidations_incremental > 0);
            prop_assert_eq!(rebuild.stats.consolidated_moves, 0);
            prop_assert!(rebuild.stats.consolidations_rebuild > 0);
        }
    }

    /// The contract survives budget truncation: a sweep-budgeted run stops
    /// at the same point with the same state regardless of consolidation
    /// strategy.
    #[test]
    fn consolidation_modes_bit_identical_under_truncation(
        seed in 0u64..500,
        which in 0usize..4,
    ) {
        let graph = planted_graph(2);
        let cfg = SbpConfig::new(VARIANTS[which], seed);
        let full = run_with(&graph, &cfg, Consolidation::ForceRebuild);
        prop_assume!(full.stats.mcmc_sweeps >= 2);
        let budget = RunBudget::unlimited().with_max_total_sweeps(full.stats.mcmc_sweeps / 2);
        let token = CancelToken::new();
        let mut cut_runs = Vec::new();
        for mode in [
            Consolidation::ForceIncremental,
            Consolidation::ForceRebuild,
            Consolidation::Verify,
        ] {
            let cfg = SbpConfig { consolidation: mode, ..cfg.clone() };
            let cut = match run_sbp_budgeted(&graph, &cfg, &budget, &token) {
                Ok(result) => result,
                Err(e) => panic!("{mode:?} truncated run failed: {e}"),
            };
            prop_assert_eq!(cut.stats.stop_cause, StopCause::SweepBudgetExhausted);
            cut_runs.push(cut);
        }
        assert_identical(&cut_runs[0], &cut_runs[1], "truncated incremental vs rebuild");
        assert_identical(&cut_runs[0], &cut_runs[2], "truncated incremental vs verify");
    }
}
