//! Cross-crate integration tests through the `hsbp` facade: the full
//! pipeline a downstream user would run — generate (or load) a graph,
//! detect communities, evaluate quality — plus the paper's headline
//! qualitative claims at miniature scale.

use hsbp::generator::{generate, table1_reported, table2_by_id, DcsbmConfig};
use hsbp::graph::io::{read_matrix_market, write_matrix_market};
use hsbp::metrics::{directed_modularity, nmi, normalized_mdl, pearson};
use hsbp::{run_sbp, SbpConfig, Variant};

fn quick_cfg(variant: Variant, seed: u64) -> SbpConfig {
    SbpConfig {
        variant,
        seed,
        ..Default::default()
    }
}

#[test]
fn facade_exposes_full_pipeline() {
    let data = generate(DcsbmConfig {
        num_vertices: 400,
        num_communities: 5,
        target_num_edges: 3600,
        within_between_ratio: 3.0,
        seed: 5,
        ..Default::default()
    });
    let result = run_sbp(&data.graph, &quick_cfg(Variant::Hybrid, 1));
    assert!(nmi(&data.ground_truth, &result.assignment) > 0.8);
    assert!(normalized_mdl(&data.graph, &result.assignment) < 1.0);
    assert!(directed_modularity(&data.graph, &result.assignment) > 0.2);
}

#[test]
fn matrix_market_to_communities() {
    // The SuiteSparse user journey: graph arrives as .mtx, leaves as labels.
    let data = generate(DcsbmConfig {
        num_vertices: 300,
        num_communities: 4,
        target_num_edges: 2400,
        within_between_ratio: 3.0,
        seed: 6,
        ..Default::default()
    });
    let mut mtx = Vec::new();
    write_matrix_market(&data.graph, &mut mtx).unwrap();
    let graph = read_matrix_market(mtx.as_slice()).unwrap();
    assert_eq!(graph, data.graph);
    let result = run_sbp(&graph, &quick_cfg(Variant::Metropolis, 2));
    assert_eq!(result.assignment.len(), 300);
    assert!(nmi(&data.ground_truth, &result.assignment) > 0.7);
}

#[test]
fn catalog_specs_run_end_to_end() {
    // One sparse and one dense Table 1 entry, miniature scale.
    for id in ["S2", "S5"] {
        let spec = table1_reported().into_iter().find(|s| s.id == id).unwrap();
        let data = generate(spec.config(0.002));
        let result = run_sbp(&data.graph, &quick_cfg(Variant::Hybrid, 3));
        assert!(result.num_blocks >= 1, "{id}: no blocks found");
        assert!(result.normalized_mdl.is_finite());
    }
}

#[test]
fn paper_claim_hsbp_matches_sbp_quality() {
    // §5.3: H-SBP matches SBP's result quality. At miniature scale allow a
    // small tolerance in normalized MDL.
    let spec = table2_by_id("wiki-Vote").unwrap();
    let data = generate(spec.config(0.1));
    let sbp = run_sbp(&data.graph, &quick_cfg(Variant::Metropolis, 4));
    let hsbp = run_sbp(&data.graph, &quick_cfg(Variant::Hybrid, 4));
    assert!(
        (hsbp.normalized_mdl - sbp.normalized_mdl).abs() < 0.05,
        "H-SBP {} vs SBP {}",
        hsbp.normalized_mdl,
        sbp.normalized_mdl
    );
}

#[test]
fn paper_claim_mdl_norm_tracks_nmi() {
    // Fig. 3's direction: across graphs of varying community strength,
    // normalized MDL correlates negatively with NMI.
    let mut nmis = Vec::new();
    let mut norms = Vec::new();
    for (i, ratio) in [0.2, 0.8, 1.5, 3.0, 5.0].iter().enumerate() {
        let data = generate(DcsbmConfig {
            num_vertices: 300,
            num_communities: 5,
            target_num_edges: 2700,
            within_between_ratio: *ratio,
            seed: 100 + i as u64,
            ..Default::default()
        });
        let result = run_sbp(&data.graph, &quick_cfg(Variant::Metropolis, 9));
        nmis.push(nmi(&data.ground_truth, &result.assignment));
        norms.push(result.normalized_mdl);
    }
    let c = pearson(&nmis, &norms);
    assert!(
        c.r < -0.5,
        "expected strong negative correlation, got r = {}",
        c.r
    );
}

#[test]
fn paper_claim_simulated_speedup_ordering() {
    // Figs. 4b/6 at miniature scale: A-SBP MCMC > H-SBP MCMC > 1x.
    let data = generate(DcsbmConfig {
        num_vertices: 500,
        num_communities: 6,
        target_num_edges: 5000,
        within_between_ratio: 2.5,
        seed: 11,
        ..Default::default()
    });
    let mut t128 = std::collections::HashMap::new();
    for variant in [Variant::Metropolis, Variant::Hybrid, Variant::AsyncGibbs] {
        let result = run_sbp(&data.graph, &quick_cfg(variant, 5));
        t128.insert(variant.name(), result.stats.sim_mcmc_time(128).unwrap());
    }
    let sbp = t128["SBP"];
    assert!(sbp / t128["A-SBP"] > sbp / t128["H-SBP"]);
    assert!(sbp / t128["H-SBP"] > 1.0);
}

#[test]
fn deterministic_across_facade() {
    let data = generate(DcsbmConfig {
        num_vertices: 200,
        seed: 12,
        ..Default::default()
    });
    let a = run_sbp(&data.graph, &quick_cfg(Variant::AsyncGibbs, 8));
    let b = run_sbp(&data.graph, &quick_cfg(Variant::AsyncGibbs, 8));
    assert_eq!(a.assignment, b.assignment);
}

#[test]
fn returned_partition_is_best_of_trajectory() {
    let data = generate(DcsbmConfig {
        num_vertices: 250,
        num_communities: 5,
        target_num_edges: 2000,
        within_between_ratio: 2.5,
        seed: 21,
        ..Default::default()
    });
    let result = run_sbp(&data.graph, &quick_cfg(Variant::Metropolis, 6));
    assert!(!result.trajectory.is_empty());
    let best_seen = result
        .trajectory
        .iter()
        .map(|&(_, mdl)| mdl)
        .fold(f64::INFINITY, f64::min);
    assert!(
        result.mdl.total <= best_seen + 1e-6,
        "returned {} but trajectory saw {}",
        result.mdl.total,
        best_seen
    );
    // The search explored more than one block count.
    let counts: std::collections::HashSet<usize> =
        result.trajectory.iter().map(|&(b, _)| b).collect();
    assert!(counts.len() >= 2);
}
