//! End-to-end tests of the `hsbp` command-line binary: generate a graph,
//! inspect it, detect communities, check the emitted labels.

use std::path::PathBuf;
use std::process::Command;

fn hsbp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hsbp"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hsbp-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_stats_detect_roundtrip() {
    let mtx = tmp("roundtrip.mtx");
    let truth = tmp("roundtrip-truth.tsv");
    let labels = tmp("roundtrip-labels.tsv");

    // generate
    let out = hsbp()
        .args([
            "generate",
            "--vertices",
            "400",
            "--edges",
            "3200",
            "--communities",
            "5",
        ])
        .args(["--ratio", "3.0", "--seed", "7"])
        .args([
            "--output",
            mtx.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .expect("run hsbp generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(mtx.exists() && truth.exists());

    // stats
    let out = hsbp()
        .args(["stats", "--input", mtx.to_str().unwrap()])
        .output()
        .expect("run hsbp stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("vertices            400"),
        "stats output:\n{stdout}"
    );

    // detect
    let out = hsbp()
        .args([
            "detect",
            "--input",
            mtx.to_str().unwrap(),
            "--variant",
            "hsbp",
        ])
        .args(["--seed", "3", "--output", labels.to_str().unwrap()])
        .output()
        .expect("run hsbp detect");
    assert!(
        out.status.success(),
        "detect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("communities"), "detect stderr:\n{stderr}");

    // labels cover every vertex with small community ids
    let body = std::fs::read_to_string(&labels).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 400);
    for (i, line) in lines.iter().enumerate() {
        let mut parts = line.split('\t');
        assert_eq!(parts.next().unwrap().parse::<usize>().unwrap(), i);
        let label: usize = parts.next().unwrap().parse().unwrap();
        assert!(label < 400);
    }
}

#[test]
fn detect_writes_labels_to_stdout_by_default() {
    let mtx = tmp("stdout.mtx");
    let status = hsbp()
        .args([
            "generate",
            "--vertices",
            "60",
            "--edges",
            "400",
            "--seed",
            "1",
        ])
        .args(["--output", mtx.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success());
    let out = hsbp()
        .args([
            "detect",
            "--input",
            mtx.to_str().unwrap(),
            "--variant",
            "sbp",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 60);
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = hsbp().output().unwrap();
    assert!(!out.status.success());

    let out = hsbp().args(["detect"]).output().unwrap();
    assert!(!out.status.success());

    let out = hsbp()
        .args(["detect", "--input", "/nonexistent/file.mtx"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = hsbp().args(["frobnicate", "--x", "1"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn detect_reads_plain_edge_lists() {
    let path = tmp("edges.tsv");
    // Two triangles joined by one edge.
    std::fs::write(&path, "0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n2 3\n").unwrap();
    let out = hsbp()
        .args(["detect", "--input", path.to_str().unwrap(), "--seed", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 6);
}

/// Generate a small planted graph for the budget/audit CLI tests.
fn generated_graph(name: &str) -> PathBuf {
    let mtx = tmp(name);
    let status = hsbp()
        .args(["generate", "--vertices", "150", "--edges", "1200"])
        .args(["--communities", "4", "--ratio", "3.0", "--seed", "9"])
        .args(["--output", mtx.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success());
    mtx
}

#[test]
fn budget_truncation_exits_8_and_still_writes_labels() {
    let mtx = generated_graph("budget.mtx");
    let labels = tmp("budget-labels.tsv");
    let out = hsbp()
        .args(["detect", "--input", mtx.to_str().unwrap()])
        .args(["--max-sweeps", "1", "--output", labels.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(8), "stderr:\n{stderr}");
    assert!(stderr.contains("truncated"), "stderr:\n{stderr}");
    // Best-so-far labels are written even on truncation.
    let body = std::fs::read_to_string(&labels).unwrap();
    assert_eq!(body.lines().count(), 150);
}

#[test]
fn generous_budgets_leave_detect_successful() {
    let mtx = generated_graph("budget-ok.mtx");
    let out = hsbp()
        .args(["detect", "--input", mtx.to_str().unwrap()])
        .args(["--deadline", "3600", "--max-sweeps", "1000000"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn strict_audit_drift_exits_7() {
    let mtx = generated_graph("drift.mtx");
    // The serial variant keeps incremental state across sweeps, so the
    // injected corruption survives until the cadence-4 audit catches it.
    let out = hsbp()
        .args(["detect", "--input", mtx.to_str().unwrap()])
        .args(["--variant", "sbp"])
        .args(["--inject-drift", "2", "--audit-cadence", "4"])
        .args(["--strict-audit", "true"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(7), "stderr:\n{stderr}");
    assert!(stderr.contains("drift"), "stderr:\n{stderr}");
}

#[test]
fn lenient_audit_repairs_drift_and_succeeds() {
    let mtx = generated_graph("drift-repair.mtx");
    let out = hsbp()
        .args(["detect", "--input", mtx.to_str().unwrap()])
        .args(["--variant", "sbp"])
        .args(["--inject-drift", "2", "--audit-cadence", "4"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(
        stderr.contains("1 drift event(s) detected and repaired"),
        "stderr:\n{stderr}"
    );
}

#[test]
fn version_reports_shard_sync_protocol() {
    let out = hsbp().args(["version"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!(
            "shard sync protocol {}",
            hsbp::SYNC_PROTOCOL_VERSION
        )),
        "version output:\n{stdout}"
    );
    assert!(stdout.contains("BENCH_shard.json"), "{stdout}");
}

#[test]
fn shard_exact_cli_end_to_end() {
    let mtx = generated_graph("exact.mtx");
    let labels = tmp("exact-labels.tsv");
    let out = hsbp()
        .args(["shard", "--exact", "true", "--input", mtx.to_str().unwrap()])
        .args(["--shards", "3", "--seed", "5", "--compare", "true"])
        .args(["--net-fault-plan", "seed:4, drop:0.05, dup:0.05"])
        .args(["--output", labels.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("sync protocol:"), "stderr:\n{stderr}");
    assert!(stderr.contains("retransmit(s)"), "stderr:\n{stderr}");
    // The hostile wire must not change the chain: still bit-identical to
    // the in-process single-model run.
    assert!(stderr.contains("bit-identical: true"), "stderr:\n{stderr}");
    assert_eq!(
        std::fs::read_to_string(&labels).unwrap().lines().count(),
        150
    );
}

#[test]
fn exact_mode_rejects_divide_and_conquer_flags() {
    let mtx = generated_graph("exact-flags.mtx");
    for args in [
        ["--strategy", "rr"],
        ["--fault-plan", "panic:0@1"],
        ["--checkpoint", "/tmp/nope"],
    ] {
        let out = hsbp()
            .args(["shard", "--exact", "true", "--input", mtx.to_str().unwrap()])
            .args(args)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // And the exact-only flags require --exact true.
    let out = hsbp()
        .args(["shard", "--input", mtx.to_str().unwrap()])
        .args(["--sync-every", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_budget_flags_are_usage_errors() {
    let mtx = generated_graph("badflags.mtx");
    for args in [
        ["--deadline", "0"],
        ["--deadline", "frog"],
        ["--max-sweeps", "0"],
        ["--max-sweeps", "-3"],
        ["--audit-cadence", "many"],
        ["--strict-audit", "maybe"],
    ] {
        let out = hsbp()
            .args(["detect", "--input", mtx.to_str().unwrap()])
            .args(args)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}
