//! End-to-end tests for the `hsbp-serve` daemon: real TCP connections
//! against an in-process server — version handshake, mutation batches,
//! reads answered mid-refinement from the previous epoch, cooperative
//! cancellation without state poisoning, and orderly shutdown.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hsbp::serve::json::{parse, Json};
use hsbp::serve::{ServeConfig, Server, ServerHandle, PROTOCOL_VERSION};
use hsbp::{Graph, GraphBuilder, RunBudget, SbpConfig, Variant};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Minimal line-oriented protocol client.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, line: &str) -> Json {
        let mut out = line.as_bytes().to_vec();
        out.push(b'\n');
        self.reader.get_mut().write_all(&out).unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        parse(response.trim()).unwrap()
    }

    fn ok(&mut self, line: &str) -> Json {
        let resp = self.request(line);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {line} failed: {}",
            resp.to_line()
        );
        resp
    }
}

fn u(resp: &Json, field: &str) -> u64 {
    resp.get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {field} in {}", resp.to_line()))
}

/// A planted 3-community graph.
fn planted(per: u32) -> Graph {
    let mut b = GraphBuilder::new((per * 3) as usize);
    let mut state = 0x5eedu64;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for v in 0..per * 3 {
        let g = v / per;
        for _ in 0..5 {
            let t = if rnd() % 10 < 8 {
                g * per + rnd() % per
            } else {
                rnd() % (per * 3)
            };
            if t != v {
                b.add_edge(v, t);
            }
        }
    }
    b.build()
}

fn spawn_default(initial: Graph) -> ServerHandle {
    Server::spawn(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            sbp: SbpConfig::new(Variant::Metropolis, 7),
            budget: RunBudget::unlimited(),
            ..ServeConfig::default()
        },
        initial,
    )
    .unwrap()
}

#[test]
fn version_handshake_and_initial_reads() {
    let handle = spawn_default(planted(20));
    let mut client = Client::connect(&handle);

    let hello = client.ok("{\"op\":\"version\"}");
    assert_eq!(u(&hello, "protocol"), u64::from(PROTOCOL_VERSION));
    assert!(hello.get("crate").and_then(Json::as_str).is_some());

    // The initial full run published epoch 0 before the listener accepted.
    let mdl = client.ok("{\"op\":\"mdl\"}");
    assert_eq!(u(&mdl, "epoch"), 0);
    assert!(mdl.get("mdl").and_then(Json::as_f64).unwrap().is_finite());
    assert!(u(&mdl, "num_blocks") >= 2, "planted structure found");

    let members = client.ok("{\"op\":\"membership\",\"vertices\":[0,1,59]}");
    assert_eq!(
        members.get("blocks").and_then(Json::as_arr).unwrap().len(),
        3
    );

    let stats = client.ok("{\"op\":\"block_stats\"}");
    let blocks = stats.get("blocks").and_then(Json::as_arr).unwrap();
    assert_eq!(blocks.len() as u64, u(&stats, "num_blocks"));
    let total: u64 = blocks.iter().map(|b| u(b, "size")).sum();
    assert_eq!(total, 60, "block sizes partition the vertex set");

    // Malformed requests error without dropping the connection.
    let bad = client.request("{\"op\":\"membership\",\"vertices\":[9999]}");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    let still_alive = client.ok("{\"op\":\"status\"}");
    assert_eq!(u(&still_alive, "epoch"), 0);

    handle.shutdown();
    handle.join();
}

#[test]
fn mutations_refine_and_flush() {
    let handle = spawn_default(Graph::from_edges(0, &[]));
    let mut client = Client::connect(&handle);

    // Two triangles arriving as one batch.
    let resp = client.ok("{\"op\":\"add_edges\",\"edges\":[[0,1],[1,2],[2,0],[3,4],[4,5],[5,3]]}");
    assert_eq!(u(&resp, "seq"), 1);
    assert_eq!(u(&resp, "queued"), 6);

    let flushed = client.ok("{\"op\":\"flush\"}");
    assert!(u(&flushed, "epoch") >= 1);
    assert_eq!(u(&flushed, "seq_applied"), 1);

    let members = client.ok("{\"op\":\"membership\",\"vertices\":[0,1,2,3,4,5]}");
    let blocks: Vec<u64> = members
        .get("blocks")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|b| b.as_u64().unwrap())
        .collect();
    assert_eq!(blocks.len(), 6);

    // Remove a vertex: its edges vanish from the next snapshot.
    client.ok("{\"op\":\"remove_vertex\",\"vertex\":5}");
    client.ok("{\"op\":\"flush\"}");
    let status = client.ok("{\"op\":\"status\"}");
    assert_eq!(u(&status, "num_vertices"), 6, "ids are stable");
    assert_eq!(u(&status, "num_edges"), 4, "5's two incident edges dropped");
    assert_eq!(u(&status, "refine_errors"), 0);

    handle.shutdown();
    handle.join();
}

/// The acceptance-criteria test: reads are answered from the previous
/// epoch while refinement is mid-round, and a newer batch cancels the
/// in-flight round without poisoning state (every sweep audited strictly).
#[test]
fn reads_served_mid_refinement_and_cancellation_is_clean() {
    let handle = Server::spawn(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            sbp: SbpConfig {
                variant: Variant::Metropolis,
                seed: 11,
                // Audit after *every* sweep and fail hard on drift: if a
                // cancelled round ever left the model inconsistent, the
                // next round's refine would error and refine_errors > 0.
                audit_cadence: 1,
                strict_audit: true,
                ..Default::default()
            },
            budget: RunBudget::unlimited(),
            // Hold each armed round open 300 ms before its first sweep so
            // the test can deterministically read and cancel mid-round.
            refine_pause_ms: 300,
            ..ServeConfig::default()
        },
        planted(20),
    )
    .unwrap();
    let mut client = Client::connect(&handle);

    // Batch 1 starts a refinement round.
    client.ok("{\"op\":\"add_edges\",\"edges\":[[0,30],[30,55],[55,0],[7,41],[41,19]]}");
    std::thread::sleep(Duration::from_millis(60));

    // Reads answered NOW come from epoch 0 — refinement is armed and
    // unfinished, but reads are not blocked behind it.
    let during = client.ok("{\"op\":\"mdl\"}");
    assert_eq!(
        u(&during, "epoch"),
        0,
        "read served from the previous snapshot while refinement is in flight"
    );

    // Batch 2 lands while round 1 is armed: cooperative cancellation.
    client.ok("{\"op\":\"add_edges\",\"edges\":[[2,33],[33,58]]}");
    let flushed = client.ok("{\"op\":\"flush\"}");
    assert_eq!(u(&flushed, "seq_applied"), 2);

    let status = client.ok("{\"op\":\"status\"}");
    assert!(
        u(&status, "cancellations") >= 1,
        "batch 2 cancelled the in-flight round: {}",
        status.to_line()
    );
    assert_eq!(
        u(&status, "refine_errors"),
        0,
        "strict per-sweep audits found no drift after cancellation"
    );
    assert_eq!(u(&status, "drift_repairs"), 0);
    assert!(u(&status, "epoch") >= 1);

    // The final partition is still a valid answer for every vertex.
    let members = client.ok("{\"op\":\"membership\",\"vertices\":[0,30,55,7,41,2,33,58]}");
    assert_eq!(
        members.get("blocks").and_then(Json::as_arr).unwrap().len(),
        8
    );

    handle.shutdown();
    handle.join();
}

/// Pull `error.kind` out of a (v2, object-shaped) error response.
fn error_kind(resp: &Json) -> Option<String> {
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// Every protocol error carries a distinct machine-readable kind, and none
/// of them drop the connection.
#[test]
fn protocol_errors_are_typed_and_connection_survives() {
    let handle = spawn_default(planted(10));
    let mut client = Client::connect(&handle);

    let bad_json = client.request("{this is not json");
    assert_eq!(bad_json.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&bad_json).as_deref(), Some("parse"));
    assert!(
        bad_json
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .is_some(),
        "error object carries a human message too"
    );

    let unknown = client.request("{\"op\":\"frobnicate\"}");
    assert_eq!(error_kind(&unknown).as_deref(), Some("unknown_command"));

    let bad_req = client.request("{\"op\":\"membership\",\"vertices\":[9999]}");
    assert_eq!(error_kind(&bad_req).as_deref(), Some("bad_request"));

    // The same connection still answers reads after three errors.
    let status = client.ok("{\"op\":\"status\"}");
    assert_eq!(u(&status, "connections"), 1);

    handle.shutdown();
    handle.join();
}

/// Over-limit mutation batches get a typed `busy` error; the connection
/// stays usable and the backlog drains normally.
#[test]
fn back_pressure_returns_busy_and_recovers() {
    let handle = Server::spawn(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            sbp: SbpConfig::new(Variant::Metropolis, 3),
            // Hold each round open long enough that the first batch is
            // still unapplied when the second arrives.
            refine_pause_ms: 400,
            max_pending: 4,
            ..ServeConfig::default()
        },
        Graph::from_edges(0, &[]),
    )
    .unwrap();
    let mut client = Client::connect(&handle);

    // 3 pending mutations fit the bound of 4...
    let first = client.ok("{\"op\":\"add_edges\",\"edges\":[[0,1],[1,2],[2,0]]}");
    assert_eq!(u(&first, "seq"), 1);
    // ...but 3 more would exceed it while the driver still holds batch 1.
    let busy = client.request("{\"op\":\"add_edges\",\"edges\":[[3,4],[4,5],[5,3]]}");
    assert_eq!(busy.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&busy).as_deref(), Some("busy"));

    // Reads still answered on the same connection, and the refused batch
    // was never enqueued.
    let status = client.ok("{\"op\":\"status\"}");
    assert_eq!(u(&status, "seq_enqueued"), 1);

    // After the backlog drains, the same batch is accepted.
    client.ok("{\"op\":\"flush\"}");
    let retry = client.ok("{\"op\":\"add_edges\",\"edges\":[[3,4],[4,5],[5,3]]}");
    assert_eq!(u(&retry, "seq"), 2);
    client.ok("{\"op\":\"flush\"}");
    let status = client.ok("{\"op\":\"status\"}");
    assert_eq!(u(&status, "num_edges"), 6);

    handle.shutdown();
    handle.join();
}

/// Connections past the cap get one `busy` line and are closed; existing
/// connections are unaffected.
#[test]
fn connection_cap_rejects_excess_clients() {
    let handle = Server::spawn(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            sbp: SbpConfig::new(Variant::Metropolis, 5),
            max_connections: 1,
            ..ServeConfig::default()
        },
        Graph::from_edges(3, &[(0, 1), (1, 2)]),
    )
    .unwrap();
    let mut first = Client::connect(&handle);
    // Ensure the first connection is registered before the second dials.
    let status = first.ok("{\"op\":\"status\"}");
    assert_eq!(u(&status, "connections"), 1);

    let mut second = Client::connect(&handle);
    let mut line = String::new();
    second.reader.read_line(&mut line).unwrap();
    let resp = parse(line.trim()).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&resp).as_deref(), Some("busy"));
    // The rejected socket is closed: the next read returns EOF.
    line.clear();
    assert_eq!(second.reader.read_line(&mut line).unwrap(), 0);

    // The first connection never noticed.
    first.ok("{\"op\":\"mdl\"}");

    handle.shutdown();
    handle.join();
}

#[test]
fn quit_message_shuts_daemon_down() {
    let handle = spawn_default(Graph::from_edges(3, &[(0, 1), (1, 2)]));
    let addr = handle.local_addr();
    let mut client = Client::connect(&handle);
    let bye = client.ok("{\"op\":\"quit\"}");
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    // join() returning proves the accept loop and driver exited.
    handle.join();
    // And the port is actually released.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err(),
        "listener should be gone after quit"
    );
}

#[test]
fn bind_failure_is_a_typed_network_error() {
    let first = spawn_default(Graph::from_edges(0, &[]));
    let taken = first.local_addr().to_string();
    let err = match Server::spawn(
        ServeConfig {
            addr: taken.clone(),
            ..ServeConfig::default()
        },
        Graph::from_edges(0, &[]),
    ) {
        Ok(_) => panic!("second bind on {taken} should fail"),
        Err(e) => e,
    };
    match &err {
        hsbp::HsbpError::Network { addr, message } => {
            assert_eq!(addr, &taken);
            assert!(message.contains("bind"), "{message}");
        }
        other => panic!("expected Network error, got {other}"),
    }
    first.shutdown();
    first.join();
}
