//! Thread-count invariance of the full SBP pipeline.
//!
//! The contract under test: `SbpConfig::threads` is purely a performance
//! knob. Every parallel section draws per-item randomness from the counter
//! RNG (`SplitMix64::for_item`) and writes into a fixed per-item output
//! slot, with a single serial consolidation point per sweep — so labels,
//! block counts, final MDL bits and the whole MDL trajectory must be
//! identical whether the pool runs 1, 2 or 7 workers, and regardless of
//! how chunks are stolen between them. The same must hold mid-flight:
//! truncating a run with a sweep budget has to cut every thread count at
//! the same prefix point.

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::{
    run_sbp, run_sbp_budgeted, CancelToken, Graph, RunBudget, SbpConfig, SbpResult, Variant,
};
use proptest::prelude::*;

/// 1 = serial anchor, 2 = smallest real pool, 7 = odd width that never
/// divides the chunk counts evenly (exercises ragged chunk boundaries and
/// the grab-sharing tail).
const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

const PARALLEL_VARIANTS: [Variant; 3] = [Variant::AsyncGibbs, Variant::Hybrid, Variant::ExactAsync];

fn planted_graph(seed: u64) -> Graph {
    generate(DcsbmConfig {
        num_vertices: 220,
        num_communities: 4,
        target_num_edges: 1800,
        within_between_ratio: 3.0,
        seed,
        ..Default::default()
    })
    .graph
}

fn cfg_with(variant: Variant, seed: u64, threads: usize) -> SbpConfig {
    SbpConfig {
        variant,
        seed,
        threads,
        max_outer_iterations: 3,
        ..Default::default()
    }
}

fn assert_identical(a: &SbpResult, b: &SbpResult, what: &str) {
    assert_eq!(a.assignment, b.assignment, "{what}: labels differ");
    assert_eq!(a.num_blocks, b.num_blocks, "{what}: block counts differ");
    assert_eq!(
        a.mdl.total.to_bits(),
        b.mdl.total.to_bits(),
        "{what}: final MDL differs in the bits"
    );
    assert_eq!(a.trajectory, b.trajectory, "{what}: MDL trajectory differs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full pipeline: labels, MDL bits and trajectory are invariant in the
    /// thread count for every parallel variant.
    #[test]
    fn run_sbp_is_thread_count_invariant(seed in 0u64..500, variant_idx in 0usize..3) {
        let variant = PARALLEL_VARIANTS[variant_idx];
        let graph = planted_graph(seed);
        let baseline = run_sbp(&graph, &cfg_with(variant, seed ^ 0x51, 1));
        for &t in &THREAD_COUNTS[1..] {
            let other = run_sbp(&graph, &cfg_with(variant, seed ^ 0x51, t));
            assert_identical(
                &baseline,
                &other,
                &format!("{variant:?} threads=1 vs threads={t}"),
            );
        }
    }

    /// Budget truncation cuts every thread count at the same prefix point:
    /// the truncated results must also be bit-identical across pools.
    #[test]
    fn budget_truncation_is_thread_count_invariant(seed in 0u64..500) {
        let graph = planted_graph(seed ^ 0xb0b);
        let budget = RunBudget::unlimited().with_max_total_sweeps(5);
        let run = |t: usize| -> SbpResult {
            run_sbp_budgeted(
                &graph,
                &cfg_with(Variant::AsyncGibbs, seed ^ 0x77, t),
                &budget,
                &CancelToken::new(),
            )
            .unwrap_or_else(|e| panic!("budgeted run failed at threads={t}: {e}"))
        };
        let baseline = run(1);
        for &t in &THREAD_COUNTS[1..] {
            assert_identical(&baseline, &run(t), &format!("budgeted threads=1 vs {t}"));
        }
    }
}
