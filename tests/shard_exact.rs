//! Integration tests of the exact distributed mode: bit-identity with the
//! single-model EA-SBP run, fault-plan transparency (hostile wire, same
//! chain), degradation on shard death, and the divide-and-conquer accuracy
//! regression the exact algorithm exists to fix.

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::metrics::nmi;
use hsbp::{
    run_exact_sbp, run_sbp, run_sharded_sbp_detailed, ExactConfig, NetFaultPlan, SbpConfig,
    ShardConfig, Variant,
};

fn small_graph() -> (hsbp::Graph, Vec<u32>) {
    let data = generate(DcsbmConfig {
        num_vertices: 600,
        num_communities: 6,
        target_num_edges: 6000,
        seed: 13,
        ..Default::default()
    });
    (data.graph, data.ground_truth)
}

fn exact_cfg(shards: usize, plan: NetFaultPlan) -> ExactConfig {
    ExactConfig {
        num_shards: shards,
        sbp: SbpConfig {
            seed: 9,
            ..Default::default()
        },
        net_faults: plan,
        ..Default::default()
    }
}

/// The exactness claim, at its strongest: under the null fault plan with
/// `sync_every = 1`, the distributed run is **bit-identical** to the
/// in-process single-model EA-SBP run with the same worker count — not
/// just NMI-comparable, the same labels.
#[test]
fn null_plan_is_bit_identical_to_single_model_ea_sbp() {
    let (graph, _) = small_graph();
    let single = run_sbp(
        &graph,
        &SbpConfig {
            variant: Variant::ExactAsync,
            exact_async_workers: 4,
            seed: 9,
            ..Default::default()
        },
    );
    let exact = run_exact_sbp(&graph, &exact_cfg(4, NetFaultPlan::none())).expect("valid config");
    assert_eq!(exact.result.assignment, single.assignment);
    assert_eq!(exact.result.num_blocks, single.num_blocks);
    assert!(!exact.degraded());
    assert!(exact.result.stats.sync_rounds > 0);
    assert!(exact.result.stats.sync_bytes > 0);
    assert_eq!(exact.result.stats.sync_retransmits, 0);
    assert_eq!(exact.result.stats.sync_resyncs, 0);
    // The per-round log covers every sync round and carries real traffic.
    assert_eq!(exact.rounds.len(), exact.result.stats.sync_rounds);
    assert!(exact.rounds.iter().all(|r| r.bytes > 0));
}

/// Recovery completes inside the round barrier, so a hostile wire changes
/// the traffic but not the sampled chain: every recoverable fault plan
/// yields labels identical to the fault-free run (hence NMI 1.0 ≥ 0.99).
#[test]
fn recoverable_fault_plans_do_not_change_the_chain() {
    let (graph, _) = small_graph();
    let clean = run_exact_sbp(&graph, &exact_cfg(4, NetFaultPlan::none())).expect("valid config");
    for spec in [
        "seed:5, drop:0.05",
        "seed:6, dup:0.10",
        "seed:7, reorder:0.25",
        "seed:8, corrupt:0.05",
        "seed:9, delay:0.10=2",
        "seed:10, drop:0.05, dup:0.05, reorder:0.1, corrupt:0.03, delay:0.05=1",
    ] {
        let plan = NetFaultPlan::parse(spec).expect("valid spec");
        let faulty = run_exact_sbp(&graph, &exact_cfg(4, plan)).expect("valid config");
        assert_eq!(
            faulty.result.assignment, clean.result.assignment,
            "plan `{spec}` changed the chain"
        );
        assert_eq!(faulty.result.mdl.total, clean.result.mdl.total, "{spec}");
        assert!(!faulty.degraded(), "{spec}");
        assert!(
            faulty.net.bytes >= clean.net.bytes,
            "{spec}: recovery cannot shrink traffic"
        );
    }
}

/// Dropped messages surface as NACK-driven retransmits in RunStats; the
/// duplicate fault surfaces as ignored replays.
#[test]
fn fault_counters_are_visible_in_run_stats() {
    let (graph, _) = small_graph();
    let dropped = run_exact_sbp(
        &graph,
        &exact_cfg(
            4,
            NetFaultPlan::parse("seed:5, drop:0.05").expect("valid spec"),
        ),
    )
    .expect("valid config");
    assert!(dropped.result.stats.sync_retransmits > 0);
    assert!(dropped.net.dropped > 0);
    assert!(dropped.net.nacks > 0);

    let duplicated = run_exact_sbp(
        &graph,
        &exact_cfg(
            4,
            NetFaultPlan::parse("seed:6, dup:0.10").expect("valid spec"),
        ),
    )
    .expect("valid config");
    assert!(duplicated.net.duplicated > 0);
    assert!(duplicated.net.replays_ignored > 0);

    let corrupted = run_exact_sbp(
        &graph,
        &exact_cfg(
            4,
            NetFaultPlan::parse("seed:8, corrupt:0.05").expect("valid spec"),
        ),
    )
    .expect("valid config");
    assert!(corrupted.net.corrupted > 0);
    // Every corrupted frame was caught by its checksum, none slipped through.
    assert!(corrupted.net.corrupt_detected >= corrupted.net.corrupted);
}

/// Injected replica divergence is caught by the periodic digest exchange
/// and healed with a coordinator resync — the chain is unchanged.
#[test]
fn desync_is_caught_by_digest_exchange_and_resynced() {
    let (graph, _) = small_graph();
    let clean = run_exact_sbp(&graph, &exact_cfg(4, NetFaultPlan::none())).expect("valid config");
    // digest_every defaults to 8; corrupt shard 1's replica right before a
    // digest-aligned boundary so detection is immediate.
    let plan = NetFaultPlan::parse("desync:1@7").expect("valid spec");
    let healed = run_exact_sbp(&graph, &exact_cfg(4, plan)).expect("valid config");
    assert_eq!(healed.result.assignment, clean.result.assignment);
    assert!(healed.result.stats.sync_resyncs > 0);
}

/// A shard that goes permanently silent is declared dead after the retry
/// budget: its vertices are re-voted onto surviving blocks, the run
/// completes degraded, and quality stays respectable.
#[test]
fn silent_shard_is_declared_dead_and_degrades_cleanly() {
    let (graph, truth) = small_graph();
    let plan = NetFaultPlan::parse("silent:2@3").expect("valid spec");
    let run = run_exact_sbp(&graph, &exact_cfg(4, plan)).expect("valid config");
    assert!(run.degraded());
    assert_eq!(run.dead_shards.len(), 1);
    assert_eq!(run.dead_shards[0].shard, 2);
    assert!(run.dead_shards[0].reassigned_vertices > 0);
    assert_eq!(run.result.assignment.len(), graph.num_vertices());
    let quality = nmi(&truth, &run.result.assignment);
    assert!(
        quality > 0.6,
        "degraded run collapsed to NMI {quality:.3} (3 of 4 shards survived)"
    );
}

/// When every shard goes silent there is nothing to degrade onto: the run
/// fails with `AllShardsFailed` instead of hanging or fabricating labels.
#[test]
fn all_shards_silent_is_a_clean_error() {
    let (graph, _) = small_graph();
    let plan =
        NetFaultPlan::parse("silent:0@2, silent:1@2, silent:2@2, silent:3@2").expect("valid spec");
    let err = run_exact_sbp(&graph, &exact_cfg(4, plan)).expect_err("must fail");
    assert!(err.to_string().contains("all 4 shard(s) failed"), "{err}");
}

/// `sync_every > 1` trades staleness for fewer, fatter messages: the run
/// still completes with sane quality but strictly fewer sync rounds.
#[test]
fn sync_every_batches_rounds() {
    let (graph, truth) = small_graph();
    let every1 = run_exact_sbp(&graph, &exact_cfg(4, NetFaultPlan::none())).expect("valid config");
    let mut cfg = exact_cfg(4, NetFaultPlan::none());
    cfg.sync_every = 4;
    let every4 = run_exact_sbp(&graph, &cfg).expect("valid config");
    assert!(every4.result.stats.sync_rounds < every1.result.stats.sync_rounds);
    assert!(nmi(&truth, &every4.result.assignment) > 0.7);
}

/// The divide-and-conquer accuracy caveat, pinned: at cut fraction ~0.9
/// (round-robin partition, 10 shards) the stitched pipeline loses accuracy
/// because 9 of 10 edges are invisible to every shard; the exact mode sees
/// every edge and must close that gap. The stitch-mode number is tracked as
/// a baseline so improvements (or regressions) of the caveat are visible.
#[test]
fn exact_mode_closes_the_stitch_gap_at_cut_fraction_09() {
    let (graph, truth) = small_graph();
    let stitched = run_sharded_sbp_detailed(
        &graph,
        &ShardConfig {
            num_shards: 10,
            strategy: hsbp::PartitionStrategy::RoundRobin,
            sbp: SbpConfig {
                seed: 9,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("valid config");
    assert!(
        stitched.cut_fraction > 0.85,
        "round-robin over 10 shards should cut ~90% of edges, got {:.3}",
        stitched.cut_fraction
    );
    let exact = run_exact_sbp(&graph, &exact_cfg(10, NetFaultPlan::none())).expect("valid config");

    let nmi_stitch = nmi(&truth, &stitched.result.assignment);
    let nmi_exact = nmi(&truth, &exact.result.assignment);
    assert!(
        nmi_exact >= nmi_stitch,
        "exact mode (NMI {nmi_exact:.3}) must not trail stitch mode (NMI {nmi_stitch:.3}) \
         at cut fraction {:.2}",
        stitched.cut_fraction
    );
    // Tracked baseline for the caveat itself (DESIGN.md §7): stitch mode at
    // cut ~0.9 has historically landed around this number. A significant
    // move in either direction deserves a look, not a silent pass.
    const STITCH_BASELINE_NMI: f64 = 0.8;
    assert!(
        (nmi_stitch - STITCH_BASELINE_NMI).abs() < 0.2,
        "stitch-mode NMI {nmi_stitch:.3} moved away from the tracked baseline \
         {STITCH_BASELINE_NMI}; update the baseline deliberately"
    );
    // And the exact mode must be genuinely good, not merely less bad.
    assert!(nmi_exact > 0.8, "exact NMI {nmi_exact:.3}");
}

/// The ISSUE acceptance criterion at full size: 8-shard exact mode on the
/// 5k DCSBM is bit-comparable to the single-model run under the null plan,
/// and still converges to the same partition under a hostile wire.
#[test]
#[ignore = "full-size acceptance run; exercised by the shard-exact-faults CI job"]
fn acceptance_8_shards_on_5k_dcsbm() {
    let data = generate(DcsbmConfig {
        num_vertices: 5000,
        num_communities: 16,
        target_num_edges: 50_000,
        seed: 71,
        ..Default::default()
    });
    let single = run_sbp(
        &data.graph,
        &SbpConfig {
            variant: Variant::ExactAsync,
            exact_async_workers: 8,
            seed: 9,
            ..Default::default()
        },
    );
    let exact =
        run_exact_sbp(&data.graph, &exact_cfg(8, NetFaultPlan::none())).expect("valid config");
    assert_eq!(exact.result.assignment, single.assignment);
    assert!((nmi(&single.assignment, &exact.result.assignment) - 1.0).abs() < 1e-12);

    let hostile = NetFaultPlan::parse("seed:3, drop:0.05, dup:0.05, reorder:0.2").expect("spec");
    let faulty = run_exact_sbp(&data.graph, &exact_cfg(8, hostile)).expect("valid config");
    assert!(faulty.result.stats.sync_retransmits > 0);
    let agreement = nmi(&exact.result.assignment, &faulty.result.assignment);
    assert!(
        agreement >= 0.99,
        "hostile wire changed the partition: NMI {agreement:.4}"
    );
}
