//! Crash-recovery tests for the durable `hsbp-serve` daemon: warm restart
//! after a clean shutdown, and the recovery-determinism property — a
//! daemon killed at any injected fault point, restarted from its state
//! directory, reports state bit-identical to a fresh daemon fed the same
//! durable batch sequence (torn final WAL records dropped whole).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hsbp::serve::json::{parse, Json};
use hsbp::serve::{ServeConfig, ServeFaultPlan, Server, ServerHandle};
use hsbp::{Graph, RunBudget, SbpConfig, Variant};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Send one request; `None` when the daemon crashed instead of
    /// answering (connection closed without a response line).
    fn try_request(&mut self, line: &str) -> Option<Json> {
        let mut out = line.as_bytes().to_vec();
        out.push(b'\n');
        if self.reader.get_mut().write_all(&out).is_err() {
            return None;
        }
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(parse(response.trim()).unwrap()),
        }
    }

    fn ok(&mut self, line: &str) -> Json {
        let resp = self.try_request(line).expect("daemon answered");
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {line} failed: {}",
            resp.to_line()
        );
        resp
    }
}

fn u(resp: &Json, field: &str) -> u64 {
    resp.get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {field} in {}", resp.to_line()))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsbp-serve-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sbp() -> SbpConfig {
    SbpConfig::new(Variant::Metropolis, 42)
}

fn durable_config(dir: &PathBuf, plan: &str, snapshot_every: u64) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        sbp: sbp(),
        budget: RunBudget::unlimited(),
        state_dir: Some(dir.clone()),
        snapshot_every,
        fault_plan: ServeFaultPlan::parse(plan).unwrap(),
        ..ServeConfig::default()
    }
}

/// The mutation script every scenario draws from. Includes the replay
/// no-op edge cases on purpose: batch 4 removes a vertex batch 3 already
/// isolated, and batch 5 re-adds an existing edge (weight accumulation
/// must replay identically, exactly once).
const BATCHES: &[&str] = &[
    "{\"op\":\"add_edges\",\"edges\":[[0,1],[1,2],[2,0]]}",
    "{\"op\":\"add_edges\",\"edges\":[[3,4],[4,5],[5,3],[0,3]]}",
    "{\"op\":\"remove_vertex\",\"vertex\":5}",
    "{\"op\":\"remove_vertex\",\"vertex\":5}",
    "{\"op\":\"add_edges\",\"edges\":[[0,1],[2,4]]}",
    "{\"op\":\"remove_edges\",\"edges\":[[0,3]]}",
];

/// Feed batches sequentially (flush after each, so no cancellations and a
/// deterministic refinement sequence); returns how many were acknowledged.
fn drive(client: &mut Client, batches: &[&str]) -> usize {
    let mut acked = 0;
    for batch in batches {
        let Some(resp) = client.try_request(batch) else {
            break; // injected crash: no response, connection dropped
        };
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            break; // shutting_down after a driver-side crash
        }
        acked += 1;
        if client.try_request("{\"op\":\"flush\"}").is_none() {
            break;
        }
    }
    acked
}

/// Everything the bit-identity comparison looks at: the exact `mdl`
/// response text (epoch, MDL bits, block count), the full membership
/// vector, and the graph dimensions.
fn fingerprint(handle: &ServerHandle) -> (String, Vec<u64>, u64, u64) {
    let mut client = Client::connect(handle);
    let status = client.ok("{\"op\":\"status\"}");
    let n = u(&status, "num_vertices");
    let vertices: Vec<String> = (0..n).map(|v| v.to_string()).collect();
    let members = client.ok(&format!(
        "{{\"op\":\"membership\",\"vertices\":[{}]}}",
        vertices.join(",")
    ));
    let blocks: Vec<u64> = members
        .get("blocks")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|b| b.as_u64().unwrap())
        .collect();
    let mdl = client.ok("{\"op\":\"mdl\"}");
    (mdl.to_line(), blocks, n, u(&status, "num_edges"))
}

/// Run the crash → restart → compare-with-fresh property for one fault
/// plan. `expected_durable` is how many batches must survive into the
/// recovered state (acknowledged ones, plus the crash-after-wal batch that
/// is durable but unacknowledged; minus a torn one, dropped whole).
fn assert_recovers_bit_identical(
    tag: &str,
    plan: &str,
    snapshot_every: u64,
    expected_durable: usize,
) {
    let dir = tmpdir(tag);

    // Phase 1: a durable daemon driven until the injected crash (or, with
    // no plan, killed without the clean-shutdown snapshot).
    let handle = Server::spawn(
        durable_config(&dir, plan, snapshot_every),
        Graph::from_edges(0, &[]),
    )
    .unwrap();
    let mut client = Client::connect(&handle);
    let acked = drive(&mut client, BATCHES);
    drop(client);
    if plan.is_empty() {
        assert_eq!(acked, BATCHES.len(), "no faults: every batch acknowledged");
        handle.kill(); // SIGKILL-like: stale snapshot + WAL tail on disk
    } else {
        assert!(
            acked < BATCHES.len(),
            "{tag}: the fault plan should have stopped the run (acked {acked})"
        );
        handle.join(); // the injected crash already shut the daemon down
    }

    // Phase 2: restart from the state directory.
    let recovered = Server::spawn(
        durable_config(&dir, "", snapshot_every),
        Graph::from_edges(0, &[]),
    )
    .unwrap();
    {
        let mut client = Client::connect(&recovered);
        let status = client.ok("{\"op\":\"status\"}");
        assert!(
            status
                .get("recovered_epoch")
                .and_then(Json::as_u64)
                .is_some(),
            "{tag}: warm restart reports recovered_epoch: {}",
            status.to_line()
        );
        assert_eq!(
            u(&status, "seq_applied"),
            expected_durable as u64,
            "{tag}: recovery covers exactly the durable batches"
        );
    }
    let got = fingerprint(&recovered);
    recovered.shutdown();
    recovered.join();

    // Phase 3: a fresh, non-durable daemon fed the same durable batch
    // sequence must land on bit-identical state.
    let reference = Server::spawn(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            sbp: sbp(),
            budget: RunBudget::unlimited(),
            ..ServeConfig::default()
        },
        Graph::from_edges(0, &[]),
    )
    .unwrap();
    let mut client = Client::connect(&reference);
    assert_eq!(
        drive(&mut client, &BATCHES[..expected_durable]),
        expected_durable
    );
    drop(client);
    let want = fingerprint(&reference);
    reference.shutdown();
    reference.join();

    assert_eq!(
        got, want,
        "{tag}: recovered state diverged from fresh replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Killed daemon (no clean-shutdown snapshot): the whole WAL replays.
#[test]
fn kill_and_restart_is_bit_identical_to_fresh_run() {
    assert_recovers_bit_identical("kill", "", 32, BATCHES.len());
}

/// Crash right after the WAL append: the batch is durable but was never
/// acknowledged — recovery must replay it (at-least-once, never lost).
#[test]
fn crash_after_wal_append_replays_the_unacked_batch() {
    assert_recovers_bit_identical("afterwal", "crash-after-wal:4", 32, 4);
}

/// Crash mid-append: the torn final record is detected, dropped whole, and
/// never partially applied.
#[test]
fn torn_final_wal_record_is_dropped_whole() {
    assert_recovers_bit_identical("torn", "torn-write:4", 32, 3);
}

/// Crash after the snapshot tmp file is written but before the atomic
/// rename: the previous snapshot survives and the WAL still covers
/// everything since it. (Save #1 is the fresh-directory epoch-0 snapshot,
/// so #2 is the first cadence save, triggered once seq reaches 3.)
#[test]
fn crash_before_snapshot_rename_recovers_from_previous_snapshot() {
    assert_recovers_bit_identical("prerename", "crash-before-rename:2", 3, 3);
}

/// Clean shutdown persists a final snapshot: restart needs zero replay and
/// resumes WAL numbering where it stopped.
#[test]
fn clean_shutdown_warm_starts_without_replay() {
    let dir = tmpdir("clean");
    let handle = Server::spawn(durable_config(&dir, "", 32), Graph::from_edges(0, &[])).unwrap();
    let mut client = Client::connect(&handle);
    assert_eq!(drive(&mut client, BATCHES), BATCHES.len());
    let before = fingerprint(&handle);
    drop(client);
    handle.shutdown();
    handle.join();

    let restarted = Server::spawn(durable_config(&dir, "", 32), Graph::from_edges(0, &[])).unwrap();
    {
        let mut client = Client::connect(&restarted);
        let status = client.ok("{\"op\":\"status\"}");
        assert_eq!(
            status.get("recovered_epoch").and_then(Json::as_u64),
            Some(BATCHES.len() as u64),
            "final snapshot carried the last epoch: {}",
            status.to_line()
        );
        assert_eq!(
            u(&status, "replayed_batches"),
            0,
            "no WAL tail after clean shutdown"
        );
        assert_eq!(u(&status, "last_snapshot_seq"), BATCHES.len() as u64);

        // Mutations keep flowing after recovery, continuing the sequence.
        let resp = client.ok("{\"op\":\"add_edges\",\"edges\":[[1,4]]}");
        assert_eq!(u(&resp, "seq"), BATCHES.len() as u64 + 1);
        client.ok("{\"op\":\"flush\"}");
    }
    assert_eq!(
        fingerprint(&restarted).1.len(),
        before.1.len(),
        "same vertex set served after restart"
    );
    restarted.shutdown();
    restarted.join();

    // Replay idempotence: recovering the same directory again (now with a
    // newer snapshot) still converges — nothing is applied twice.
    let again = Server::spawn(durable_config(&dir, "", 32), Graph::from_edges(0, &[])).unwrap();
    {
        let mut client = Client::connect(&again);
        let status = client.ok("{\"op\":\"status\"}");
        assert_eq!(u(&status, "replayed_batches"), 0);
        assert_eq!(u(&status, "seq_applied"), BATCHES.len() as u64 + 1);
    }
    again.shutdown();
    again.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A state directory refined under a different seed is refused instead of
/// silently breaking recovery determinism.
#[test]
fn mismatched_identity_is_refused_on_restart() {
    let dir = tmpdir("identity");
    let handle = Server::spawn(durable_config(&dir, "", 32), Graph::from_edges(0, &[])).unwrap();
    handle.shutdown();
    handle.join();

    let mut other = durable_config(&dir, "", 32);
    other.sbp = SbpConfig::new(Variant::Metropolis, 43);
    match Server::spawn(other, Graph::from_edges(0, &[])) {
        Err(hsbp::HsbpError::Checkpoint { message, .. }) => {
            assert!(message.contains("identity"), "{message}")
        }
        Ok(_) => panic!("seed mismatch should refuse to warm-start"),
        Err(other) => panic!("expected Checkpoint error, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
