//! Robustness tests: weighted and symmetrised graphs (paper §6 future
//! work), pathological topologies, and the influence heuristics.

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::graph::GraphBuilder;
use hsbp::metrics::nmi;
use hsbp::sbp::{asbp_convergence_risk, degree_concentration, AsbpRisk};
use hsbp::{run_sbp, run_sbp_checked, Graph, SbpConfig, Variant};

const ALL_VARIANTS: [Variant; 4] = [
    Variant::Metropolis,
    Variant::AsyncGibbs,
    Variant::Hybrid,
    Variant::ExactAsync,
];

#[test]
fn weighted_graph_detection() {
    // Two communities connected internally by heavy edges and externally by
    // light ones: the DCSBM treats weight as multiplicity, so the planted
    // split must be recovered.
    let k = 20u32;
    let mut builder = GraphBuilder::new(2 * k as usize);
    let mut state = 7u64;
    let mut rnd = move |m: u32| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as u32) % m
    };
    for g in 0..2u32 {
        for _ in 0..150 {
            let a = g * k + rnd(k);
            let b = g * k + rnd(k);
            if a != b {
                builder.add_edge_weighted(a, b, 4);
            }
        }
    }
    for _ in 0..30 {
        let a = rnd(k);
        let b = k + rnd(k);
        builder.add_edge_weighted(a, b, 1);
    }
    let graph = builder.build();
    let truth: Vec<u32> = (0..2 * k).map(|v| v / k).collect();
    let result = run_sbp(&graph, &SbpConfig::new(Variant::Hybrid, 4));
    let score = nmi(&truth, &result.assignment);
    assert!(score > 0.9, "weighted NMI {score}");
}

#[test]
fn symmetrised_graph_detection() {
    // §6 lists undirected graphs as future work; symmetrisation is the
    // supported path. Quality must survive the conversion.
    let data = generate(DcsbmConfig {
        num_vertices: 300,
        num_communities: 4,
        target_num_edges: 2400,
        within_between_ratio: 3.0,
        seed: 9,
        ..Default::default()
    });
    let undirected = data.graph.to_undirected();
    let result = run_sbp(&undirected, &SbpConfig::new(Variant::Hybrid, 5));
    let score = nmi(&data.ground_truth, &result.assignment);
    assert!(score > 0.8, "undirected NMI {score}");
}

#[test]
fn disconnected_components_found_as_separate_communities() {
    // Two totally disconnected dense blobs: trivially two communities.
    let k = 15u32;
    let mut edges = Vec::new();
    for g in 0..2u32 {
        for a in 0..k {
            for b in 0..k {
                if a != b {
                    edges.push((g * k + a, g * k + b));
                }
            }
        }
    }
    let graph = Graph::from_edges(2 * k as usize, &edges);
    let truth: Vec<u32> = (0..2 * k).map(|v| v / k).collect();
    let result = run_sbp(&graph, &SbpConfig::new(Variant::Metropolis, 1));
    assert_eq!(result.num_blocks, 2);
    assert!((nmi(&truth, &result.assignment) - 1.0).abs() < 1e-9);
}

#[test]
fn star_graph_terminates() {
    // Degenerate hub topology must not wedge the search.
    let edges: Vec<(u32, u32)> = (1..200u32).map(|v| (0, v)).collect();
    let graph = Graph::from_edges(200, &edges);
    for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
        let result = run_sbp(&graph, &SbpConfig::new(variant, 2));
        assert!(result.num_blocks >= 1);
        assert_eq!(result.assignment.len(), 200);
    }
}

#[test]
fn self_loop_heavy_graph_terminates() {
    let mut edges: Vec<(u32, u32)> = (0..50u32).map(|v| (v, v)).collect();
    edges.extend((0..49u32).map(|v| (v, v + 1)));
    let graph = Graph::from_edges(50, &edges);
    let result = run_sbp(&graph, &SbpConfig::new(Variant::Hybrid, 4));
    assert_eq!(result.assignment.len(), 50);
}

#[test]
fn influence_heuristic_separates_domains() {
    // Hub-heavy social surrogate: low/moderate A-SBP risk; near-regular
    // p2p-style graph: high risk — the paper's failing regime.
    let social = generate(DcsbmConfig {
        num_vertices: 1000,
        num_communities: 8,
        target_num_edges: 8000,
        degree_exponent: 2.0,
        min_degree: 1,
        max_degree: 300,
        seed: 3,
        ..Default::default()
    });
    let regular = generate(DcsbmConfig {
        num_vertices: 1000,
        num_communities: 8,
        target_num_edges: 3000,
        degree_exponent: 5.0,
        min_degree: 2,
        max_degree: 8,
        seed: 4,
        ..Default::default()
    });
    let c_social = degree_concentration(&social.graph, 0.15);
    let c_regular = degree_concentration(&regular.graph, 0.15);
    assert!(
        c_social > c_regular,
        "social {c_social} vs regular {c_regular}"
    );
    assert_eq!(asbp_convergence_risk(&regular.graph), AsbpRisk::High);
    assert_ne!(asbp_convergence_risk(&social.graph), AsbpRisk::High);
}

#[test]
fn degenerate_graphs_return_finite_mdl_for_every_variant() {
    let no_edges: [(u32, u32); 0] = [];
    let self_loops: Vec<(u32, u32)> = (0..8u32).map(|v| (v, v)).collect();
    // A 4-clique plus six isolated vertices.
    let mut with_isolated = Vec::new();
    for a in 0..4u32 {
        for b in 0..4u32 {
            if a != b {
                with_isolated.push((a, b));
            }
        }
    }
    let cases: Vec<(&str, Graph)> = vec![
        ("edgeless", Graph::from_edges(10, &no_edges)),
        ("single-vertex", Graph::from_edges(1, &no_edges)),
        ("single-vertex-loop", Graph::from_edges(1, &[(0, 0)])),
        ("all-self-loops", Graph::from_edges(8, &self_loops)),
        ("isolated-vertices", Graph::from_edges(10, &with_isolated)),
    ];
    for (name, graph) in &cases {
        for variant in ALL_VARIANTS {
            let result = run_sbp_checked(graph, &SbpConfig::new(variant, 3))
                .unwrap_or_else(|e| panic!("{name}/{variant:?}: {e}"));
            assert_eq!(
                result.assignment.len(),
                graph.num_vertices(),
                "{name}/{variant:?}"
            );
            assert!(
                result.mdl.total.is_finite(),
                "{name}/{variant:?}: MDL {}",
                result.mdl.total
            );
            assert!(result.num_blocks >= 1, "{name}/{variant:?}");
        }
    }
}

#[test]
fn edgeless_normalized_mdl_contract() {
    // With no edges the null MDL is 0 and the ratio is undefined: the raw
    // field is NaN by contract, and the checked accessor makes it explicit.
    let no_edges: [(u32, u32); 0] = [];
    let empty = Graph::from_edges(5, &no_edges);
    let result = run_sbp_checked(&empty, &SbpConfig::new(Variant::Hybrid, 1)).unwrap();
    assert!(result.normalized_mdl.is_nan());
    assert_eq!(result.normalized_mdl_checked(), None);

    let with_edges = Graph::from_edges(3, &[(0, 1), (1, 2)]);
    let result = run_sbp_checked(&with_edges, &SbpConfig::new(Variant::Hybrid, 1)).unwrap();
    assert!(result.normalized_mdl_checked().is_some());
}

#[test]
fn invalid_config_is_an_error_not_a_panic() {
    let graph = Graph::from_edges(3, &[(0, 1), (1, 2)]);
    let mut cfg = SbpConfig::new(Variant::Hybrid, 1);
    cfg.hybrid_serial_fraction = -0.5;
    assert!(matches!(
        run_sbp_checked(&graph, &cfg),
        Err(hsbp::HsbpError::InvalidConfig(_))
    ));
}
