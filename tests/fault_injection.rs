//! Fault-tolerance acceptance tests: retry recovery, graceful degradation,
//! checkpoint/resume, and the `hsbp shard` CLI's fault-plan flags and exit
//! codes.

use hsbp::generator::{generate, DcsbmConfig};
use hsbp::metrics::nmi;
use hsbp::shard::{run_sharded_sbp_detailed, run_sharded_sbp_resumable, ShardStatus};
use hsbp::{FaultPlan, SbpConfig, ShardConfig};
use std::path::PathBuf;
use std::process::Command;

fn hsbp_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hsbp"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hsbp-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn shard_cfg(num_shards: usize, seed: u64, plan: FaultPlan) -> ShardConfig {
    let mut cfg = ShardConfig {
        num_shards,
        sbp: SbpConfig {
            seed,
            ..Default::default()
        },
        ..Default::default()
    };
    cfg.supervision.fault_plan = plan;
    cfg
}

/// Acceptance: panicking 2 of 8 shards on their first attempt completes via
/// retries, stays un-degraded, and lands at the fault-free run's quality.
#[test]
fn transient_panics_recover_via_retries() {
    let data = generate(DcsbmConfig {
        num_vertices: 1000,
        num_communities: 8,
        target_num_edges: 10_000,
        within_between_ratio: 3.0,
        seed: 41,
        ..Default::default()
    });

    let fault_free = run_sharded_sbp_detailed(&data.graph, &shard_cfg(8, 9, FaultPlan::none()))
        .expect("fault-free run");
    let plan = FaultPlan::none().panic_on(1, 1).panic_on(5, 1);
    let faulty = run_sharded_sbp_detailed(&data.graph, &shard_cfg(8, 9, plan)).expect("faulty run");

    assert!(!faulty.degraded(), "retries must prevent degradation");
    for shard in [1usize, 5] {
        let outcome = &faulty.outcomes[shard];
        assert_eq!(outcome.status, ShardStatus::Recovered, "shard {shard}");
        assert_eq!(outcome.attempts, 2, "shard {shard}");
        assert_eq!(outcome.failures.len(), 1, "shard {shard}");
    }
    for shard in [0usize, 2, 3, 4, 6, 7] {
        assert_eq!(faulty.outcomes[shard].status, ShardStatus::Ok);
    }
    assert_eq!(faulty.result.assignment.len(), 1000);

    // Retried shards re-run with a fresh seed, so the partitions need not be
    // bit-identical — but on a well-separated graph both runs must recover
    // the same communities.
    let truth_free = nmi(&data.ground_truth, &fault_free.result.assignment);
    let truth_faulty = nmi(&data.ground_truth, &faulty.result.assignment);
    let cross = nmi(&fault_free.result.assignment, &faulty.result.assignment);
    assert!(
        cross >= 0.95,
        "faulty run diverged from fault-free: NMI(faulty, fault-free) = {cross:.4}"
    );
    assert!(
        (truth_faulty - truth_free).abs() <= 0.05,
        "truth NMI moved from {truth_free:.4} to {truth_faulty:.4}"
    );
}

/// Acceptance: permanently killing 1 of 8 shards on the 5k-vertex DCSBM
/// graph still completes, reports the degradation, and stays within 0.05
/// NMI of the fault-free run.
#[test]
fn permanent_kill_degrades_gracefully_on_5k_dcsbm() {
    let data = generate(DcsbmConfig {
        num_vertices: 5000,
        num_communities: 16,
        target_num_edges: 50_000,
        seed: 71,
        ..Default::default()
    });

    let fault_free = run_sharded_sbp_detailed(&data.graph, &shard_cfg(8, 9, FaultPlan::none()))
        .expect("fault-free run");
    let degraded =
        run_sharded_sbp_detailed(&data.graph, &shard_cfg(8, 9, FaultPlan::none().kill(3)))
            .expect("degraded run completes");

    assert!(degraded.degraded());
    assert_eq!(degraded.outcomes[3].status, ShardStatus::Dropped);
    assert_eq!(degraded.outcomes[3].attempts, 3, "1 attempt + 2 retries");
    assert_eq!(degraded.shard_summaries[3].num_blocks, 0);
    assert!(degraded.shard_summaries[3].mdl_total.is_nan());
    assert_eq!(
        degraded.stitch.reassigned_vertices,
        degraded.shard_summaries[3].num_vertices
    );
    assert_eq!(degraded.result.assignment.len(), 5000);

    let nmi_free = nmi(&data.ground_truth, &fault_free.result.assignment);
    let nmi_degraded = nmi(&data.ground_truth, &degraded.result.assignment);
    assert!(
        nmi_degraded >= nmi_free - 0.05,
        "degraded NMI {nmi_degraded:.4} trails fault-free NMI {nmi_free:.4} by more than 0.05"
    );
}

/// Acceptance: checkpoint a run, lose some shard files ("kill after k of n
/// shards"), resume — only the missing shards re-run, and the final MDL and
/// assignment reproduce the uninterrupted run exactly.
#[test]
fn checkpoint_resume_reruns_only_missing_shards() {
    let data = generate(DcsbmConfig {
        num_vertices: 600,
        num_communities: 6,
        target_num_edges: 6000,
        seed: 13,
        ..Default::default()
    });
    let cfg = shard_cfg(4, 5, FaultPlan::none());
    let dir = tmp(&format!("resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let uninterrupted =
        run_sharded_sbp_resumable(&data.graph, &cfg, &dir).expect("checkpointed run");
    for shard in 0..4 {
        assert!(dir.join(format!("shard_{shard}.ckpt")).is_file());
    }

    // Simulate a kill after shards 0 and 3 completed: lose 1 and 2.
    std::fs::remove_file(dir.join("shard_1.ckpt")).unwrap();
    std::fs::remove_file(dir.join("shard_2.ckpt")).unwrap();

    let resumed = run_sharded_sbp_resumable(&data.graph, &cfg, &dir).expect("resumed run");
    assert_eq!(resumed.outcomes[0].status, ShardStatus::Resumed);
    assert_eq!(resumed.outcomes[3].status, ShardStatus::Resumed);
    assert_eq!(
        resumed.outcomes[0].attempts, 0,
        "resumed shards do not re-run"
    );
    assert_eq!(resumed.outcomes[1].status, ShardStatus::Ok);
    assert_eq!(resumed.outcomes[2].status, ShardStatus::Ok);

    assert_eq!(resumed.result.mdl.total, uninterrupted.result.mdl.total);
    assert_eq!(resumed.result.assignment, uninterrupted.result.assignment);
    assert_eq!(resumed.result.num_blocks, uninterrupted.result.num_blocks);

    // A different config must be refused, not silently mixed in.
    let other = shard_cfg(4, 6, FaultPlan::none());
    assert!(run_sharded_sbp_resumable(&data.graph, &other, &dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CLI surfaces fault plans, retries, degradation and checkpoint/resume
/// with one-line diagnostics and distinct exit codes — never a panic
/// backtrace.
#[test]
fn cli_fault_plan_resume_and_exit_codes() {
    let mtx = tmp("faults-cli.mtx");
    let out = hsbp_bin()
        .args(["generate", "--vertices", "300", "--edges", "2700"])
        .args(["--communities", "4", "--ratio", "3.0", "--seed", "17"])
        .args(["--output", mtx.to_str().unwrap()])
        .output()
        .expect("run hsbp generate");
    assert!(out.status.success());
    let mtx = mtx.to_str().unwrap();

    // Transient faults recover; the report says so.
    let out = hsbp_bin()
        .args(["shard", "--input", mtx, "--shards", "4", "--seed", "3"])
        .args(["--fault-plan", "panic:1@1,corrupt:2@1"])
        .output()
        .expect("run hsbp shard with fault plan");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("recovered"), "stderr:\n{stderr}");

    // A permanently killed shard degrades with a warning, still exit 0.
    let out = hsbp_bin()
        .args(["shard", "--input", mtx, "--shards", "4", "--seed", "3"])
        .args(["--fault-plan", "panic:1@*"])
        .output()
        .expect("run hsbp shard with permanent fault");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("DROPPED"), "stderr:\n{stderr}");
    assert!(stderr.contains("degraded"), "stderr:\n{stderr}");

    // Checkpoint, then resume: second run reports resumed shards.
    let ckpt = tmp(&format!("cli-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let ckpt_s = ckpt.to_str().unwrap();
    let out = hsbp_bin()
        .args(["shard", "--input", mtx, "--shards", "4", "--seed", "3"])
        .args(["--checkpoint", ckpt_s])
        .output()
        .expect("checkpointed CLI run");
    assert!(out.status.success());
    let out = hsbp_bin()
        .args(["shard", "--input", mtx, "--shards", "4", "--seed", "3"])
        .args(["--resume", ckpt_s])
        .output()
        .expect("resumed CLI run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(
        stderr.contains("resumed from checkpoint"),
        "stderr:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&ckpt);

    // Distinct exit codes, one-line diagnostics, no backtraces.
    let cases: Vec<(Vec<&str>, i32, &str)> = vec![
        // Unknown flag → usage (2).
        (
            vec!["shard", "--input", mtx, "--frobnicate", "x"],
            2,
            "unknown flag",
        ),
        // Bad fault plan grammar → usage (2).
        (
            vec!["shard", "--input", mtx, "--fault-plan", "frob:0@1"],
            2,
            "fault",
        ),
        // Conflicting checkpoint/resume dirs → usage (2).
        (
            vec![
                "shard",
                "--input",
                mtx,
                "--checkpoint",
                "/tmp/a",
                "--resume",
                "/tmp/b",
            ],
            2,
            "pick one",
        ),
        // Unreadable graph → 3.
        (
            vec!["shard", "--input", "/definitely/not/here.mtx"],
            3,
            "cannot load",
        ),
        // Resume dir that is not a checkpoint → 5.
        (
            vec!["shard", "--input", mtx, "--resume", "/tmp"],
            5,
            "checkpoint",
        ),
        // Every shard killed → run failure (6).
        (
            vec![
                "shard",
                "--input",
                mtx,
                "--shards",
                "2",
                "--seed",
                "3",
                "--fault-plan",
                "panic:0@*,panic:1@*",
            ],
            6,
            "shard",
        ),
    ];
    for (args, want_code, want_text) in cases {
        let out = hsbp_bin().args(&args).output().expect("run hsbp shard");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(want_code),
            "args {args:?}\nstderr:\n{stderr}"
        );
        assert!(
            stderr.to_lowercase().contains(want_text),
            "args {args:?}: diagnostic missing `{want_text}`\nstderr:\n{stderr}"
        );
        assert!(
            !stderr.contains("panicked at"),
            "args {args:?}: backtrace leaked\nstderr:\n{stderr}"
        );
    }

    // Bad partition file → 4.
    let bad_parts = tmp("bad.part.2");
    std::fs::write(&bad_parts, "0\nnot-a-part-id\n1\n").unwrap();
    let out = hsbp_bin()
        .args(["shard", "--input", mtx, "--strategy", "file"])
        .args(["--parts", bad_parts.to_str().unwrap()])
        .output()
        .expect("run hsbp shard with bad parts");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(4), "stderr:\n{stderr}");
    assert!(stderr.contains("bad part id"), "stderr:\n{stderr}");

    // Partition file of the wrong length → 4 (PartitionMismatch).
    let short_parts = tmp("short.part.2");
    std::fs::write(&short_parts, "0\n1\n0\n").unwrap();
    let out = hsbp_bin()
        .args(["shard", "--input", mtx, "--strategy", "file"])
        .args(["--parts", short_parts.to_str().unwrap()])
        .output()
        .expect("run hsbp shard with short parts");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(4), "stderr:\n{stderr}");
}
