//! Run-budget, cooperative-cancellation and drift-audit behaviour of the
//! core SBP runtime.
//!
//! The contract under test: an unbudgeted `run_sbp_budgeted` is
//! bit-identical to `run_sbp`; a tripped budget returns the best-so-far
//! state equal to a *prefix point* of the uninterrupted run's trajectory;
//! injected incremental-state corruption is detected by the next audit and
//! repaired (or, in strict mode, surfaced as `HsbpError::StateDrift`).

use hsbp::blockmodel::{mdl, Blockmodel};
use hsbp::generator::{generate, DcsbmConfig};
use hsbp::metrics::nmi;
use hsbp::{
    run_sbp, run_sbp_budgeted, run_sbp_checked, CancelToken, Graph, HsbpError, RunBudget,
    SbpConfig, SbpResult, StopCause, Variant,
};
use proptest::prelude::*;
use std::time::Duration;

const VARIANTS: [Variant; 4] = [
    Variant::Metropolis,
    Variant::AsyncGibbs,
    Variant::Hybrid,
    Variant::ExactAsync,
];

fn planted_graph(seed: u64) -> (Graph, Vec<u32>) {
    let data = generate(DcsbmConfig {
        num_vertices: 200,
        num_communities: 4,
        target_num_edges: 1600,
        within_between_ratio: 3.0,
        seed,
        ..Default::default()
    });
    (data.graph, data.ground_truth)
}

fn singleton_mdl(graph: &Graph) -> f64 {
    let bm = Blockmodel::singleton_partition(graph);
    mdl::mdl(&bm, graph.num_vertices(), graph.total_weight()).total
}

/// The truncated run must equal a prefix of the uninterrupted trajectory
/// and still beat (or tie) the singleton start.
fn assert_prefix_of(truncated: &SbpResult, full: &SbpResult, graph: &Graph) {
    let k = truncated.trajectory.len();
    assert!(
        k <= full.trajectory.len(),
        "truncated trajectory longer than the full one"
    );
    assert_eq!(
        truncated.trajectory,
        full.trajectory[..k],
        "truncated trajectory is not a prefix of the uninterrupted run's"
    );
    assert!(
        truncated.mdl.total <= singleton_mdl(graph) + 1e-9,
        "best-so-far MDL {} worse than the singleton start {}",
        truncated.mdl.total,
        singleton_mdl(graph)
    );
    // Best-so-far = the argmin over the evaluated prefix (or the singleton
    // start when nothing completed).
    let prefix_best = truncated
        .trajectory
        .iter()
        .map(|&(_, m)| m)
        .fold(f64::INFINITY, f64::min);
    if k > 0 {
        assert!(truncated.mdl.total <= prefix_best + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite (a) + tentpole acceptance: with no budget, the budgeted
    /// entry point is bit-identical to `run_sbp` for every variant.
    #[test]
    fn unlimited_budget_is_bit_identical(seed in 0u64..1000, which in 0usize..4) {
        let (graph, _) = planted_graph(seed % 7);
        let cfg = SbpConfig::new(VARIANTS[which], seed);
        let plain = run_sbp(&graph, &cfg);
        let budgeted =
            run_sbp_budgeted(&graph, &cfg, &RunBudget::unlimited(), &CancelToken::new())
                .expect("valid config");
        prop_assert_eq!(plain.assignment, budgeted.assignment);
        prop_assert_eq!(plain.num_blocks, budgeted.num_blocks);
        prop_assert_eq!(plain.mdl.total, budgeted.mdl.total);
        prop_assert_eq!(plain.trajectory, budgeted.trajectory);
        prop_assert_eq!(budgeted.stats.stop_cause, StopCause::Completed);
        prop_assert!(!budgeted.truncated());
    }
}

#[test]
fn sweep_budget_truncates_to_trajectory_prefix() {
    let (graph, _) = planted_graph(1);
    for variant in VARIANTS {
        let cfg = SbpConfig::new(variant, 11);
        let full = run_sbp(&graph, &cfg);
        let total = full.stats.mcmc_sweeps;
        assert!(total >= 2, "{variant:?} run too short to truncate");
        let budget = RunBudget::unlimited().with_max_total_sweeps(total / 2);
        let cut = run_sbp_budgeted(&graph, &cfg, &budget, &CancelToken::new()).unwrap();
        assert!(cut.truncated(), "{variant:?} did not truncate");
        assert_eq!(cut.stats.stop_cause, StopCause::SweepBudgetExhausted);
        assert!(cut.stats.mcmc_sweeps <= total);
        assert_prefix_of(&cut, &full, &graph);
    }
}

#[test]
fn eval_budget_caps_outer_iterations() {
    let (graph, _) = planted_graph(2);
    let cfg = SbpConfig::new(Variant::Hybrid, 5);
    let full = run_sbp(&graph, &cfg);
    assert!(full.stats.outer_iterations > 1);
    let budget = RunBudget::unlimited().with_max_evaluations(1);
    let cut = run_sbp_budgeted(&graph, &cfg, &budget, &CancelToken::new()).unwrap();
    assert_eq!(cut.stats.outer_iterations, 1);
    assert_eq!(cut.trajectory.len(), 1);
    assert_eq!(cut.stats.stop_cause, StopCause::EvalBudgetExhausted);
    assert_prefix_of(&cut, &full, &graph);
}

#[test]
fn expired_deadline_returns_best_so_far() {
    let (graph, _) = planted_graph(3);
    for variant in VARIANTS {
        let cfg = SbpConfig::new(variant, 7);
        let full = run_sbp(&graph, &cfg);
        // A 1ns deadline has expired by the first check: the run must come
        // back immediately with the singleton start as best-so-far.
        let budget = RunBudget::unlimited().with_deadline(Duration::from_nanos(1));
        let cut = run_sbp_budgeted(&graph, &cfg, &budget, &CancelToken::new()).unwrap();
        assert!(cut.truncated());
        assert_eq!(cut.stats.stop_cause, StopCause::DeadlineExpired);
        assert!(cut.trajectory.is_empty());
        assert_eq!(cut.num_blocks, graph.num_vertices());
        assert_eq!(cut.assignment.len(), graph.num_vertices());
        assert_prefix_of(&cut, &full, &graph);
    }
}

#[test]
fn mid_run_deadline_is_still_a_trajectory_prefix() {
    // Wall-clock truncation lands at an arbitrary point, but wherever it
    // lands the result must be a completed prefix of the same trajectory.
    let (graph, _) = planted_graph(4);
    let cfg = SbpConfig::new(Variant::Metropolis, 13);
    let full = run_sbp(&graph, &cfg);
    for micros in [1u64, 50, 500, 5000] {
        let budget = RunBudget::unlimited().with_deadline(Duration::from_micros(micros));
        let cut = run_sbp_budgeted(&graph, &cfg, &budget, &CancelToken::new()).unwrap();
        assert_prefix_of(&cut, &full, &graph);
        if cut.truncated() {
            assert_eq!(cut.stats.stop_cause, StopCause::DeadlineExpired);
        }
    }
}

#[test]
fn pre_cancelled_token_stops_before_any_evaluation() {
    let (graph, _) = planted_graph(5);
    let token = CancelToken::new();
    token.cancel();
    let cfg = SbpConfig::new(Variant::Hybrid, 1);
    let cut = run_sbp_budgeted(&graph, &cfg, &RunBudget::unlimited(), &token).unwrap();
    assert!(cut.truncated());
    assert_eq!(cut.stats.stop_cause, StopCause::Cancelled);
    assert!(cut.trajectory.is_empty());
    assert_eq!(cut.num_blocks, graph.num_vertices());
}

#[test]
fn cancel_from_another_thread_is_honoured() {
    let (graph, _) = planted_graph(6);
    let cfg = SbpConfig::new(Variant::Metropolis, 2);
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        })
    };
    let result = run_sbp_budgeted(&graph, &cfg, &RunBudget::unlimited(), &token).unwrap();
    canceller.join().unwrap();
    // The run may finish before the cancel lands; either way the result is
    // coherent and the cause is recorded faithfully.
    assert_eq!(result.assignment.len(), graph.num_vertices());
    if result.truncated() {
        assert_eq!(result.stats.stop_cause, StopCause::Cancelled);
    }
}

#[test]
fn zero_deadline_is_rejected_as_config_error() {
    let (graph, _) = planted_graph(7);
    let cfg = SbpConfig::new(Variant::Hybrid, 1);
    let budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
    match run_sbp_budgeted(&graph, &cfg, &budget, &CancelToken::new()) {
        Err(HsbpError::InvalidConfig(_)) => {}
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn healthy_audits_are_pure_reads() {
    // Auditing at the tightest cadence must leave a healthy run
    // bit-identical to an unaudited one, for every variant.
    let (graph, _) = planted_graph(8);
    for variant in VARIANTS {
        let mut audited = SbpConfig::new(variant, 17);
        audited.audit_cadence = 1;
        let mut unaudited = audited.clone();
        unaudited.audit_cadence = 0;
        let a = run_sbp(&graph, &audited);
        let u = run_sbp(&graph, &unaudited);
        assert_eq!(a.assignment, u.assignment, "{variant:?}");
        assert_eq!(a.mdl.total, u.mdl.total, "{variant:?}");
        assert!(a.stats.audits_run > 0, "{variant:?} never audited");
        assert_eq!(u.stats.audits_run, 0);
        assert!(
            a.stats.drift_events.is_empty(),
            "{variant:?} phantom drift: {:?}",
            a.stats.drift_events
        );
    }
}

#[test]
fn injected_drift_is_detected_and_repaired_immediately() {
    // Cadence 1 audits right after the injection, before any sweep can act
    // on the corrupted state — so the repaired run is bit-identical to the
    // clean one and the event is fully recorded.
    let (graph, _) = planted_graph(9);
    let mut clean = SbpConfig::new(Variant::Hybrid, 23);
    clean.audit_cadence = 1;
    let mut corrupted = clean.clone();
    corrupted.inject_drift_at_sweep = Some(3);
    let c = run_sbp(&graph, &clean);
    let r = run_sbp(&graph, &corrupted);
    assert_eq!(r.stats.drift_events.len(), 1, "exactly one injection");
    let event = &r.stats.drift_events[0];
    assert_eq!(event.total_sweep, 3);
    assert!(event.repaired);
    assert!(!event.mismatches.is_empty());
    assert!(event.mdl_delta >= 0.0);
    assert!(c.stats.drift_events.is_empty());
    assert_eq!(r.assignment, c.assignment);
    assert_eq!(r.mdl.total, c.mdl.total);
}

#[test]
fn drift_caught_at_cadence_boundary_recovers_quality() {
    // Corruption at sweep 2, audit every 4 sweeps: sweeps 3–4 run against
    // the drifted state, the audit at sweep 4 repairs it, and the finished
    // run must land within 0.05 NMI of the uncorrupted one. All variants
    // now carry incremental state across sweeps (consolidation replays
    // accepted moves instead of rebuilding once the move count is small),
    // so drift survives to a cadence boundary everywhere; Metropolis is
    // simply the most direct such path.
    let (graph, truth) = planted_graph(10);
    let mut clean = SbpConfig::new(Variant::Metropolis, 29);
    clean.audit_cadence = 4;
    let mut corrupted = clean.clone();
    corrupted.inject_drift_at_sweep = Some(2);
    let c = run_sbp(&graph, &clean);
    let r = run_sbp(&graph, &corrupted);
    assert!(
        !r.stats.drift_events.is_empty(),
        "audit missed the injected corruption"
    );
    assert_eq!(r.stats.drift_events[0].total_sweep, 4);
    let agreement = nmi(&c.assignment, &r.assignment);
    assert!(
        agreement >= 0.95,
        "repaired run diverged: NMI(clean, repaired) = {agreement}"
    );
    // Both runs must still recover the planted structure.
    assert!(nmi(&truth, &r.assignment) > 0.8);
}

#[test]
fn strict_audit_turns_drift_into_an_error() {
    let (graph, _) = planted_graph(11);
    let mut cfg = SbpConfig::new(Variant::Metropolis, 29);
    cfg.audit_cadence = 4;
    cfg.strict_audit = true;
    cfg.inject_drift_at_sweep = Some(2);
    match run_sbp_checked(&graph, &cfg) {
        Err(HsbpError::StateDrift { sweep, detail }) => {
            assert_eq!(sweep, 4);
            assert!(!detail.is_empty());
        }
        other => panic!("expected StateDrift, got {other:?}"),
    }
}

/// Audit overhead at the default cadence on the acceptance-sized graph.
/// Ignored by default (slow); run with `--ignored` to print the numbers.
#[test]
#[ignore]
fn audit_overhead_at_default_cadence_is_small() {
    let data = generate(DcsbmConfig {
        num_vertices: 5000,
        num_communities: 32,
        target_num_edges: 50_000,
        within_between_ratio: 3.0,
        seed: 42,
        ..Default::default()
    });
    let mut unaudited = SbpConfig::new(Variant::Hybrid, 1);
    unaudited.audit_cadence = 0;
    let mut audited = unaudited.clone();
    audited.audit_cadence = 64;

    // Warm-up, then measure each configuration.
    let _ = run_sbp(&data.graph, &unaudited);
    let t0 = std::time::Instant::now();
    let base = run_sbp(&data.graph, &unaudited);
    let base_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let checked = run_sbp(&data.graph, &audited);
    let audit_secs = t1.elapsed().as_secs_f64();

    assert_eq!(base.assignment, checked.assignment);
    let overhead = audit_secs / base_secs - 1.0;
    eprintln!(
        "5k-vertex DCSBM: unaudited {base_secs:.3}s, cadence-64 audited {audit_secs:.3}s \
         ({} audits) -> overhead {:.2}%",
        checked.stats.audits_run,
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "audit overhead {:.2}% exceeds the 5% budget",
        overhead * 100.0
    );
}
