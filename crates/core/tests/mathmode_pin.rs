//! Golden-bit pins for `MathMode::Exact`.
//!
//! The fast-math work (x·ln x tables, SoA rows, batched proposals) must not
//! perturb the exact path: these fingerprints were captured from the
//! pre-fastmath tree, and every refactor since has to reproduce them
//! bit-for-bit across all four variants, thread counts 1/2/7, and under
//! budget truncation.

use hsbp_core::{run_sbp_budgeted, CancelToken, RunBudget, SbpConfig, Variant};
use hsbp_generator::{generate, DcsbmConfig};

/// FNV-1a over the assignment labels plus the block count.
fn fingerprint(assignment: &[u32], num_blocks: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(num_blocks as u64);
    for &a in assignment {
        eat(u64::from(a));
    }
    h
}

fn pin_case(variant: Variant, threads: usize, truncated: bool) -> (u64, u64) {
    let data = generate(DcsbmConfig {
        num_vertices: 600,
        num_communities: 6,
        target_num_edges: 4800,
        seed: 11,
        ..Default::default()
    });
    let cfg = SbpConfig {
        variant,
        threads,
        seed: 1303,
        ..SbpConfig::new(variant, 1303)
    };
    let budget = if truncated {
        RunBudget::unlimited().with_max_total_sweeps(60)
    } else {
        RunBudget::unlimited()
    };
    let out = run_sbp_budgeted(&data.graph, &cfg, &budget, &CancelToken::new())
        .unwrap_or_else(|e| panic!("run failed: {e}"));
    if truncated {
        assert!(
            out.truncated(),
            "budget of 60 sweeps should truncate {variant:?}"
        );
    }
    (
        out.mdl.total.to_bits(),
        fingerprint(&out.assignment, out.num_blocks),
    )
}

/// `(variant, truncated) -> (mdl_bits, fingerprint)` captured pre-fastmath.
/// Thread count is not part of the key: results are pinned identical across
/// 1/2/7 threads.
const GOLDEN: [(Variant, bool, u64, u64); 8] = [
    (
        Variant::Metropolis,
        false,
        0x40e2_f711_9e6d_350e,
        0x1907_a1c6_0ee6_4286,
    ),
    (
        Variant::Metropolis,
        true,
        0x40e8_5cec_2037_b95c,
        0x97bb_fafe_772d_ffd4,
    ),
    (
        Variant::AsyncGibbs,
        false,
        0x40e2_f6af_0801_09cf,
        0xbdc0_0d8e_e270_3ec6,
    ),
    (
        Variant::AsyncGibbs,
        true,
        0x40e9_055c_48e7_7ae8,
        0x6a27_f891_2b61_5d44,
    ),
    (
        Variant::Hybrid,
        false,
        0x40e2_f6c0_f925_4603,
        0x4105_5141_94d1_bb46,
    ),
    (
        Variant::Hybrid,
        true,
        0x40e8_ad07_a65d_4fa5,
        0xb757_0b2e_d717_b770,
    ),
    (
        Variant::ExactAsync,
        false,
        0x40e2_f6f1_3c59_12ee,
        0x4a5f_40ce_ddb2_74e7,
    ),
    (
        Variant::ExactAsync,
        true,
        0x40e8_6c65_327c_e03a,
        0x7b43_32ce_9897_e1aa,
    ),
];

#[test]
fn exact_mode_matches_prechange_golden_bits() {
    for (variant, truncated, mdl_bits, fp) in GOLDEN {
        for threads in [1usize, 2, 7] {
            let (got_bits, got_fp) = pin_case(variant, threads, truncated);
            assert_eq!(
                got_bits, mdl_bits,
                "MDL bits drifted for {variant:?} t{threads} trunc={truncated}: \
                 got {got_bits:#018x}, pinned {mdl_bits:#018x}"
            );
            assert_eq!(
                got_fp, fp,
                "assignment drifted for {variant:?} t{threads} trunc={truncated}: \
                 got {got_fp:#018x}, pinned {fp:#018x}"
            );
        }
    }
}
