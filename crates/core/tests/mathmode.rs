//! Table-mode exactness: the fast-math tables must not change *results*,
//! only their cost.
//!
//! [`MathMode::Table`]'s kernel keeps the exact formula's association and
//! serves `ln` of in-range integer counts from a table whose entries are
//! computed with the same libm `ln` — so every delta-MDL term, every
//! accept/reject decision, and hence every assignment and MDL is
//! bit-identical to [`MathMode::Exact`]. These tests pin that contract on
//! full runs (well inside the ISSUE's 1e-9 tolerance: the divergence is
//! exactly zero).

use hsbp_core::{run_sbp_budgeted, CancelToken, MathMode, RunBudget, SbpConfig, Variant};
use hsbp_generator::{generate, DcsbmConfig};
use hsbp_metrics::nmi;

const VARIANTS: [Variant; 4] = [
    Variant::Metropolis,
    Variant::AsyncGibbs,
    Variant::Hybrid,
    Variant::ExactAsync,
];

fn run(
    graph: &hsbp_graph::Graph,
    variant: Variant,
    mode: MathMode,
    threads: usize,
) -> hsbp_core::SbpResult {
    let cfg = SbpConfig {
        variant,
        threads,
        math_mode: mode,
        ..SbpConfig::new(variant, 4241)
    };
    let budget = RunBudget::unlimited().with_max_total_sweeps(80);
    match run_sbp_budgeted(graph, &cfg, &budget, &CancelToken::new()) {
        Ok(out) => out,
        Err(e) => panic!("{variant:?}/{mode:?} run failed: {e}"),
    }
}

/// Table mode reproduces Exact bit-for-bit: same assignment, same MDL bits,
/// same NMI against ground truth — across all four variants and a serial
/// plus an oversubscribed thread count.
#[test]
fn table_mode_is_bit_identical_to_exact() {
    let data = generate(DcsbmConfig {
        num_vertices: 700,
        num_communities: 7,
        target_num_edges: 5_600,
        seed: 23,
        ..Default::default()
    });
    for variant in VARIANTS {
        for threads in [1usize, 5] {
            let exact = run(&data.graph, variant, MathMode::Exact, threads);
            let table = run(&data.graph, variant, MathMode::Table, threads);
            assert_eq!(
                exact.assignment, table.assignment,
                "{variant:?} threads={threads}: Table assignment diverged from Exact"
            );
            assert_eq!(
                exact.mdl.total.to_bits(),
                table.mdl.total.to_bits(),
                "{variant:?} threads={threads}: Table MDL bits diverged from Exact"
            );
            assert_eq!(exact.num_blocks, table.num_blocks);
            let nmi_exact = nmi(&exact.assignment, &data.ground_truth);
            let nmi_table = nmi(&table.assignment, &data.ground_truth);
            assert_eq!(
                nmi_exact.to_bits(),
                nmi_table.to_bits(),
                "{variant:?} threads={threads}: NMI changed under Table mode"
            );
        }
    }
}

/// The per-proposal contract from the ISSUE, checked at the delta level:
/// Table's delta-MDL is within 1e-9 of Exact for every proposal. Bit
/// identity (asserted above) subsumes this, but keep the tolerance form as
/// a named guard in case the Table kernel is ever re-associated.
#[test]
fn table_delta_mdl_within_tolerance_of_exact() {
    use hsbp_blockmodel::{evaluate_move_with_mode, Blockmodel, NeighborCounts, ProposalArena};

    let data = generate(DcsbmConfig {
        num_vertices: 400,
        num_communities: 8,
        target_num_edges: 3_200,
        seed: 5,
        ..Default::default()
    });
    let graph = &data.graph;
    let bm = Blockmodel::from_assignment(graph, data.ground_truth.clone(), 8);
    let mut exact_arena = ProposalArena::default();
    let mut table_arena = ProposalArena::default();
    for v in 0..graph.num_vertices() as u32 {
        let from = bm.block_of(v);
        for to in 0..8u32 {
            if to == from {
                continue;
            }
            NeighborCounts::gather_into(
                graph,
                bm.assignment(),
                v,
                &mut exact_arena.scratch,
                &mut exact_arena.counts,
            );
            let e = evaluate_move_with_mode(
                &bm,
                from,
                to,
                &exact_arena.counts,
                &mut exact_arena.eval,
                MathMode::Exact,
            );
            NeighborCounts::gather_into(
                graph,
                bm.assignment(),
                v,
                &mut table_arena.scratch,
                &mut table_arena.counts,
            );
            let t = evaluate_move_with_mode(
                &bm,
                from,
                to,
                &table_arena.counts,
                &mut table_arena.eval,
                MathMode::Table,
            );
            assert!(
                (e.delta_mdl - t.delta_mdl).abs() <= 1e-9,
                "v={v} {from}->{to}: |{} - {}| > 1e-9",
                e.delta_mdl,
                t.delta_mdl
            );
        }
    }
}
