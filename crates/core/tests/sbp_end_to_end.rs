//! End-to-end tests of the full SBP driver on generated DCSBM graphs:
//! accuracy (NMI against planted truth), determinism, the paper's headline
//! speedup ordering under the simulated scheduler, and edge cases.

use hsbp_core::{run_sbp, SbpConfig, Variant};
use hsbp_generator::{generate, DcsbmConfig};
use hsbp_graph::Graph;
use hsbp_metrics::nmi;

fn strong_graph(seed: u64) -> (hsbp_graph::Graph, Vec<u32>) {
    let data = generate(DcsbmConfig {
        num_vertices: 600,
        num_communities: 6,
        target_num_edges: 6000,
        within_between_ratio: 3.0,
        degree_exponent: 2.5,
        min_degree: 2,
        max_degree: 60,
        community_size_exponent: 0.5,
        seed,
    });
    (data.graph, data.ground_truth)
}

#[test]
fn all_variants_recover_planted_communities() {
    let (graph, truth) = strong_graph(42);
    for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
        let result = run_sbp(&graph, &SbpConfig::new(variant, 7));
        let score = nmi(&truth, &result.assignment);
        assert!(
            score > 0.85,
            "{}: NMI {score} too low ({} blocks found)",
            variant.name(),
            result.num_blocks
        );
        assert!(
            result.normalized_mdl < 1.0,
            "{}: normalized MDL {} should beat the null",
            variant.name(),
            result.normalized_mdl
        );
        // Block count in the right ballpark of the planted 6.
        assert!(
            (3..=12).contains(&result.num_blocks),
            "{}: found {} blocks",
            variant.name(),
            result.num_blocks
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let (graph, _) = strong_graph(1);
    for variant in [Variant::Metropolis, Variant::Hybrid] {
        let a = run_sbp(&graph, &SbpConfig::new(variant, 33));
        let b = run_sbp(&graph, &SbpConfig::new(variant, 33));
        assert_eq!(
            a.assignment,
            b.assignment,
            "{} not deterministic",
            variant.name()
        );
        assert_eq!(a.mdl.total, b.mdl.total);
    }
}

#[test]
fn different_seeds_explore_differently() {
    let (graph, _) = strong_graph(2);
    let a = run_sbp(&graph, &SbpConfig::new(Variant::Metropolis, 1));
    let b = run_sbp(&graph, &SbpConfig::new(Variant::Metropolis, 2));
    // Same graph, different seeds: states may coincide at convergence but
    // the full trajectories (sweeps executed) almost surely differ.
    assert!(
        a.assignment != b.assignment || a.stats.mcmc_sweeps != b.stats.mcmc_sweeps,
        "two seeds produced byte-identical runs"
    );
}

#[test]
fn simulated_speedup_ordering_matches_paper() {
    // Paper headline: at high thread counts, A-SBP's MCMC phase is fastest,
    // H-SBP in between, serial SBP slowest (Figs. 4b/6); SBP does not scale
    // at all.
    let (graph, _) = strong_graph(3);
    let mut mcmc_time = std::collections::HashMap::new();
    for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
        let result = run_sbp(&graph, &SbpConfig::new(variant, 5));
        mcmc_time.insert(
            variant.name(),
            (
                result.stats.sim_mcmc_time(1).unwrap(),
                result.stats.sim_mcmc_time(128).unwrap(),
            ),
        );
    }
    let (sbp_1, sbp_128) = mcmc_time["SBP"];
    assert_eq!(sbp_1, sbp_128, "serial SBP must not scale");
    let (_, asbp_128) = mcmc_time["A-SBP"];
    let (_, hsbp_128) = mcmc_time["H-SBP"];
    let asbp_speedup = sbp_128 / asbp_128;
    let hsbp_speedup = sbp_128 / hsbp_128;
    assert!(
        asbp_speedup > hsbp_speedup,
        "A-SBP speedup {asbp_speedup} should exceed H-SBP {hsbp_speedup}"
    );
    assert!(
        hsbp_speedup > 1.0,
        "H-SBP should still beat serial SBP, got {hsbp_speedup}"
    );
    assert!(
        (1.5..30.0).contains(&asbp_speedup),
        "A-SBP speedup {asbp_speedup} outside plausible envelope"
    );
}

#[test]
fn parallel_variants_need_at_least_comparable_sweeps() {
    // Paper Fig. 8a: asynchronous processing needs *more* MCMC iterations on
    // synthetic graphs. Allow slack, but A-SBP should not need dramatically
    // fewer sweeps than SBP.
    let (graph, _) = strong_graph(4);
    let sbp = run_sbp(&graph, &SbpConfig::new(Variant::Metropolis, 9));
    let asbp = run_sbp(&graph, &SbpConfig::new(Variant::AsyncGibbs, 9));
    assert!(
        asbp.stats.mcmc_sweeps as f64 >= 0.8 * sbp.stats.mcmc_sweeps as f64,
        "A-SBP used {} sweeps vs SBP {}",
        asbp.stats.mcmc_sweeps,
        sbp.stats.mcmc_sweeps
    );
}

#[test]
fn weak_structure_yields_high_normalized_mdl() {
    // A near-structureless graph (the p2p-Gnutella31 situation, §5.3): the
    // fitted normalized MDL stays close to 1.
    let data = generate(DcsbmConfig {
        num_vertices: 400,
        num_communities: 8,
        target_num_edges: 1200,
        within_between_ratio: 0.12,
        degree_exponent: 3.5,
        min_degree: 1,
        max_degree: 8,
        community_size_exponent: 0.2,
        seed: 77,
    });
    let result = run_sbp(&data.graph, &SbpConfig::new(Variant::Metropolis, 3));
    assert!(
        result.normalized_mdl > 0.9,
        "structureless graph fitted suspiciously well: {}",
        result.normalized_mdl
    );
    // And the recovered labels share little information with the "truth".
    let score = nmi(&data.ground_truth, &result.assignment);
    assert!(
        score < 0.5,
        "NMI {score} should be low on a structureless graph"
    );
}

#[test]
fn mcmc_dominates_wall_clock() {
    // Fig. 2: the MCMC phase takes the bulk of execution time.
    let (graph, _) = strong_graph(5);
    let result = run_sbp(&graph, &SbpConfig::new(Variant::Metropolis, 2));
    let fraction = result.stats.timer.fraction(hsbp_timing::Phase::Mcmc);
    assert!(
        fraction > 0.4,
        "MCMC fraction {fraction} unexpectedly small"
    );
}

#[test]
fn empty_graph_handled() {
    let graph = Graph::from_edges(0, &[]);
    let result = run_sbp(&graph, &SbpConfig::default());
    assert_eq!(result.num_blocks, 0);
    assert!(result.assignment.is_empty());
}

#[test]
fn edgeless_graph_handled() {
    let graph = Graph::from_edges(5, &[]);
    let result = run_sbp(&graph, &SbpConfig::default());
    assert_eq!(result.assignment.len(), 5);
    assert!(result.num_blocks >= 1);
}

#[test]
fn tiny_graph_handled() {
    let graph = Graph::from_edges(2, &[(0, 1), (1, 0)]);
    for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
        let result = run_sbp(&graph, &SbpConfig::new(variant, 0));
        assert_eq!(result.assignment.len(), 2);
        assert!(result.num_blocks >= 1 && result.num_blocks <= 2);
    }
}

#[test]
fn batched_asbp_end_to_end() {
    let (graph, truth) = strong_graph(6);
    let cfg = SbpConfig {
        variant: Variant::AsyncGibbs,
        asbp_batches: 4,
        seed: 11,
        ..Default::default()
    };
    let result = run_sbp(&graph, &cfg);
    let score = nmi(&truth, &result.assignment);
    assert!(score > 0.8, "batched A-SBP NMI {score}");
}

#[test]
fn hybrid_fraction_sweep_stays_accurate() {
    let (graph, truth) = strong_graph(8);
    for fraction in [0.05, 0.30] {
        let cfg = SbpConfig {
            variant: Variant::Hybrid,
            hybrid_serial_fraction: fraction,
            seed: 13,
            ..Default::default()
        };
        let result = run_sbp(&graph, &cfg);
        let score = nmi(&truth, &result.assignment);
        assert!(score > 0.8, "H-SBP f={fraction}: NMI {score}");
    }
}
