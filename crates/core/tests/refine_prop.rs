//! Property tests for warm-started dirty-region refinement: after an
//! arbitrary mutation batch, the incremental resweep must land within
//! tolerance of a cold full re-run on the same mutated graph — and a
//! budget-truncated resweep must still leave a valid, consistent partition.

use hsbp_blockmodel::{mdl, Blockmodel};
use hsbp_core::{refine_partition, run_sbp, CancelToken, RunBudget, SbpConfig, StopCause, Variant};
use hsbp_graph::{Graph, GraphBuilder, Vertex};
use proptest::prelude::*;

/// A planted 3-community DCSBM-ish graph plus the planted labels.
fn arb_planted() -> impl Strategy<Value = (Graph, Vec<u32>)> {
    (12usize..30, any::<u64>()).prop_map(|(per, seed)| {
        let n = per * 3;
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut edges = Vec::new();
        for u in 0..n {
            let gu = u / per;
            for _ in 0..5 {
                let v = if rnd() % 10 < 8 {
                    gu * per + rnd() % per
                } else {
                    rnd() % n
                };
                if v != u {
                    edges.push((u as u32, v as u32));
                }
            }
        }
        let truth: Vec<u32> = (0..n as u32).map(|v| v / per as u32).collect();
        (Graph::from_edges(n, &edges), truth)
    })
}

/// Apply a deterministic mutation batch (edge additions, removals, and a
/// vertex growth) to `g`, returning the mutated graph and the touched
/// vertices.
fn mutate(g: &Graph, salt: u64, grow: usize) -> (Graph, Vec<Vertex>) {
    let n = g.num_vertices();
    let mut state = salt | 1;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut dirty = Vec::new();
    let mut b = GraphBuilder::new(n + grow);
    // Drop ~10% of existing edges, keep the rest.
    for (u, v, w) in g.edges() {
        if rnd() % 10 == 0 {
            dirty.push(u);
            dirty.push(v);
        } else {
            b.add_edge_weighted(u, v, w);
        }
    }
    // Add fresh edges, including wiring for the grown vertices.
    for _ in 0..(n / 4).max(2) {
        let u = rnd() % (n + grow);
        let v = rnd() % (n + grow);
        if u != v {
            b.add_edge(u as Vertex, v as Vertex);
            dirty.push(u as Vertex);
            dirty.push(v as Vertex);
        }
    }
    for x in 0..grow {
        let t = rnd() % n;
        b.add_edge((n + x) as Vertex, t as Vertex);
        dirty.push(t as Vertex);
    }
    (b.build(), dirty)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Incremental dirty-region resweep after a mutation batch reaches an
    /// MDL within tolerance of a cold full re-run on the mutated graph.
    #[test]
    fn warm_resweep_tracks_cold_rerun(
        (g, truth) in arb_planted(),
        salt in any::<u64>(),
        seed in any::<u64>(),
        grow in 0usize..4,
    ) {
        let (mutated, dirty) = mutate(&g, salt, grow);
        let cfg = SbpConfig {
            variant: Variant::Metropolis,
            seed,
            ..Default::default()
        };
        let warm = refine_partition(
            &mutated, &truth, 3, &dirty, &cfg,
            &RunBudget::unlimited(), &CancelToken::new(),
        ).unwrap();
        let cold = run_sbp(&mutated, &cfg);
        // The cold run re-searches the block count from scratch; the warm
        // resweep only polishes the dirty region. Tolerance: within 25% of
        // the cold MDL (and never a catastrophic blow-up).
        prop_assert!(
            warm.mdl.total <= cold.mdl.total.abs() * 0.25 + cold.mdl.total,
            "warm MDL {} vs cold {} (dirty {} of {})",
            warm.mdl.total, cold.mdl.total, warm.dirty_vertices,
            mutated.num_vertices(),
        );
        // And the result is a genuine partition of the mutated graph.
        prop_assert_eq!(warm.assignment.len(), mutated.num_vertices());
        let bm = Blockmodel::from_assignment(&mutated, warm.assignment.clone(), warm.num_blocks);
        prop_assert!(bm.check_consistency(&mutated).is_ok());
        let recomputed = mdl::mdl(&bm, mutated.num_vertices(), mutated.total_weight()).total;
        prop_assert!((recomputed - warm.mdl.total).abs() < 1e-6);
    }

    /// Budget truncation mid-resweep still returns a consistent partition
    /// with every label in range, and flags the truncation.
    #[test]
    fn truncated_resweep_stays_consistent(
        (g, truth) in arb_planted(),
        salt in any::<u64>(),
        seed in any::<u64>(),
        cap in 1usize..3,
    ) {
        let (mutated, dirty) = mutate(&g, salt, 2);
        let cfg = SbpConfig {
            variant: Variant::Metropolis,
            seed,
            mcmc_threshold: 0.0, // never converge naturally
            ..Default::default()
        };
        let budget = RunBudget::unlimited().with_max_total_sweeps(cap);
        let out = refine_partition(
            &mutated, &truth, 3, &dirty, &cfg, &budget, &CancelToken::new(),
        ).unwrap();
        prop_assert!(out.truncated);
        prop_assert_eq!(out.stats.stop_cause, StopCause::SweepBudgetExhausted);
        prop_assert!(out.sweeps <= cap);
        prop_assert_eq!(out.assignment.len(), mutated.num_vertices());
        prop_assert!(out.assignment.iter().all(|&b| (b as usize) < out.num_blocks));
        let bm = Blockmodel::from_assignment(&mutated, out.assignment.clone(), out.num_blocks);
        prop_assert!(bm.check_consistency(&mutated).is_ok());
    }

    /// Determinism: the same (graph, warm, dirty, cfg) always produces the
    /// same refined partition, regardless of how often it runs.
    #[test]
    fn resweep_is_deterministic(
        (g, truth) in arb_planted(),
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let (mutated, dirty) = mutate(&g, salt, 1);
        let cfg = SbpConfig { variant: Variant::Metropolis, seed, ..Default::default() };
        let run = || refine_partition(
            &mutated, &truth, 3, &dirty, &cfg,
            &RunBudget::unlimited(), &CancelToken::new(),
        ).unwrap();
        let a = run();
        let b = run();
        prop_assert_eq!(a.assignment, b.assignment);
        prop_assert_eq!(a.num_blocks, b.num_blocks);
        prop_assert!((a.mdl.total - b.mdl.total).abs() < 1e-12);
    }
}
