//! Property tests for the SBP phases: no sequence of merge/MCMC phases may
//! ever corrupt the blockmodel, and the driver must terminate with a valid
//! partition on arbitrary small graphs.

use hsbp_blockmodel::Blockmodel;
use hsbp_core::{merge_phase, run_mcmc_phase, run_sbp, RunStats, SbpConfig, Variant};
use hsbp_graph::Graph;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

fn variant_from(selector: u8) -> Variant {
    match selector % 3 {
        0 => Variant::Metropolis,
        1 => Variant::AsyncGibbs,
        _ => Variant::Hybrid,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An MCMC phase on an arbitrary graph/partition leaves a consistent
    /// model and never increases the MDL beyond rounding.
    #[test]
    fn mcmc_phase_preserves_consistency(g in arb_graph(), vsel in any::<u8>(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let c = (n / 3).max(1);
        let assignment: Vec<u32> = (0..n as u32).map(|v| v % c as u32).collect();
        let mut bm = Blockmodel::from_assignment(&g, assignment, c);
        let cfg = SbpConfig {
            variant: variant_from(vsel),
            seed,
            max_sweeps: 4,
            ..Default::default()
        };
        let before = hsbp_blockmodel::mdl::mdl(&bm, n, g.total_weight()).total;
        let mut stats = RunStats::new(&cfg);
        let out = run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
        prop_assert!(bm.check_consistency(&g).is_ok());
        // MH only accepts good moves deterministically; bad ones with
        // exponential probability — on average MDL improves, but any single
        // run may worsen slightly. Permit a generous slack, but it must not
        // blow up.
        prop_assert!(out.mdl.total <= before.abs() * 2.0 + before + 50.0,
            "MDL exploded from {} to {}", before, out.mdl.total);
    }

    /// The merge phase hits its target whenever enough candidates exist and
    /// always leaves a consistent, compactly-labelled model.
    #[test]
    fn merge_phase_consistent(g in arb_graph(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let mut bm = Blockmodel::singleton_partition(&g);
        let target = (n / 2).max(1);
        let cfg = SbpConfig { seed, ..Default::default() };
        let mut stats = RunStats::new(&cfg);
        let out = merge_phase(&g, &mut bm, target, &cfg, 0, &mut stats);
        prop_assert!(bm.check_consistency(&g).is_ok());
        prop_assert!(out.num_blocks >= 1);
        prop_assert!(bm.assignment().iter().all(|&b| (b as usize) < bm.num_blocks()));
    }

    /// The full driver terminates on arbitrary graphs with a valid result.
    #[test]
    fn driver_terminates_validly(g in arb_graph(), vsel in any::<u8>(), seed in any::<u64>()) {
        let cfg = SbpConfig {
            variant: variant_from(vsel),
            seed,
            max_sweeps: 5,
            ..Default::default()
        };
        let result = run_sbp(&g, &cfg);
        prop_assert_eq!(result.assignment.len(), g.num_vertices());
        prop_assert!(result.num_blocks >= 1);
        prop_assert!(result.assignment.iter().all(|&b| (b as usize) < result.num_blocks));
        prop_assert!(result.mdl.total.is_finite());
        // The returned partition's MDL matches the best of the trajectory.
        if let Some(best) = result.trajectory.iter().map(|&(_, m)| m).reduce(f64::min) {
            prop_assert!(result.mdl.total <= best + 1e-6);
        }
    }
}
