//! Run configuration for stochastic block partitioning.

use hsbp_blockmodel::MathMode;
use hsbp_timing::{Chunking, CostModel, DEFAULT_THREAD_COUNTS};

/// Which MCMC phase algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Serial Metropolis-Hastings (the paper's "SBP" baseline, Alg. 2).
    Metropolis,
    /// Asynchronous Gibbs ("A-SBP", Alg. 3).
    AsyncGibbs,
    /// Hybrid serial/asynchronous ("H-SBP", Alg. 4).
    Hybrid,
    /// Exact asynchronous Gibbs with per-worker model replicas (Terenin et
    /// al.; the design §3.1 of the paper argues against — kept for the
    /// replication-overhead ablation).
    ExactAsync,
}

impl Variant {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Metropolis => "SBP",
            Variant::AsyncGibbs => "A-SBP",
            Variant::Hybrid => "H-SBP",
            Variant::ExactAsync => "EA-SBP",
        }
    }
}

/// How the parallel sweep variants fold a sweep's accepted moves back into
/// the blockmodel at the end of the sweep (batch for A-SBP with
/// `asbp_batches > 1`).
///
/// Both strategies produce byte-identical blockmodels — the sparse rows are
/// canonical sorted vectors and the incremental path applies exact integer
/// deltas — so the choice is purely a performance trade-off, made per sweep
/// by the [`hsbp_timing::CostModel`] crossover in [`Consolidation::Auto`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Consolidation {
    /// Per-sweep cost-model decision: apply accepted moves via O(degree)
    /// `apply_move` deltas when that undercuts a full O(E) rebuild.
    #[default]
    Auto,
    /// Always apply moves incrementally (testing/ablation).
    ForceIncremental,
    /// Always rebuild from the membership vector — the pre-consolidation
    /// behaviour (testing/ablation).
    ForceRebuild,
    /// Run *both* paths every sweep and error with
    /// [`crate::HsbpError::StateDrift`] if they disagree (debug harness;
    /// pays for both).
    Verify,
}

/// Full configuration of an SBP run.
#[derive(Debug, Clone)]
pub struct SbpConfig {
    /// MCMC phase algorithm.
    pub variant: Variant,
    /// Inverse temperature of the MH acceptance test (graph-challenge
    /// reference uses 3).
    pub beta: f64,
    /// Convergence threshold `t`: the MCMC phase stops when the mean
    /// per-sweep MDL improvement over the last three sweeps falls below
    /// `t · MDL` (Algorithms 2–4's "until ΔMDL < t × MDL").
    pub mcmc_threshold: f64,
    /// Sweep cap `x` per MCMC phase.
    pub max_sweeps: usize,
    /// Fraction of highest-degree vertices H-SBP processes serially
    /// (paper §4.2 reserves 15%).
    pub hybrid_serial_fraction: f64,
    /// Merge candidates proposed per block in the merge phase (Alg. 1's
    /// `x`; reference uses 10).
    pub merge_proposals_per_block: usize,
    /// Fraction of blocks removed per agglomerative step (0.5 = halve).
    pub block_reduction_rate: f64,
    /// Number of batches an A-SBP sweep is split into, with a blockmodel
    /// rebuild after each batch. 1 = the paper's A-SBP; larger values are
    /// the "batched A-SBP" extension sketched in the paper's conclusion.
    pub asbp_batches: usize,
    /// Age (in sweeps) of the blockmodel A-SBP evaluates against. 1 = the
    /// paper's A-SBP (state is at most one sweep stale); larger values
    /// emulate a *distributed* A-SBP where workers synchronise every
    /// `asbp_staleness` rounds (paper §6 future work). Ignored by the other
    /// variants and by batched sweeps (`asbp_batches > 1`).
    pub asbp_staleness: usize,
    /// Number of logical workers (model replicas) for
    /// [`Variant::ExactAsync`].
    pub exact_async_workers: usize,
    /// Master seed; the run is a pure function of `(graph, config)`.
    pub seed: u64,
    /// OS worker threads for the parallel sweep sections. 0 = auto: the
    /// `HSBP_THREADS` env var if set, else the host's available parallelism.
    /// Results are bit-identical across thread counts (per-vertex counter
    /// RNG + fixed output slots), so this is purely a performance knob.
    pub threads: usize,
    /// Safety cap on outer (merge + MCMC) iterations.
    pub max_outer_iterations: usize,
    /// Drift-audit cadence in cumulative MCMC sweeps: every `audit_cadence`
    /// sweeps the blockmodel + MDL are rebuilt from the membership vector
    /// and compared against the incrementally-maintained state. 0 disables
    /// auditing. Audits are read-only on healthy state, so any cadence
    /// leaves healthy runs bit-identical.
    pub audit_cadence: usize,
    /// In strict mode a detected drift aborts the run with
    /// `HsbpError::StateDrift`; otherwise the state is repaired from
    /// membership and the event recorded in `RunStats::drift_events`.
    pub strict_audit: bool,
    /// Test hook: deterministically corrupt the incremental blockmodel
    /// state right after this cumulative sweep completes (membership is
    /// left intact, so the next audit must catch it). `None` in production.
    pub inject_drift_at_sweep: Option<usize>,
    /// End-of-sweep consolidation strategy for the parallel variants.
    pub consolidation: Consolidation,
    /// How delta-MDL terms are computed in the proposal hot path:
    /// [`MathMode::Exact`] is the property-pinned libm path,
    /// [`MathMode::Table`] serves the `ln`/`x·ln x` terms from precomputed
    /// integer tables (bit-identical for in-range integer counts, exact
    /// fallback otherwise). Defaults to the `HSBP_MATH` env var, `exact`
    /// when unset.
    pub math_mode: MathMode,
    /// Cost model for the simulated-thread accounting.
    pub cost_model: CostModel,
    /// Virtual thread counts tracked by the simulated scheduler.
    pub sim_thread_counts: Vec<usize>,
    /// Parallel-loop schedule used by the simulated scheduler.
    pub sim_chunking: Chunking,
}

impl Default for SbpConfig {
    fn default() -> Self {
        Self {
            variant: Variant::Metropolis,
            beta: 3.0,
            mcmc_threshold: 1e-4,
            max_sweeps: 50,
            hybrid_serial_fraction: 0.15,
            merge_proposals_per_block: 10,
            block_reduction_rate: 0.5,
            asbp_batches: 1,
            asbp_staleness: 1,
            exact_async_workers: 8,
            seed: 0,
            threads: 0,
            max_outer_iterations: 200,
            audit_cadence: 64,
            strict_audit: false,
            inject_drift_at_sweep: None,
            consolidation: Consolidation::Auto,
            math_mode: MathMode::from_env(),
            cost_model: CostModel::default(),
            sim_thread_counts: DEFAULT_THREAD_COUNTS.to_vec(),
            sim_chunking: Chunking::Static,
        }
    }
}

impl SbpConfig {
    /// Convenience constructor: given variant and seed, defaults elsewhere.
    pub fn new(variant: Variant, seed: u64) -> Self {
        Self {
            variant,
            seed,
            ..Default::default()
        }
    }

    /// Validate invariants; called by the driver.
    // Negated comparisons are deliberate: they reject NaN as well.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.beta > 0.0) {
            return Err("beta must be positive".into());
        }
        if !(self.mcmc_threshold >= 0.0) {
            return Err("mcmc_threshold must be non-negative".into());
        }
        if self.max_sweeps == 0 {
            return Err("max_sweeps must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.hybrid_serial_fraction) {
            return Err("hybrid_serial_fraction must be in [0, 1]".into());
        }
        if self.merge_proposals_per_block == 0 {
            return Err("merge_proposals_per_block must be at least 1".into());
        }
        if !(self.block_reduction_rate > 0.0 && self.block_reduction_rate < 1.0) {
            return Err("block_reduction_rate must be in (0, 1)".into());
        }
        if self.asbp_batches == 0 {
            return Err("asbp_batches must be at least 1".into());
        }
        if self.asbp_staleness == 0 {
            return Err("asbp_staleness must be at least 1".into());
        }
        if self.exact_async_workers == 0 {
            return Err("exact_async_workers must be at least 1".into());
        }
        if self.sim_thread_counts.is_empty() {
            return Err("sim_thread_counts must not be empty".into());
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(SbpConfig::default().validate().is_ok());
        for v in [
            Variant::Metropolis,
            Variant::AsyncGibbs,
            Variant::Hybrid,
            Variant::ExactAsync,
        ] {
            assert!(SbpConfig::new(v, 3).validate().is_ok());
        }
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(Variant::Metropolis.name(), "SBP");
        assert_eq!(Variant::AsyncGibbs.name(), "A-SBP");
        assert_eq!(Variant::Hybrid.name(), "H-SBP");
        assert_eq!(Variant::ExactAsync.name(), "EA-SBP");
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = |f: fn(&mut SbpConfig)| {
            let mut c = SbpConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.beta = 0.0));
        assert!(bad(|c| c.mcmc_threshold = -1.0));
        assert!(bad(|c| c.max_sweeps = 0));
        assert!(bad(|c| c.hybrid_serial_fraction = 1.5));
        assert!(bad(|c| c.merge_proposals_per_block = 0));
        assert!(bad(|c| c.block_reduction_rate = 1.0));
        assert!(bad(|c| c.asbp_batches = 0));
        assert!(bad(|c| c.asbp_staleness = 0));
        assert!(bad(|c| c.exact_async_workers = 0));
        assert!(bad(|c| c.sim_thread_counts = vec![]));
    }
}
