//! The agglomerative block-merge phase (Algorithm 1).
//!
//! For every block, `merge_proposals_per_block` candidate merges are
//! evaluated (in parallel — the paper runs this phase parallel in *all*
//! configurations so that measured differences isolate the MCMC phase); the
//! best candidate per block is kept, candidates are sorted by ΔMDL, and
//! merges are applied greedily until the number of blocks reaches the
//! target.

use crate::budget::RunControl;
use crate::config::SbpConfig;
use crate::stats::RunStats;
use hsbp_blockmodel::{
    delta_mdl_merge_with_mode, propose_merge_target_frozen, Block, BlockNeighborSampler,
    Blockmodel, ProposalArena,
};
use hsbp_collections::sample::mix_words;
use hsbp_collections::SplitMix64;
use hsbp_graph::Graph;
use hsbp_parallel::ChunkPlan;

/// Result of one merge phase.
#[derive(Debug, Clone, Copy)]
pub struct MergeOutcome {
    /// Number of pairwise merges applied.
    pub merges_applied: usize,
    /// Block count after the phase.
    pub num_blocks: usize,
    /// True when a budget deadline or cancellation stopped the phase before
    /// it reached its target block count.
    pub truncated: bool,
}

/// Shrink `bm` to (at most) `target_blocks` blocks.
///
/// Runs repeated propose-select-apply rounds; normally a single round
/// reaches the target, but if the greedy selection collapses fewer distinct
/// block sets than planned another round is run.
pub fn merge_phase(
    graph: &Graph,
    bm: &mut Blockmodel,
    target_blocks: usize,
    cfg: &SbpConfig,
    phase_index: u64,
    stats: &mut RunStats,
) -> MergeOutcome {
    merge_phase_controlled(
        graph,
        bm,
        target_blocks,
        cfg,
        phase_index,
        stats,
        &RunControl::unlimited(),
    )
}

/// [`merge_phase`] under a [`RunControl`]: the deadline/cancel check runs
/// at the top of every propose-select-apply round, so the phase stops
/// between rounds (never mid-round — applied merges always form a complete
/// round). An unlimited control makes this identical to [`merge_phase`].
#[allow(clippy::too_many_arguments)]
pub fn merge_phase_controlled(
    graph: &Graph,
    bm: &mut Blockmodel,
    target_blocks: usize,
    cfg: &SbpConfig,
    phase_index: u64,
    stats: &mut RunStats,
    ctrl: &RunControl,
) -> MergeOutcome {
    let target_blocks = target_blocks.max(1);
    let mut merges_applied = 0;
    let mut truncated = false;
    let mut round: u64 = 0;
    let exec = hsbp_parallel::pool_for(cfg.threads);
    while bm.num_blocks() > target_blocks {
        if ctrl.interrupt_cause().is_some() {
            truncated = true;
            break;
        }
        let c = bm.num_blocks();
        let salt = mix_words(&[cfg.seed, 0x4d45_5247, phase_index, round]); // "MERG"
        let frozen: &Blockmodel = bm;
        // The frozen model serves C × merge_proposals_per_block candidate
        // draws this round: one alias-table build makes each draw O(1), and
        // pool-resident eval scratch keeps the ΔMDL computations
        // allocation-free. Candidate cost per block scales with its row/col
        // occupancy, so chunk boundaries follow that weight — high-degree
        // blocks no longer serialize a whole equal-count chunk behind them.
        let sampler = BlockNeighborSampler::build(frozen);
        let weights: Vec<u64> = (0..c as Block)
            .map(|r| (frozen.row(r).nnz() + frozen.col(r).nnz()) as u64 + 1)
            .collect();
        let plan = ChunkPlan::from_costs(&weights, exec.chunk_target());

        // Parallel candidate search: the best (ΔMDL, target) per block.
        let candidates: Vec<Option<(f64, Block, Block)>> =
            exec.map_indexed_resident(&plan, ProposalArena::default, |arena, idx| {
                let r = idx as Block;
                let mut rng = SplitMix64::for_item(salt, round, u64::from(r));
                let mut best: Option<(f64, Block, Block)> = None;
                for _ in 0..cfg.merge_proposals_per_block {
                    let s = propose_merge_target_frozen(frozen, &sampler, r, &mut rng);
                    if s == r {
                        continue;
                    }
                    let delta =
                        delta_mdl_merge_with_mode(frozen, r, s, &mut arena.eval, cfg.math_mode);
                    if best.is_none_or(|(d, _, _)| delta < d) {
                        best = Some((delta, r, s));
                    }
                }
                best
            });

        // Simulated accounting for the candidate search (parallel over
        // blocks; per-block cost ∝ proposals × incident block-matrix size).
        let block_costs: Vec<f64> = (0..c as Block)
            .map(|r| {
                let nnz = bm.row(r).nnz() + bm.col(r).nnz();
                cfg.merge_proposals_per_block as f64 * cfg.cost_model.proposal_cost(nnz)
            })
            .collect();
        stats.sim_merge.add_parallel(&block_costs);

        let mut sorted: Vec<(f64, Block, Block)> = candidates.into_iter().flatten().collect();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // Greedy selection with union-find semantics until the target count
        // is reached.
        let mut parent: Vec<Block> = (0..c as Block).collect();
        fn find(parent: &mut [Block], mut x: Block) -> Block {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut selected: Vec<(Block, Block)> = Vec::new();
        let mut remaining = c;
        for (_, r, s) in sorted {
            if remaining <= target_blocks {
                break;
            }
            let (rr, rs) = (find(&mut parent, r), find(&mut parent, s));
            if rr != rs {
                parent[rr as usize] = rs;
                selected.push((r, s));
                remaining -= 1;
            }
        }
        if selected.is_empty() {
            break; // no mergeable candidates left (degenerate models)
        }
        merges_applied += selected.len();
        bm.apply_merges(graph, &selected);

        // Sort + apply + rebuild are the phase's serial tail.
        stats
            .sim_merge
            .add_serial(cfg.cost_model.rebuild_cost(graph.num_edges()));
        round += 1;
        if round > 64 {
            break; // safety valve; should be unreachable
        }
    }
    MergeOutcome {
        merges_applied,
        num_blocks: bm.num_blocks(),
        truncated,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hsbp_blockmodel::mdl;
    use hsbp_graph::Graph;

    fn planted(n_per: u32, groups: u32) -> (Graph, Vec<u32>) {
        let n = n_per * groups;
        let mut edges = Vec::new();
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for u in 0..n {
            let gu = u / n_per;
            for _ in 0..8 {
                let v = if rnd() % 100 < 90 {
                    gu * n_per + rnd() % n_per
                } else {
                    rnd() % n
                };
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        (
            Graph::from_edges(n as usize, &edges),
            (0..n).map(|v| v / n_per).collect(),
        )
    }

    #[test]
    fn merge_halves_block_count() {
        let (g, _) = planted(10, 4);
        let mut bm = Blockmodel::singleton_partition(&g);
        let cfg = SbpConfig::default();
        let mut stats = RunStats::new(&cfg);
        let out = merge_phase(&g, &mut bm, 20, &cfg, 0, &mut stats);
        assert_eq!(out.num_blocks, 20);
        assert_eq!(bm.num_blocks(), 20);
        bm.check_consistency(&g).unwrap();
        assert!(out.merges_applied >= 20);
    }

    #[test]
    fn merge_to_one_block() {
        let (g, _) = planted(8, 2);
        let mut bm = Blockmodel::singleton_partition(&g);
        let cfg = SbpConfig::default();
        let mut stats = RunStats::new(&cfg);
        let out = merge_phase(&g, &mut bm, 1, &cfg, 0, &mut stats);
        assert_eq!(out.num_blocks, 1);
        assert!(bm.assignment().iter().all(|&b| b == 0));
    }

    #[test]
    fn merge_noop_when_already_at_target() {
        let (g, truth) = planted(8, 2);
        let mut bm = Blockmodel::from_assignment(&g, truth, 2);
        let cfg = SbpConfig::default();
        let mut stats = RunStats::new(&cfg);
        let out = merge_phase(&g, &mut bm, 4, &cfg, 0, &mut stats);
        assert_eq!(out.merges_applied, 0);
        assert_eq!(out.num_blocks, 2);
    }

    #[test]
    fn merges_prefer_low_delta_pairs() {
        // Merging fragments of the same planted community should beat
        // cross-community merges: after merging 4·n_per singletons down to 4
        // blocks, the result should align well with the planted partition.
        let (g, truth) = planted(12, 4);
        let mut bm = Blockmodel::singleton_partition(&g);
        let cfg = SbpConfig {
            seed: 5,
            ..Default::default()
        };
        let mut stats = RunStats::new(&cfg);
        merge_phase(&g, &mut bm, 4, &cfg, 0, &mut stats);
        // The merged partition must describe the graph far better than a
        // random 4-way split.
        let random: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 4).collect();
        let merged_mdl = mdl::mdl(&bm, g.num_vertices(), g.total_weight()).total;
        let random_mdl = mdl::mdl(
            &Blockmodel::from_assignment(&g, random, 4),
            g.num_vertices(),
            g.total_weight(),
        )
        .total;
        assert!(
            merged_mdl < random_mdl,
            "agglomerated {merged_mdl} should beat random {random_mdl}"
        );
        let _ = truth;
    }

    #[test]
    fn merge_is_deterministic() {
        let (g, _) = planted(10, 3);
        let cfg = SbpConfig {
            seed: 11,
            ..Default::default()
        };
        let run = || {
            let mut bm = Blockmodel::singleton_partition(&g);
            let mut stats = RunStats::new(&cfg);
            merge_phase(&g, &mut bm, 6, &cfg, 0, &mut stats);
            bm.assignment().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cancelled_control_truncates_merge() {
        let (g, _) = planted(10, 3);
        let cfg = SbpConfig::default();
        let mut bm = Blockmodel::singleton_partition(&g);
        let mut stats = RunStats::new(&cfg);
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let ctrl = RunControl::new(&crate::budget::RunBudget::unlimited(), &token);
        let out = merge_phase_controlled(&g, &mut bm, 5, &cfg, 0, &mut stats, &ctrl);
        assert!(out.truncated);
        assert_eq!(out.merges_applied, 0);
        assert_eq!(bm.num_blocks(), g.num_vertices());
    }

    #[test]
    fn merge_records_sim_time() {
        let (g, _) = planted(10, 3);
        let cfg = SbpConfig::default();
        let mut bm = Blockmodel::singleton_partition(&g);
        let mut stats = RunStats::new(&cfg);
        merge_phase(&g, &mut bm, 5, &cfg, 0, &mut stats);
        assert!(stats.sim_merge.total_for(1).unwrap() > 0.0);
        // Candidate search is parallel: more threads must not be slower.
        assert!(stats.sim_merge.total_for(128).unwrap() <= stats.sim_merge.total_for(1).unwrap());
    }
}
