//! Run budgets and cooperative cancellation for the SBP driver.
//!
//! A [`RunBudget`] bounds a run by wall-clock deadline, by cumulative MCMC
//! sweeps, or by golden-section evaluations; a [`CancelToken`] lets an
//! external supervisor (the shard layer, a signal handler, a service
//! front-end) stop an in-flight run. Both are *runtime* state, deliberately
//! kept out of [`crate::SbpConfig`]: a run remains a pure function of
//! `(graph, config)`, and the budget only decides how much of that function
//! gets evaluated.
//!
//! Truncation is cooperative and **prefix-exact**: the driver checks a
//! [`RunControl`] at evaluation, merge-round, sweep, and (coarsely) vertex
//! granularity, and when the control trips it *discards* the in-flight
//! evaluation rather than recording a half-converged point. The returned
//! best-so-far result is therefore always identical to what the
//! uninterrupted run would have held after the same prefix of its
//! `trajectory` — never a state no full run could produce.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for one SBP run. All limits are optional; the default is
/// unlimited on every axis.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock deadline, measured from run start.
    pub deadline: Option<Duration>,
    /// Cap on cumulative MCMC sweeps across all phases of the run.
    pub max_total_sweeps: Option<usize>,
    /// Cap on completed golden-section evaluations (trajectory points).
    pub max_evaluations: Option<usize>,
}

impl RunBudget {
    /// A budget with no limits: the run behaves exactly like plain
    /// [`crate::run_sbp`].
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Set the wall-clock deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the cumulative-sweep cap (builder style).
    #[must_use]
    pub fn with_max_total_sweeps(mut self, sweeps: usize) -> Self {
        self.max_total_sweeps = Some(sweeps);
        self
    }

    /// Set the evaluation cap (builder style).
    #[must_use]
    pub fn with_max_evaluations(mut self, evaluations: usize) -> Self {
        self.max_evaluations = Some(evaluations);
        self
    }

    /// True when no axis is limited.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_total_sweeps.is_none() && self.max_evaluations.is_none()
    }

    /// Validate invariants; called by the budgeted driver entry point.
    pub fn validate(&self) -> Result<(), String> {
        if self.deadline == Some(Duration::ZERO) {
            return Err("deadline must be positive".into());
        }
        Ok(())
    }
}

/// Cloneable cancellation handle: one atomic flag shared by every clone.
/// Cancelling is sticky — there is no reset.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; every run holding a clone of this token stops
    /// at its next checkpoint and returns its best-so-far result.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a run stopped where it did. Recorded in
/// [`crate::RunStats::stop_cause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The search ran to its natural end (bracket closed or iteration cap).
    Completed,
    /// The wall-clock deadline of the [`RunBudget`] expired.
    DeadlineExpired,
    /// The cumulative-sweep budget was exhausted.
    SweepBudgetExhausted,
    /// The evaluation budget was exhausted.
    EvalBudgetExhausted,
    /// The [`CancelToken`] was cancelled externally.
    Cancelled,
}

impl StopCause {
    /// True when the run was stopped early by a budget or cancellation
    /// (the result is a flagged best-so-far prefix, not a finished search).
    pub fn is_truncated(&self) -> bool {
        *self != StopCause::Completed
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            StopCause::Completed => "completed",
            StopCause::DeadlineExpired => "deadline expired",
            StopCause::SweepBudgetExhausted => "sweep budget exhausted",
            StopCause::EvalBudgetExhausted => "evaluation budget exhausted",
            StopCause::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The live control threaded through the driver, the merge phase, and every
/// MCMC sweep: a [`RunBudget`] resolved against the run's start instant,
/// plus the external [`CancelToken`]. Checks are read-only, so an unlimited
/// control leaves results bit-identical to the uncontrolled path.
#[derive(Debug, Clone)]
pub struct RunControl {
    deadline: Option<Instant>,
    max_total_sweeps: Option<usize>,
    max_evaluations: Option<usize>,
    token: CancelToken,
}

impl RunControl {
    /// A control that never trips (no budget, fresh token).
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            max_total_sweeps: None,
            max_evaluations: None,
            token: CancelToken::new(),
        }
    }

    /// Resolve `budget` against the current instant and attach `token`.
    pub fn new(budget: &RunBudget, token: &CancelToken) -> Self {
        Self {
            deadline: budget.deadline.map(|d| Instant::now() + d),
            max_total_sweeps: budget.max_total_sweeps,
            max_evaluations: budget.max_evaluations,
            token: token.clone(),
        }
    }

    /// External-interrupt check (token + deadline): the cheap test used
    /// inside merge rounds and, at a coarse stride, inside serial vertex
    /// loops. Budget axes that only make sense at phase boundaries (sweeps,
    /// evaluations) are not consulted here.
    pub fn interrupt_cause(&self) -> Option<StopCause> {
        if self.token.is_cancelled() {
            return Some(StopCause::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopCause::DeadlineExpired);
            }
        }
        None
    }

    /// Per-sweep check: interrupts plus the cumulative-sweep budget.
    /// `total_sweeps` is the run's cumulative sweep count so far.
    pub fn sweep_stop_cause(&self, total_sweeps: usize) -> Option<StopCause> {
        if let Some(cause) = self.interrupt_cause() {
            return Some(cause);
        }
        if self.max_total_sweeps.is_some_and(|cap| total_sweeps >= cap) {
            return Some(StopCause::SweepBudgetExhausted);
        }
        None
    }

    /// Per-evaluation check (driver loop top): everything in
    /// [`RunControl::sweep_stop_cause`] plus the evaluation budget.
    pub fn eval_stop_cause(&self, total_sweeps: usize, evaluations: usize) -> Option<StopCause> {
        if let Some(cause) = self.sweep_stop_cause(total_sweeps) {
            return Some(cause);
        }
        if self.max_evaluations.is_some_and(|cap| evaluations >= cap) {
            return Some(StopCause::EvalBudgetExhausted);
        }
        None
    }
}

/// Stride, in vertices, between interrupt checks inside serial sweep loops.
/// One `Instant::now()` per ~thousand proposals is unmeasurable next to the
/// proposals themselves, and keeps cancellation latency well under a sweep.
pub(crate) const VERTEX_CHECK_STRIDE: u64 = 1024;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_control_never_trips() {
        let ctrl = RunControl::unlimited();
        assert_eq!(ctrl.interrupt_cause(), None);
        assert_eq!(ctrl.sweep_stop_cause(usize::MAX - 1), None);
        assert_eq!(ctrl.eval_stop_cause(1_000_000, 1_000_000), None);
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        let ctrl = RunControl::new(&RunBudget::unlimited(), &token);
        assert_eq!(ctrl.interrupt_cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn sweep_budget_trips_at_cap() {
        let budget = RunBudget::unlimited().with_max_total_sweeps(10);
        let ctrl = RunControl::new(&budget, &CancelToken::new());
        assert_eq!(ctrl.sweep_stop_cause(9), None);
        assert_eq!(
            ctrl.sweep_stop_cause(10),
            Some(StopCause::SweepBudgetExhausted)
        );
    }

    #[test]
    fn eval_budget_trips_at_cap() {
        let budget = RunBudget::unlimited().with_max_evaluations(3);
        let ctrl = RunControl::new(&budget, &CancelToken::new());
        assert_eq!(ctrl.eval_stop_cause(0, 2), None);
        assert_eq!(
            ctrl.eval_stop_cause(0, 3),
            Some(StopCause::EvalBudgetExhausted)
        );
    }

    #[test]
    fn elapsed_deadline_trips() {
        let budget = RunBudget::unlimited().with_deadline(Duration::from_nanos(1));
        let ctrl = RunControl::new(&budget, &CancelToken::new());
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(ctrl.interrupt_cause(), Some(StopCause::DeadlineExpired));
    }

    #[test]
    fn budget_validation() {
        assert!(RunBudget::unlimited().validate().is_ok());
        assert!(RunBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .validate()
            .is_err());
        assert!(RunBudget::unlimited().is_unlimited());
        assert!(!RunBudget::unlimited()
            .with_max_total_sweeps(5)
            .is_unlimited());
    }

    #[test]
    fn stop_cause_flags_truncation() {
        assert!(!StopCause::Completed.is_truncated());
        for cause in [
            StopCause::DeadlineExpired,
            StopCause::SweepBudgetExhausted,
            StopCause::EvalBudgetExhausted,
            StopCause::Cancelled,
        ] {
            assert!(cause.is_truncated());
            assert!(!cause.to_string().is_empty());
        }
    }
}
