//! Per-run instrumentation: wall-clock phase timers, simulated-thread
//! accounting, and the MCMC counters the paper's appendix reports (Fig. 8).

use crate::budget::StopCause;
use crate::config::SbpConfig;
use hsbp_timing::{PhaseTimer, SimAccumulator};

/// One detection (and, outside strict mode, repair) of incremental-state
/// drift by the cadenced blockmodel audit.
#[derive(Debug, Clone)]
pub struct DriftEvent {
    /// Cumulative MCMC sweep count when the audit fired.
    pub total_sweep: usize,
    /// Phase index (outer iteration) the drift was caught in.
    pub phase_index: u64,
    /// Mismatched blockmodel components, one description each.
    pub mismatches: Vec<String>,
    /// |incremental MDL − recomputed MDL| at detection time.
    pub mdl_delta: f64,
    /// True when the state was rebuilt from membership (repair mode);
    /// false only for events surfaced through `HsbpError::StateDrift`.
    pub repaired: bool,
}

/// Everything measured during one SBP run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock time per phase (basis of Fig. 2's breakdown).
    pub timer: PhaseTimer,
    /// Simulated-thread time of the MCMC phase (basis of Figs. 4b/6/7).
    pub sim_mcmc: SimAccumulator,
    /// Simulated-thread time of the block-merge phase.
    pub sim_merge: SimAccumulator,
    /// Total MCMC sweeps across all phases (Fig. 8's "MCMC iterations").
    pub mcmc_sweeps: usize,
    /// Number of MCMC phases run (one per outer iteration).
    pub mcmc_phases: usize,
    /// Outer (merge + MCMC) iterations of the agglomerative search.
    pub outer_iterations: usize,
    /// Vertex-move proposals evaluated.
    pub proposals: u64,
    /// Vertex-move proposals accepted.
    pub accepted: u64,
    /// Why the run stopped: `Completed` for a natural finish, anything else
    /// means the result is a budget/cancel-truncated best-so-far prefix.
    pub stop_cause: StopCause,
    /// Drift audits executed (cadence-driven rebuild-and-compare passes).
    pub audits_run: usize,
    /// Drift detections, in the order the audits caught them.
    pub drift_events: Vec<DriftEvent>,
    /// End-of-sweep consolidations that applied the accepted moves as
    /// incremental O(degree) deltas (no-move sweeps count here too).
    pub consolidations_incremental: usize,
    /// End-of-sweep consolidations that fell back to the O(E) rebuild.
    pub consolidations_rebuild: usize,
    /// Accepted moves folded in through the incremental path.
    pub consolidated_moves: u64,
    /// Delta-sync rounds completed by the exact distributed mode (0 for
    /// in-process runs).
    pub sync_rounds: usize,
    /// Delta messages retransmitted after a NACK (exact distributed mode).
    pub sync_retransmits: u64,
    /// Full-state replica resyncs from the coordinator (exact distributed
    /// mode: retry exhaustion against a live sender, digest divergence, or
    /// audit repair / degradation broadcasts).
    pub sync_resyncs: u64,
    /// Total bytes put on the emulated wire (exact distributed mode).
    pub sync_bytes: u64,
}

impl RunStats {
    /// Fresh stats configured for `cfg`'s simulated thread counts.
    pub fn new(cfg: &SbpConfig) -> Self {
        let sim = SimAccumulator::new(
            &cfg.sim_thread_counts,
            cfg.sim_chunking,
            cfg.cost_model.barrier,
        );
        Self {
            timer: PhaseTimer::new(),
            sim_mcmc: sim.clone(),
            sim_merge: sim,
            mcmc_sweeps: 0,
            mcmc_phases: 0,
            outer_iterations: 0,
            proposals: 0,
            accepted: 0,
            stop_cause: StopCause::Completed,
            audits_run: 0,
            drift_events: Vec::new(),
            consolidations_incremental: 0,
            consolidations_rebuild: 0,
            consolidated_moves: 0,
            sync_rounds: 0,
            sync_retransmits: 0,
            sync_resyncs: 0,
            sync_bytes: 0,
        }
    }

    /// Fraction of proposals accepted (0 if none evaluated).
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposals as f64
        }
    }

    /// Simulated MCMC-phase time at `threads` virtual threads.
    pub fn sim_mcmc_time(&self, threads: usize) -> Option<f64> {
        self.sim_mcmc.total_for(threads)
    }

    /// Simulated total (MCMC + merge) time at `threads` virtual threads.
    pub fn sim_total_time(&self, threads: usize) -> Option<f64> {
        Some(self.sim_mcmc.total_for(threads)? + self.sim_merge.total_for(threads)?)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_zeroed() {
        let stats = RunStats::new(&SbpConfig::default());
        assert_eq!(stats.mcmc_sweeps, 0);
        assert_eq!(stats.acceptance_rate(), 0.0);
        assert_eq!(stats.sim_mcmc_time(1), Some(0.0));
        assert_eq!(stats.sim_total_time(128), Some(0.0));
        assert_eq!(stats.stop_cause, StopCause::Completed);
        assert_eq!(stats.audits_run, 0);
        assert!(stats.drift_events.is_empty());
        assert_eq!(stats.consolidations_incremental, 0);
        assert_eq!(stats.consolidations_rebuild, 0);
        assert_eq!(stats.consolidated_moves, 0);
        assert_eq!(stats.sync_rounds, 0);
        assert_eq!(stats.sync_retransmits, 0);
        assert_eq!(stats.sync_resyncs, 0);
        assert_eq!(stats.sync_bytes, 0);
    }

    #[test]
    fn acceptance_rate_computed() {
        let mut stats = RunStats::new(&SbpConfig::default());
        stats.proposals = 10;
        stats.accepted = 4;
        assert!((stats.acceptance_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn sim_time_tracks_config_thread_counts() {
        let cfg = SbpConfig {
            sim_thread_counts: vec![1, 3],
            ..Default::default()
        };
        let stats = RunStats::new(&cfg);
        assert!(stats.sim_mcmc_time(3).is_some());
        assert!(stats.sim_mcmc_time(2).is_none());
    }
}
