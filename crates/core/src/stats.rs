//! Per-run instrumentation: wall-clock phase timers, simulated-thread
//! accounting, and the MCMC counters the paper's appendix reports (Fig. 8).

use crate::config::SbpConfig;
use hsbp_timing::{PhaseTimer, SimAccumulator};

/// Everything measured during one SBP run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock time per phase (basis of Fig. 2's breakdown).
    pub timer: PhaseTimer,
    /// Simulated-thread time of the MCMC phase (basis of Figs. 4b/6/7).
    pub sim_mcmc: SimAccumulator,
    /// Simulated-thread time of the block-merge phase.
    pub sim_merge: SimAccumulator,
    /// Total MCMC sweeps across all phases (Fig. 8's "MCMC iterations").
    pub mcmc_sweeps: usize,
    /// Number of MCMC phases run (one per outer iteration).
    pub mcmc_phases: usize,
    /// Outer (merge + MCMC) iterations of the agglomerative search.
    pub outer_iterations: usize,
    /// Vertex-move proposals evaluated.
    pub proposals: u64,
    /// Vertex-move proposals accepted.
    pub accepted: u64,
}

impl RunStats {
    /// Fresh stats configured for `cfg`'s simulated thread counts.
    pub fn new(cfg: &SbpConfig) -> Self {
        let sim = SimAccumulator::new(
            &cfg.sim_thread_counts,
            cfg.sim_chunking,
            cfg.cost_model.barrier,
        );
        Self {
            timer: PhaseTimer::new(),
            sim_mcmc: sim.clone(),
            sim_merge: sim,
            mcmc_sweeps: 0,
            mcmc_phases: 0,
            outer_iterations: 0,
            proposals: 0,
            accepted: 0,
        }
    }

    /// Fraction of proposals accepted (0 if none evaluated).
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposals as f64
        }
    }

    /// Simulated MCMC-phase time at `threads` virtual threads.
    pub fn sim_mcmc_time(&self, threads: usize) -> Option<f64> {
        self.sim_mcmc.total_for(threads)
    }

    /// Simulated total (MCMC + merge) time at `threads` virtual threads.
    pub fn sim_total_time(&self, threads: usize) -> Option<f64> {
        Some(self.sim_mcmc.total_for(threads)? + self.sim_merge.total_for(threads)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_zeroed() {
        let stats = RunStats::new(&SbpConfig::default());
        assert_eq!(stats.mcmc_sweeps, 0);
        assert_eq!(stats.acceptance_rate(), 0.0);
        assert_eq!(stats.sim_mcmc_time(1), Some(0.0));
        assert_eq!(stats.sim_total_time(128), Some(0.0));
    }

    #[test]
    fn acceptance_rate_computed() {
        let mut stats = RunStats::new(&SbpConfig::default());
        stats.proposals = 10;
        stats.accepted = 4;
        assert!((stats.acceptance_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn sim_time_tracks_config_thread_counts() {
        let cfg = SbpConfig {
            sim_thread_counts: vec![1, 3],
            ..Default::default()
        };
        let stats = RunStats::new(&cfg);
        assert!(stats.sim_mcmc_time(3).is_some());
        assert!(stats.sim_mcmc_time(2).is_none());
    }
}
