//! Stochastic block partitioning (SBP) and its parallel MCMC variants —
//! the paper's core contribution.
//!
//! Three MCMC phase algorithms over a shared agglomerative driver:
//!
//! * **SBP** (Algorithm 2) — the serial Metropolis-Hastings baseline: one
//!   vertex at a time, accepted moves update the blockmodel immediately.
//! * **A-SBP** (Algorithm 3) — asynchronous-Gibbs: all vertices evaluated in
//!   parallel against the sweep-start blockmodel (one-sweep-stale state),
//!   accepted moves only flip a membership vector, and the blockmodel is
//!   rebuilt once per sweep.
//! * **H-SBP** (Algorithm 4) — hybrid: the highest-degree fraction of
//!   vertices (default 15%, matching the paper) is processed serially with
//!   immediate updates, the long low-degree tail asynchronously.
//!
//! The outer loop ([`driver`]) is the standard agglomerative golden-section
//! search over the number of communities: halve via the block-merge phase
//! (Algorithm 1, [`merge`]), refine with the MCMC phase ([`mcmc`]), track
//! the three best `(num_blocks, MDL)` brackets, and bisect until the
//! bracket closes.
//!
//! Every run is deterministic given [`SbpConfig::seed`] — parallel sweeps
//! draw per-vertex randomness from a counter RNG, so results do not depend
//! on thread scheduling.
//!
//! ```
//! use hsbp_core::{run_sbp, SbpConfig, Variant};
//! use hsbp_generator::{generate, DcsbmConfig};
//!
//! let data = generate(DcsbmConfig { num_vertices: 200, num_communities: 4,
//!     target_num_edges: 1600, seed: 7, ..Default::default() });
//! let result = run_sbp(&data.graph, &SbpConfig { variant: Variant::Hybrid,
//!     seed: 1, ..Default::default() });
//! assert!(result.num_blocks >= 1);
//! ```

// Algorithm internals may still panic on broken invariants, but they must
// do so deliberately (`panic!`/`unreachable!` with a message), never through
// a stray `unwrap`/`expect` on a fallible path.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod budget;
pub mod config;
pub mod driver;
pub mod error;
pub mod influence;
pub mod mcmc;
pub mod merge;
pub mod refine;
pub mod stats;

pub use budget::{CancelToken, RunBudget, RunControl, StopCause};
pub use config::{Consolidation, SbpConfig, Variant};
pub use driver::{run_sbp, run_sbp_budgeted, run_sbp_checked, SbpResult};
pub use error::HsbpError;
pub use hsbp_blockmodel::{MathMode, HSBP_MATH_ENV};
pub use influence::{asbp_convergence_risk, degree_concentration, degree_gini, AsbpRisk};
pub use mcmc::{run_mcmc_phase, run_mcmc_phase_controlled, McmcOutcome};
pub use merge::{merge_phase, merge_phase_controlled, MergeOutcome};
pub use refine::{expand_dirty_region, extend_assignment, refine_partition, RefineOutcome};
pub use stats::{DriftEvent, RunStats};
