//! `HsbpError` — the workspace's typed error layer.
//!
//! Input-handling and orchestration paths (graph/partition I/O, the sharded
//! driver, checkpoint/resume) return this instead of panicking, so callers —
//! the CLI in particular — can map failures to diagnostics and exit codes
//! without unwinding. Algorithm internals keep their panics: an inconsistent
//! blockmodel mid-sweep is a bug, not an input problem.

use hsbp_graph::io::IoError;

/// Recoverable failure of an SBP pipeline entry point.
#[derive(Debug)]
pub enum HsbpError {
    /// A configuration failed validation before any work started.
    InvalidConfig(String),
    /// Graph or partition file I/O failed (wraps the reader's error with the
    /// offending path when known).
    Io {
        /// Path being read or written, if the failure came from a file.
        path: Option<String>,
        /// The underlying reader/stream error.
        source: IoError,
    },
    /// An externally supplied vertex partition does not match the graph.
    PartitionMismatch {
        /// Entries in the partition.
        partition_len: usize,
        /// Vertices in the graph.
        num_vertices: usize,
    },
    /// A shard exhausted its retry budget and degradation was not possible
    /// (or was disabled).
    ShardFailed {
        /// Shard index.
        shard: usize,
        /// Attempts made (first run + retries).
        attempts: usize,
        /// Human-readable description of the last failure.
        last_failure: String,
    },
    /// Every shard of a sharded run failed permanently; there is no
    /// surviving sub-model to degrade onto.
    AllShardsFailed {
        /// Shards in the plan.
        num_shards: usize,
    },
    /// A checkpoint directory was missing, malformed, or belongs to a
    /// different `(graph, config)` run.
    Checkpoint {
        /// Checkpoint directory (or file within it).
        path: String,
        /// What went wrong.
        message: String,
    },
    /// A post-shard invariant check rejected a result (corrupted membership
    /// vector, bad block count, lost edges).
    InvariantViolation {
        /// Shard index the result came from.
        shard: usize,
        /// Which invariant failed.
        message: String,
    },
    /// The serve daemon's write-ahead log could not be written, synced, or
    /// replayed (a non-WAL file at the path, an append that could not be
    /// made durable before acknowledgement).
    Wal {
        /// WAL file path.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// A network endpoint failed: the serve listener could not bind, a
    /// connection died mid-request, or a harness client could not reach the
    /// daemon.
    Network {
        /// Address involved (bind address or peer), when known.
        addr: String,
        /// What went wrong, including the OS error text.
        message: String,
    },
    /// A strict-mode drift audit found the incrementally-maintained
    /// blockmodel diverging from the state implied by the membership
    /// vector. In repair mode the same divergence is fixed in place and
    /// recorded in `RunStats::drift_events` instead.
    StateDrift {
        /// Cumulative MCMC sweep at which the audit fired.
        sweep: usize,
        /// Summary of the mismatched components and the MDL delta.
        detail: String,
    },
}

impl std::fmt::Display for HsbpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HsbpError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HsbpError::Io {
                path: Some(p),
                source,
            } => write!(f, "{p}: {source}"),
            HsbpError::Io { path: None, source } => write!(f, "{source}"),
            HsbpError::PartitionMismatch {
                partition_len,
                num_vertices,
            } => write!(
                f,
                "partition covers {partition_len} vertices but the graph has {num_vertices}"
            ),
            HsbpError::ShardFailed {
                shard,
                attempts,
                last_failure,
            } => write!(
                f,
                "shard {shard} failed permanently after {attempts} attempt(s): {last_failure}"
            ),
            HsbpError::AllShardsFailed { num_shards } => {
                write!(f, "all {num_shards} shard(s) failed; nothing to stitch")
            }
            HsbpError::Checkpoint { path, message } => {
                write!(f, "checkpoint {path}: {message}")
            }
            HsbpError::InvariantViolation { shard, message } => {
                write!(f, "shard {shard} produced an invalid result: {message}")
            }
            HsbpError::Wal { path, message } => {
                write!(f, "wal {path}: {message}")
            }
            HsbpError::Network { addr, message } => {
                write!(f, "network error on {addr}: {message}")
            }
            HsbpError::StateDrift { sweep, detail } => {
                write!(f, "state drift detected at sweep {sweep}: {detail}")
            }
        }
    }
}

impl std::error::Error for HsbpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HsbpError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<IoError> for HsbpError {
    fn from(source: IoError) -> Self {
        HsbpError::Io { path: None, source }
    }
}

impl From<std::io::Error> for HsbpError {
    fn from(e: std::io::Error) -> Self {
        HsbpError::Io {
            path: None,
            source: IoError::Io(e),
        }
    }
}

impl HsbpError {
    /// Attach (or replace) the file path on an I/O-backed error.
    pub fn with_path(self, path: impl Into<String>) -> Self {
        match self {
            HsbpError::Io { source, .. } => HsbpError::Io {
                path: Some(path.into()),
                source,
            },
            other => other,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let errors: Vec<HsbpError> = vec![
            HsbpError::InvalidConfig("num_shards must be at least 1".into()),
            HsbpError::from(IoError::Parse {
                line: 3,
                message: "bad token".into(),
            })
            .with_path("graph.mtx"),
            HsbpError::PartitionMismatch {
                partition_len: 10,
                num_vertices: 12,
            },
            HsbpError::ShardFailed {
                shard: 2,
                attempts: 3,
                last_failure: "injected panic".into(),
            },
            HsbpError::AllShardsFailed { num_shards: 4 },
            HsbpError::Checkpoint {
                path: "/tmp/run".into(),
                message: "graph fingerprint mismatch".into(),
            },
            HsbpError::InvariantViolation {
                shard: 1,
                message: "block id 9 out of range".into(),
            },
            HsbpError::Wal {
                path: "/tmp/run/wal.log".into(),
                message: "bad magic: not an hsbp-serve WAL".into(),
            },
            HsbpError::Network {
                addr: "127.0.0.1:7474".into(),
                message: "address already in use".into(),
            },
            HsbpError::StateDrift {
                sweep: 128,
                detail: "d_out mismatch in 1 block; MDL delta 3.2e0".into(),
            },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty() && !text.contains('\n'), "{text:?}");
        }
    }

    #[test]
    fn io_conversion_keeps_source() {
        let e = HsbpError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}
