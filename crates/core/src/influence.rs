//! Heuristic influence metrics (the paper's §6 future work: "alternative,
//! easy-to-compute heuristic metrics for predicting whether or not A-SBP
//! will converge on large graphs").
//!
//! Computing the true total influence `α` of asynchronous Gibbs (§2.3,
//! Eq. 3) is `O(V²C³)` — intractable. The paper's working assumption is
//! that influence concentrates on high-degree vertices and that power-law
//! graphs have few of them; when that concentration is *weak* (near-regular
//! degree sequences, as in the paper's sparse low-`r` graphs where A-SBP
//! failed), no small serial set can carry the dependencies and pure
//! asynchronous processing is risky. These O(V log V) proxies quantify
//! exactly that.

use hsbp_graph::{Graph, Vertex};

/// Fraction of total degree mass held by the top `fraction` of vertices by
/// degree (e.g. `0.15` = the paper's H-SBP serial set `V*`).
///
/// Near `fraction` for regular graphs; near 1 for extreme hub graphs.
pub fn degree_concentration(graph: &Graph, fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut degrees: Vec<u64> = (0..n as Vertex).map(|v| graph.degree(v)).collect();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = degrees.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let k = ((n as f64) * fraction).round() as usize;
    let top: u64 = degrees[..k.min(n)].iter().sum();
    top as f64 / total as f64
}

/// Gini coefficient of the total-degree distribution, in `[0, 1)`:
/// 0 = perfectly regular, → 1 = all degree on one vertex.
pub fn degree_gini(graph: &Graph) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut degrees: Vec<u64> = (0..n as Vertex).map(|v| graph.degree(v)).collect();
    degrees.sort_unstable();
    let total: u64 = degrees.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Gini = (2·Σ i·x_i)/(n·Σ x_i) − (n+1)/n with 1-based ranks of the
    // ascending-sorted values.
    let weighted: f64 = degrees
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Qualitative convergence risk of running *pure* A-SBP on a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsbpRisk {
    /// Strong degree concentration: a small serial set (H-SBP's `V*`)
    /// covers most influence, and even pure A-SBP usually converges.
    Low,
    /// Intermediate regime; prefer H-SBP.
    Moderate,
    /// Near-regular degrees and sparse structure: influence is spread over
    /// many vertices — the regime in which the paper observed A-SBP
    /// failing to converge (sparse, low-`r` synthetic graphs).
    High,
}

/// Heuristic risk classification from degree statistics alone.
///
/// Thresholds were calibrated on the Table 1 catalog: the dense hub-heavy
/// graphs (where A-SBP matched SBP) show top-15% concentration well above
/// 0.5; the sparse near-regular graphs where it failed sit near the uniform
/// floor of 0.15–0.35.
pub fn asbp_convergence_risk(graph: &Graph) -> AsbpRisk {
    let concentration = degree_concentration(graph, 0.15);
    if concentration >= 0.5 {
        AsbpRisk::Low
    } else if concentration >= 0.35 {
        AsbpRisk::Moderate
    } else {
        AsbpRisk::High
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hsbp_graph::Graph;

    fn star(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        Graph::from_edges(n, &edges)
    }

    fn ring(n: u32) -> Graph {
        Graph::from_edges(
            n as usize,
            &(0..n).map(|v| (v, (v + 1) % n)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn star_concentrates_degree() {
        let g = star(100);
        let c = degree_concentration(&g, 0.15);
        assert!(c > 0.5, "star concentration {c}");
        assert_eq!(asbp_convergence_risk(&g), AsbpRisk::Low);
    }

    #[test]
    fn ring_is_flat() {
        let g = ring(100);
        let c = degree_concentration(&g, 0.15);
        assert!((c - 0.15).abs() < 0.02, "ring concentration {c}");
        assert_eq!(asbp_convergence_risk(&g), AsbpRisk::High);
        assert!(degree_gini(&g) < 0.01);
    }

    #[test]
    fn gini_orders_star_above_ring() {
        assert!(degree_gini(&star(50)) > degree_gini(&ring(50)) + 0.4);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = Graph::from_edges(0, &[]);
        assert_eq!(degree_concentration(&empty, 0.15), 0.0);
        assert_eq!(degree_gini(&empty), 0.0);
        let edgeless = Graph::from_edges(5, &[]);
        assert_eq!(degree_concentration(&edgeless, 0.15), 0.0);
    }

    #[test]
    fn concentration_monotone_in_fraction() {
        let g = star(60);
        let c10 = degree_concentration(&g, 0.10);
        let c50 = degree_concentration(&g, 0.50);
        assert!(c50 >= c10);
        assert!((degree_concentration(&g, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_fraction() {
        degree_concentration(&ring(5), 1.5);
    }

    #[test]
    fn catalog_calibration_holds() {
        // A hub-heavy surrogate classifies lower-risk than a near-regular
        // one.
        use hsbp_generator::table2_by_id;
        let web = hsbp_generator::generate(table2_by_id("cnr-2000").unwrap().config(0.01));
        let p2p = hsbp_generator::generate(table2_by_id("p2p-Gnutella31").unwrap().config(0.02));
        let web_c = degree_concentration(&web.graph, 0.15);
        let p2p_c = degree_concentration(&p2p.graph, 0.15);
        assert!(
            web_c > p2p_c,
            "web concentration {web_c} should exceed p2p {p2p_c}"
        );
    }
}
