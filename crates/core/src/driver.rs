//! The outer agglomerative search: alternate merge and MCMC phases while
//! golden-section searching over the number of communities (paper Fig. 1's
//! "search for number of communities").
//!
//! Bracket bookkeeping follows the graph-challenge reference driver: keep
//! the best-MDL state (`mid`) plus the tightest worse states on either side
//! (`lower` fewer blocks, `upper` more blocks). Until a bracket exists,
//! keep halving the block count; once `mid` is bracketed, bisect the larger
//! gap (golden ratio) until no interior candidates remain.

use crate::config::SbpConfig;
use crate::mcmc::run_mcmc_phase;
use crate::merge::merge_phase;
use crate::stats::RunStats;
use hsbp_blockmodel::{mdl, Block, Blockmodel};
use hsbp_graph::Graph;
use hsbp_timing::Phase;

/// Final result of a full SBP run.
#[derive(Debug, Clone)]
pub struct SbpResult {
    /// Community of every vertex.
    pub assignment: Vec<Block>,
    /// Number of communities found.
    pub num_blocks: usize,
    /// MDL of the returned partition.
    pub mdl: mdl::Mdl,
    /// Normalized MDL (`MDL / MDL_null`; NaN for edgeless graphs).
    pub normalized_mdl: f64,
    /// Every `(num_blocks, MDL)` point the golden-section search evaluated,
    /// in evaluation order (the singleton start is not included).
    pub trajectory: Vec<(usize, f64)>,
    /// Instrumentation gathered during the run.
    pub stats: RunStats,
}

/// One evaluated point of the search: a partition at a given block count.
#[derive(Debug, Clone)]
struct Evaluated {
    num_blocks: usize,
    mdl_total: f64,
    assignment: Vec<Block>,
}

/// Golden-section interior fraction.
const GOLDEN: f64 = 0.382;

/// Run stochastic block partitioning with the configured MCMC variant.
///
/// Deterministic in `(graph, cfg)`.
///
/// # Panics
/// Panics if `cfg` fails validation.
pub fn run_sbp(graph: &Graph, cfg: &SbpConfig) -> SbpResult {
    cfg.validate().expect("invalid SbpConfig");
    let mut stats = RunStats::new(cfg);
    let n = graph.num_vertices();
    if n == 0 {
        return SbpResult {
            assignment: Vec::new(),
            num_blocks: 0,
            mdl: mdl::Mdl {
                log_likelihood: 0.0,
                model_complexity: 0.0,
                total: 0.0,
            },
            normalized_mdl: f64::NAN,
            trajectory: Vec::new(),
            stats,
        };
    }

    let mut bm = stats
        .timer
        .time(Phase::Other, || Blockmodel::singleton_partition(graph));
    let singleton_mdl = mdl::mdl(&bm, n, graph.total_weight()).total;

    // Search state: `upper` starts at the fully-split partition.
    let mut upper: Option<Evaluated> = Some(Evaluated {
        num_blocks: n,
        mdl_total: singleton_mdl,
        assignment: bm.assignment().to_vec(),
    });
    let mut mid: Option<Evaluated> = None;
    let mut lower: Option<Evaluated> = None;

    let mut phase_index: u64 = 0;
    let mut trajectory: Vec<(usize, f64)> = Vec::new();
    loop {
        if stats.outer_iterations >= cfg.max_outer_iterations {
            break;
        }
        let bracketed = mid.is_some() && lower.is_some();
        // Decide the next block-count target and the state to merge from.
        let target = if !bracketed {
            let b = bm.num_blocks();
            if b <= 1 {
                break;
            }
            (((b as f64) * cfg.block_reduction_rate).round() as usize).clamp(1, b - 1)
        } else {
            let (u, m, l) = (
                upper.as_ref().expect("upper always set"),
                mid.as_ref().unwrap(),
                lower.as_ref().unwrap(),
            );
            if u.num_blocks.saturating_sub(l.num_blocks) <= 2 {
                break; // no interior candidate besides mid
            }
            let gap_hi = u.num_blocks - m.num_blocks;
            let gap_lo = m.num_blocks - l.num_blocks;
            if gap_hi >= gap_lo && gap_hi >= 2 {
                // Interior of (mid, upper): merge down from upper's state.
                let t = m.num_blocks + ((gap_hi as f64) * GOLDEN).round() as usize;
                let t = t.clamp(m.num_blocks + 1, u.num_blocks - 1);
                let source = u.clone();
                bm = stats.timer.time(Phase::Other, || {
                    Blockmodel::from_assignment(graph, source.assignment, source.num_blocks)
                });
                t
            } else if gap_lo >= 2 {
                // Interior of (lower, mid): merge down from mid's state.
                let t = m.num_blocks - ((gap_lo as f64) * GOLDEN).round() as usize;
                let t = t.clamp(l.num_blocks + 1, m.num_blocks - 1);
                let source = m.clone();
                bm = stats.timer.time(Phase::Other, || {
                    Blockmodel::from_assignment(graph, source.assignment, source.num_blocks)
                });
                t
            } else {
                break;
            }
        };

        // Merge phase, then MCMC phase (timed separately; the closures
        // borrow `stats` themselves, so time with explicit Instants).
        let start = std::time::Instant::now();
        merge_phase(graph, &mut bm, target, cfg, phase_index, &mut stats);
        stats.timer.add(Phase::BlockMerge, start.elapsed());
        let start = std::time::Instant::now();
        let mcmc_out = run_mcmc_phase(graph, &mut bm, cfg, phase_index, &mut stats);
        stats.timer.add(Phase::Mcmc, start.elapsed());
        phase_index += 1;
        stats.outer_iterations += 1;

        let evaluated = Evaluated {
            num_blocks: bm.num_blocks(),
            mdl_total: mcmc_out.mdl.total,
            assignment: bm.assignment().to_vec(),
        };
        trajectory.push((evaluated.num_blocks, evaluated.mdl_total));

        // Bracket update.
        match &mid {
            None => mid = Some(evaluated),
            Some(m) if evaluated.mdl_total < m.mdl_total => {
                let displaced = mid.take().unwrap();
                if evaluated.num_blocks < displaced.num_blocks {
                    // We improved while moving left: old mid bounds us above.
                    if displaced.num_blocks < upper.as_ref().map_or(usize::MAX, |u| u.num_blocks) {
                        upper = Some(displaced);
                    }
                } else if displaced.num_blocks > lower.as_ref().map_or(0, |l| l.num_blocks) {
                    lower = Some(displaced);
                }
                mid = Some(evaluated);
            }
            Some(m) => {
                if evaluated.num_blocks < m.num_blocks {
                    if lower
                        .as_ref()
                        .is_none_or(|l| evaluated.num_blocks > l.num_blocks)
                    {
                        lower = Some(evaluated);
                    }
                } else if evaluated.num_blocks > m.num_blocks
                    && upper
                        .as_ref()
                        .is_none_or(|u| evaluated.num_blocks < u.num_blocks)
                {
                    upper = Some(evaluated);
                }
            }
        }

        // Reached the floor while still unbracketed: nothing left to try.
        if !(mid.is_some() && lower.is_some()) && bm.num_blocks() <= 1 {
            break;
        }
    }

    let best = mid.or(upper).expect("at least the singleton state exists");
    let bm = Blockmodel::from_assignment(graph, best.assignment.clone(), best.num_blocks);
    let final_mdl = mdl::mdl(&bm, n, graph.total_weight());
    let null = mdl::null_mdl(graph.total_weight());
    SbpResult {
        assignment: best.assignment,
        num_blocks: best.num_blocks,
        mdl: final_mdl,
        normalized_mdl: if null == 0.0 {
            f64::NAN
        } else {
            final_mdl.total / null
        },
        trajectory,
        stats,
    }
}
