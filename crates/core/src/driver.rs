//! The outer agglomerative search: alternate merge and MCMC phases while
//! golden-section searching over the number of communities (paper Fig. 1's
//! "search for number of communities").
//!
//! Bracket bookkeeping follows the graph-challenge reference driver: keep
//! the best-MDL state (`mid`) plus the tightest worse states on either side
//! (`lower` fewer blocks, `upper` more blocks). Until a bracket exists,
//! keep halving the block count; once `mid` is bracketed, bisect the larger
//! gap (golden ratio) until no interior candidates remain.
//!
//! Budgeted runs ([`run_sbp_budgeted`]) check a [`RunControl`] at the top
//! of every evaluation and inside both phases. When the control trips, the
//! in-flight evaluation is **discarded** — not pushed to the trajectory,
//! not counted as an outer iteration — so the returned best-so-far state is
//! always a prefix point of what the uninterrupted run would have produced.

use crate::budget::{CancelToken, RunBudget, RunControl, StopCause};
use crate::config::SbpConfig;
use crate::error::HsbpError;
use crate::mcmc::run_mcmc_phase_controlled;
use crate::merge::merge_phase_controlled;
use crate::stats::RunStats;
use hsbp_blockmodel::{mdl, Block, Blockmodel};
use hsbp_graph::Graph;
use hsbp_timing::Phase;

/// Final result of a full SBP run.
#[derive(Debug, Clone)]
pub struct SbpResult {
    /// Community of every vertex.
    pub assignment: Vec<Block>,
    /// Number of communities found.
    pub num_blocks: usize,
    /// MDL of the returned partition.
    pub mdl: mdl::Mdl,
    /// Normalized MDL (`MDL / MDL_null`).
    ///
    /// **Edgeless contract:** for a graph with no edges the null MDL is 0,
    /// the ratio is undefined, and this field is `NaN`. Use
    /// [`SbpResult::normalized_mdl_checked`] to handle that case as an
    /// `Option` instead of comparing NaN.
    pub normalized_mdl: f64,
    /// Every `(num_blocks, MDL)` point the golden-section search evaluated,
    /// in evaluation order (the singleton start is not included). Budgeted
    /// runs hold the completed prefix only — a truncated evaluation is
    /// never recorded.
    pub trajectory: Vec<(usize, f64)>,
    /// Instrumentation gathered during the run, including
    /// [`RunStats::stop_cause`] and any drift events.
    pub stats: RunStats,
}

impl SbpResult {
    /// True when a budget or cancellation stopped the run early; the result
    /// is the best fully-evaluated state up to that point.
    pub fn truncated(&self) -> bool {
        self.stats.stop_cause.is_truncated()
    }

    /// [`SbpResult::normalized_mdl`] with the edgeless-graph case made
    /// explicit: `None` when the null MDL is 0 (no edges), `Some(ratio)`
    /// otherwise.
    pub fn normalized_mdl_checked(&self) -> Option<f64> {
        if self.normalized_mdl.is_nan() {
            None
        } else {
            Some(self.normalized_mdl)
        }
    }
}

/// One evaluated point of the search: a partition at a given block count.
#[derive(Debug, Clone)]
struct Evaluated {
    num_blocks: usize,
    mdl_total: f64,
    assignment: Vec<Block>,
}

/// Golden-section interior fraction.
const GOLDEN: f64 = 0.382;

/// Run stochastic block partitioning with the configured MCMC variant.
///
/// Deterministic in `(graph, cfg)`.
///
/// # Panics
/// Panics if `cfg` fails validation or a strict-mode drift audit fails; use
/// [`run_sbp_checked`] to receive those as [`HsbpError`] instead.
pub fn run_sbp(graph: &Graph, cfg: &SbpConfig) -> SbpResult {
    run_sbp_checked(graph, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_sbp`]: configuration problems come back as
/// `HsbpError::InvalidConfig` and strict-mode drift as
/// `HsbpError::StateDrift` instead of panicking. Unbudgeted and
/// uncancellable; bit-identical to [`run_sbp`].
pub fn run_sbp_checked(graph: &Graph, cfg: &SbpConfig) -> Result<SbpResult, HsbpError> {
    run_sbp_budgeted(graph, cfg, &RunBudget::unlimited(), &CancelToken::new())
}

/// [`run_sbp_checked`] under a [`RunBudget`] and a [`CancelToken`].
///
/// When the budget expires or the token is cancelled, the run stops
/// cooperatively and returns its best-so-far result with
/// `stats.stop_cause` recording why (see [`SbpResult::truncated`]). The
/// in-flight evaluation is discarded, so the truncated result always
/// equals a prefix point of the uninterrupted run's trajectory; with an
/// unlimited budget the checks are pure reads and the output is
/// bit-identical to [`run_sbp`].
pub fn run_sbp_budgeted(
    graph: &Graph,
    cfg: &SbpConfig,
    budget: &RunBudget,
    token: &CancelToken,
) -> Result<SbpResult, HsbpError> {
    cfg.validate().map_err(HsbpError::InvalidConfig)?;
    budget.validate().map_err(HsbpError::InvalidConfig)?;
    let ctrl = RunControl::new(budget, token);
    let mut stats = RunStats::new(cfg);
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(SbpResult {
            assignment: Vec::new(),
            num_blocks: 0,
            mdl: mdl::Mdl {
                log_likelihood: 0.0,
                model_complexity: 0.0,
                total: 0.0,
            },
            normalized_mdl: f64::NAN,
            trajectory: Vec::new(),
            stats,
        });
    }

    let mut bm = stats
        .timer
        .time(Phase::Other, || Blockmodel::singleton_partition(graph));
    let singleton_mdl = mdl::mdl(&bm, n, graph.total_weight()).total;

    // Search state: `upper` starts at the fully-split partition.
    let mut upper: Option<Evaluated> = Some(Evaluated {
        num_blocks: n,
        mdl_total: singleton_mdl,
        assignment: bm.assignment().to_vec(),
    });
    let mut mid: Option<Evaluated> = None;
    let mut lower: Option<Evaluated> = None;

    let mut phase_index: u64 = 0;
    let mut trajectory: Vec<(usize, f64)> = Vec::new();
    loop {
        if stats.outer_iterations >= cfg.max_outer_iterations {
            break;
        }
        if let Some(cause) = ctrl.eval_stop_cause(stats.mcmc_sweeps, stats.outer_iterations) {
            stats.stop_cause = cause;
            break;
        }
        let bracketed = mid.is_some() && lower.is_some();
        // Decide the next block-count target and the state to merge from.
        let target = if !bracketed {
            let b = bm.num_blocks();
            if b <= 1 {
                break;
            }
            (((b as f64) * cfg.block_reduction_rate).round() as usize).clamp(1, b - 1)
        } else {
            let (Some(u), Some(m), Some(l)) = (&upper, &mid, &lower) else {
                unreachable!("bracketed implies upper, mid and lower are all set");
            };
            if u.num_blocks.saturating_sub(l.num_blocks) <= 2 {
                break; // no interior candidate besides mid
            }
            let gap_hi = u.num_blocks - m.num_blocks;
            let gap_lo = m.num_blocks - l.num_blocks;
            if gap_hi >= gap_lo && gap_hi >= 2 {
                // Interior of (mid, upper): merge down from upper's state.
                let t = m.num_blocks + ((gap_hi as f64) * GOLDEN).round() as usize;
                let t = t.clamp(m.num_blocks + 1, u.num_blocks - 1);
                let source = u.clone();
                bm = stats.timer.time(Phase::Other, || {
                    Blockmodel::from_assignment(graph, source.assignment, source.num_blocks)
                });
                t
            } else if gap_lo >= 2 {
                // Interior of (lower, mid): merge down from mid's state.
                let t = m.num_blocks - ((gap_lo as f64) * GOLDEN).round() as usize;
                let t = t.clamp(l.num_blocks + 1, m.num_blocks - 1);
                let source = m.clone();
                bm = stats.timer.time(Phase::Other, || {
                    Blockmodel::from_assignment(graph, source.assignment, source.num_blocks)
                });
                t
            } else {
                break;
            }
        };

        // Merge phase, then MCMC phase (timed separately; the closures
        // borrow `stats` themselves, so time with explicit Instants).
        let start = std::time::Instant::now();
        let merge_out =
            merge_phase_controlled(graph, &mut bm, target, cfg, phase_index, &mut stats, &ctrl);
        stats.timer.add(Phase::BlockMerge, start.elapsed());
        if merge_out.truncated {
            stats.stop_cause = ctrl.interrupt_cause().unwrap_or(StopCause::Cancelled);
            break; // discard the in-flight evaluation
        }
        let start = std::time::Instant::now();
        let mcmc_res =
            run_mcmc_phase_controlled(graph, &mut bm, cfg, phase_index, &mut stats, &ctrl);
        stats.timer.add(Phase::Mcmc, start.elapsed());
        let mcmc_out = mcmc_res?;
        if mcmc_out.truncated {
            stats.stop_cause = ctrl
                .sweep_stop_cause(stats.mcmc_sweeps)
                .unwrap_or(StopCause::Cancelled);
            break; // discard the in-flight evaluation
        }
        phase_index += 1;
        stats.outer_iterations += 1;

        let evaluated = Evaluated {
            num_blocks: bm.num_blocks(),
            mdl_total: mcmc_out.mdl.total,
            assignment: bm.assignment().to_vec(),
        };
        trajectory.push((evaluated.num_blocks, evaluated.mdl_total));

        // Bracket update.
        match mid.take() {
            None => mid = Some(evaluated),
            Some(displaced) if evaluated.mdl_total < displaced.mdl_total => {
                if evaluated.num_blocks < displaced.num_blocks {
                    // We improved while moving left: old mid bounds us above.
                    if displaced.num_blocks < upper.as_ref().map_or(usize::MAX, |u| u.num_blocks) {
                        upper = Some(displaced);
                    }
                } else if displaced.num_blocks > lower.as_ref().map_or(0, |l| l.num_blocks) {
                    lower = Some(displaced);
                }
                mid = Some(evaluated);
            }
            Some(m) => {
                if evaluated.num_blocks < m.num_blocks {
                    if lower
                        .as_ref()
                        .is_none_or(|l| evaluated.num_blocks > l.num_blocks)
                    {
                        lower = Some(evaluated);
                    }
                } else if evaluated.num_blocks > m.num_blocks
                    && upper
                        .as_ref()
                        .is_none_or(|u| evaluated.num_blocks < u.num_blocks)
                {
                    upper = Some(evaluated);
                }
                mid = Some(m);
            }
        }

        // Reached the floor while still unbracketed: nothing left to try.
        if !(mid.is_some() && lower.is_some()) && bm.num_blocks() <= 1 {
            break;
        }
    }

    let Some(best) = mid.or(upper) else {
        unreachable!("at least the singleton state exists");
    };
    let bm = Blockmodel::from_assignment(graph, best.assignment.clone(), best.num_blocks);
    let final_mdl = mdl::mdl(&bm, n, graph.total_weight());
    let null = mdl::null_mdl(graph.total_weight());
    Ok(SbpResult {
        assignment: best.assignment,
        num_blocks: best.num_blocks,
        mdl: final_mdl,
        normalized_mdl: if null == 0.0 {
            f64::NAN
        } else {
            final_mdl.total / null
        },
        trajectory,
        stats,
    })
}
