//! End-of-sweep consolidation: folding a sweep's accepted moves back into
//! the blockmodel.
//!
//! The parallel sweep variants (A-SBP, H-SBP's tail, EA-SBP) decide moves
//! against frozen state and only flip a membership vector; the blockmodel
//! must then be brought up to date once per sweep (per batch for batched
//! A-SBP). Historically that was always the O(E) `rebuild`. When only a few
//! vertices actually moved — the common case once the chain starts
//! converging — replaying those moves through [`Blockmodel::apply_move`]
//! costs O(Σ degree(moved)) instead, with no parallel barrier.
//!
//! Both paths land on the *same bytes*: `apply_move` performs exact integer
//! updates and the sparse rows are canonical sorted vectors, so the
//! incremental result is structurally identical to a rebuild from the same
//! membership (property-tested, and checkable at runtime with
//! [`Consolidation::Verify`]). The strategy choice is therefore pure
//! performance, made per sweep by the [`CostModel`] crossover.

use crate::config::{Consolidation, SbpConfig};
use crate::error::HsbpError;
use crate::stats::RunStats;
use hsbp_blockmodel::{Block, Blockmodel, NeighborCounts, ProposalArena};
use hsbp_graph::{Graph, Vertex};

/// Replace `bm`'s state with the blockmodel implied by `new_assignment`,
/// choosing between incremental move replay and a full rebuild according to
/// `cfg.consolidation`. Charges the simulated-time account and the
/// consolidation counters on `stats`; `total_sweep` labels a
/// [`HsbpError::StateDrift`] raised by the Verify mode.
pub(crate) fn consolidate_sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    new_assignment: Vec<Block>,
    cfg: &SbpConfig,
    arena: &mut ProposalArena,
    stats: &mut RunStats,
    total_sweep: usize,
) -> Result<(), HsbpError> {
    let n = graph.num_vertices();
    debug_assert_eq!(new_assignment.len(), n);
    let current = bm.assignment();
    let mut moves = 0usize;
    let mut incremental_cost = 0.0;
    for v in 0..n {
        if current[v] != new_assignment[v] {
            moves += 1;
            incremental_cost += cfg
                .cost_model
                .consolidation_move_cost(graph.incident_arity(v as Vertex));
        }
    }
    if moves == 0 {
        // Nothing changed: both paths are the identity; charge nothing.
        stats.consolidations_incremental += 1;
        return Ok(());
    }

    if cfg.consolidation == Consolidation::Verify {
        let mut rebuilt = bm.clone();
        rebuilt.rebuild(graph, new_assignment.clone());
        apply_incremental(graph, bm, &new_assignment, arena);
        if *bm != rebuilt {
            return Err(HsbpError::StateDrift {
                sweep: total_sweep,
                detail: format!(
                    "incremental consolidation diverged from rebuild after {moves} moves"
                ),
            });
        }
        stats.consolidated_moves += moves as u64;
        stats.consolidations_incremental += 1;
        stats.consolidations_rebuild += 1;
        stats.sim_mcmc.add_serial(incremental_cost);
        charge_rebuild(cfg, graph, stats);
        return Ok(());
    }

    let incremental = match cfg.consolidation {
        Consolidation::ForceIncremental => true,
        Consolidation::ForceRebuild => false,
        Consolidation::Auto | Consolidation::Verify => cfg
            .cost_model
            .prefer_incremental_consolidation(incremental_cost, graph.num_edges()),
    };
    if incremental {
        apply_incremental(graph, bm, &new_assignment, arena);
        stats.consolidated_moves += moves as u64;
        stats.consolidations_incremental += 1;
        stats.sim_mcmc.add_serial(incremental_cost);
    } else {
        bm.rebuild(graph, new_assignment);
        stats.consolidations_rebuild += 1;
        charge_rebuild(cfg, graph, stats);
    }
    Ok(())
}

/// Replay every `current != target` vertex through `apply_move`, ascending
/// by vertex id. Each step re-gathers the neighbour census against the
/// *evolving* assignment, so every individual move is exact; the final
/// state is a pure function of `target` (order-independent) and equals
/// `rebuild(graph, target)` byte for byte.
fn apply_incremental(
    graph: &Graph,
    bm: &mut Blockmodel,
    target: &[Block],
    arena: &mut ProposalArena,
) {
    for (v, &to) in target.iter().enumerate() {
        let v = v as Vertex;
        let from = bm.block_of(v);
        if from == to {
            continue;
        }
        NeighborCounts::gather_into(
            graph,
            bm.assignment(),
            v,
            &mut arena.scratch,
            &mut arena.counts,
        );
        bm.apply_move(v, from, to, &arena.counts);
    }
}

/// Simulated-time charge for the rebuild path (parallelisable up to the
/// serial merge fraction) — identical to the pre-consolidation accounting.
fn charge_rebuild(cfg: &SbpConfig, graph: &Graph, stats: &mut RunStats) {
    stats.sim_mcmc.add_parallel_uniform(
        cfg.cost_model.rebuild_cost(graph.num_edges()),
        cfg.cost_model.rebuild_serial_fraction,
    );
}
