//! The hybrid sweep (Algorithm 4) — H-SBP's MCMC phase.
//!
//! Vertices are ordered by total degree, descending. The top
//! `hybrid_serial_fraction` (the influential set `V*`, 15% in the paper) is
//! processed first, serially and with immediate blockmodel updates — giving
//! the high-influence vertices a chance to settle before anyone else reads
//! the state. The low-degree tail `V⁻` then runs exactly like an A-SBP
//! sweep against the post-serial snapshot, followed by one consolidation
//! (incremental move replay or rebuild, see [`super::consolidate`]).

use super::async_gibbs::evaluate_chunk;
use super::consolidate::consolidate_sweep;
use super::{PhaseWorkspace, SweepCounters};
use crate::budget::{RunControl, VERTEX_CHECK_STRIDE};
use crate::config::SbpConfig;
use crate::error::HsbpError;
use crate::stats::RunStats;
use hsbp_blockmodel::{
    evaluate_move_with_mode, propose::accept_move, propose_block, Block, BlockNeighborSampler,
    Blockmodel, NeighborCounts, ProposalArena,
};
use hsbp_collections::SplitMix64;
use hsbp_graph::{Graph, Vertex};
use hsbp_parallel::{ChunkPlan, ThreadPool};

#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    order: &[Vertex],
    vstar_len: usize,
    cfg: &SbpConfig,
    salt: u64,
    sweep_idx: u64,
    stats: &mut RunStats,
    tail_costs: &[f64],
    ctrl: &RunControl,
    exec: &ThreadPool,
    tail_plan: &ChunkPlan,
    ws: &mut PhaseWorkspace,
) -> Result<SweepCounters, HsbpError> {
    let sweep_no = stats.mcmc_sweeps + 1;
    let mut counters = SweepCounters::default();

    // Serial Metropolis-Hastings pass over the influential set V*.
    let mut serial_cost = 0.0;
    {
        let arena = &mut ws.arena;
        for (i, &v) in order[..vstar_len].iter().enumerate() {
            // Coarse cancellation checkpoint (see metropolis::sweep); the
            // interrupted state is a consistent prefix of the serial pass.
            if (i as u64).is_multiple_of(VERTEX_CHECK_STRIDE)
                && i > 0
                && ctrl.interrupt_cause().is_some()
            {
                break;
            }
            let mut rng = SplitMix64::for_item(salt, sweep_idx, u64::from(v));
            let from = bm.block_of(v);
            let to = propose_block(graph, bm, bm.assignment(), v, &mut rng);
            counters.proposals += 1;
            let incident = graph.incident_arity(v);
            serial_cost += cfg.cost_model.proposal_cost(incident);
            if to == from {
                continue;
            }
            NeighborCounts::gather_into(
                graph,
                bm.assignment(),
                v,
                &mut arena.scratch,
                &mut arena.counts,
            );
            let eval = evaluate_move_with_mode(
                bm,
                from,
                to,
                &arena.counts,
                &mut arena.eval,
                cfg.math_mode,
            );
            if accept_move(&eval, cfg.beta, &mut rng) {
                bm.apply_move(v, from, to, &arena.counts);
                serial_cost += cfg.cost_model.update_cost(incident);
                counters.accepted += 1;
            }
        }
    }
    stats.sim_mcmc.add_serial(serial_cost);

    // Asynchronous-Gibbs pass over the tail V⁻ (frozen model + snapshot).
    // Skipped entirely when an interrupt is already pending — the model is
    // consistent after the serial pass, and the phase discards the sweep.
    let tail = &order[vstar_len..];
    if !tail.is_empty() && ctrl.interrupt_cause().is_none() {
        let snapshot = bm.assignment_snapshot();
        let frozen: &Blockmodel = bm;
        let sampler = BlockNeighborSampler::build(frozen);
        debug_assert_eq!(tail_plan.len(), tail.len());
        let decisions: Vec<Option<Block>> =
            exec.map_chunked_resident(tail_plan, ProposalArena::default, |arena, range, out| {
                evaluate_chunk(
                    graph,
                    frozen,
                    &sampler,
                    &snapshot,
                    |i| tail[i],
                    range,
                    cfg,
                    salt,
                    sweep_idx,
                    arena,
                    out,
                );
            });
        counters.proposals += tail.len() as u64;
        let mut new_assignment = snapshot;
        for (&v, decision) in tail.iter().zip(decisions) {
            if let Some(to) = decision {
                new_assignment[v as usize] = to;
                counters.accepted += 1;
            }
        }

        stats.sim_mcmc.add_parallel(tail_costs);
        consolidate_sweep(
            graph,
            bm,
            new_assignment,
            cfg,
            &mut ws.arena,
            stats,
            sweep_no,
        )?;
    }
    Ok(counters)
}
