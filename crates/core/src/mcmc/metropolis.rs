//! The serial Metropolis-Hastings sweep (Algorithm 2) — the paper's SBP
//! baseline. Each accepted move updates the blockmodel immediately, so
//! every later proposal in the same sweep sees fully fresh state; that is
//! exactly the dependency chain that makes this phase inherently serial.

use super::SweepCounters;
use crate::budget::{RunControl, VERTEX_CHECK_STRIDE};
use crate::config::SbpConfig;
use crate::error::HsbpError;
use crate::stats::RunStats;
use hsbp_blockmodel::{
    evaluate_move_with_mode, propose::accept_move, propose_block, Blockmodel, NeighborCounts,
    ProposalArena,
};
use hsbp_collections::SplitMix64;
use hsbp_graph::{Graph, Vertex};

#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    cfg: &SbpConfig,
    salt: u64,
    sweep_idx: u64,
    stats: &mut RunStats,
    ctrl: &RunControl,
    arena: &mut ProposalArena,
) -> Result<SweepCounters, HsbpError> {
    let mut counters = SweepCounters::default();
    let mut serial_cost = 0.0;
    for v in 0..graph.num_vertices() as Vertex {
        // Coarse cancellation checkpoint; every state it leaves behind is a
        // consistent prefix of the sweep (moves apply immediately).
        if u64::from(v) % VERTEX_CHECK_STRIDE == 0 && v > 0 && ctrl.interrupt_cause().is_some() {
            break;
        }
        let mut rng = SplitMix64::for_item(salt, sweep_idx, u64::from(v));
        let from = bm.block_of(v);
        let to = propose_block(graph, bm, bm.assignment(), v, &mut rng);
        counters.proposals += 1;
        let incident = graph.incident_arity(v);
        serial_cost += cfg.cost_model.proposal_cost(incident);
        if to == from {
            continue;
        }
        NeighborCounts::gather_into(
            graph,
            bm.assignment(),
            v,
            &mut arena.scratch,
            &mut arena.counts,
        );
        let eval =
            evaluate_move_with_mode(bm, from, to, &arena.counts, &mut arena.eval, cfg.math_mode);
        if accept_move(&eval, cfg.beta, &mut rng) {
            bm.apply_move(v, from, to, &arena.counts);
            serial_cost += cfg.cost_model.update_cost(incident);
            counters.accepted += 1;
        }
    }
    stats.sim_mcmc.add_serial(serial_cost);
    Ok(counters)
}
