//! Exact asynchronous Gibbs with per-worker model replicas (Terenin et al.,
//! the algorithm the paper's §2.3/§3.1 discusses and deliberately does
//! *not* adopt).
//!
//! Each of `exact_async_workers` logical workers owns a full clone of the
//! blockmodel and processes a contiguous vertex shard serially, applying its
//! own accepted moves to its *local* replica immediately — so within a
//! shard the state is perfectly fresh, while other workers' moves stay
//! invisible until the end-of-sweep consolidation (assignment merge +
//! global rebuild).
//!
//! The paper rejects this design because (a) replicating `B` per worker
//! costs memory bandwidth on large models and (b) the replicas must be
//! consolidated anyway; implementing it lets the `ablation exact` target
//! quantify that trade-off against the paper's snapshot-based A-SBP.

use super::SweepCounters;
use crate::budget::{RunControl, VERTEX_CHECK_STRIDE};
use crate::config::SbpConfig;
use crate::stats::RunStats;
use hsbp_blockmodel::{
    evaluate_move, propose::accept_move, propose_block, Block, Blockmodel, MoveScratch,
    NeighborCounts,
};
use hsbp_collections::SplitMix64;
use hsbp_graph::{Graph, Vertex};
use rayon::prelude::*;

#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    cfg: &SbpConfig,
    salt: u64,
    sweep_idx: u64,
    stats: &mut RunStats,
    parallel_costs: &[f64],
    ctrl: &RunControl,
) -> SweepCounters {
    let n = graph.num_vertices();
    let workers = cfg.exact_async_workers.clamp(1, n.max(1));
    let shard_len = n.div_ceil(workers);
    let frozen: &Blockmodel = bm;

    // Each worker: clone the model, serial MH over its shard with immediate
    // local updates, return the shard's final labels.
    let shard_results: Vec<(usize, Vec<Block>, u64)> = (0..workers)
        .into_par_iter()
        .map(|w| {
            // Both ends clamp to `n`: on tiny graphs trailing workers get an
            // empty shard rather than an out-of-range slice.
            let start = (w * shard_len).min(n);
            let end = ((w + 1) * shard_len).min(n);
            let mut local = frozen.clone();
            let mut scratch = MoveScratch::default();
            let mut accepted = 0u64;
            for v in start..end {
                // Coarse per-worker cancellation checkpoint; each worker
                // bails with a consistent local replica, and the global
                // rebuild below still runs.
                if ((v - start) as u64).is_multiple_of(VERTEX_CHECK_STRIDE)
                    && v > start
                    && ctrl.interrupt_cause().is_some()
                {
                    break;
                }
                let v = v as Vertex;
                let mut rng = SplitMix64::for_item(salt, sweep_idx, u64::from(v));
                let from = local.block_of(v);
                let to = propose_block(graph, &local, local.assignment(), v, &mut rng);
                if to == from {
                    continue;
                }
                let counts =
                    NeighborCounts::gather_with(graph, local.assignment(), v, &mut scratch);
                let eval = evaluate_move(&local, from, to, &counts);
                if accept_move(&eval, cfg.beta, &mut rng) {
                    local.apply_move(v, from, to, &counts);
                    accepted += 1;
                }
            }
            let labels = local.assignment()[start..end].to_vec();
            (start, labels, accepted)
        })
        .collect();

    let mut counters = SweepCounters {
        proposals: n as u64,
        accepted: 0,
    };
    let mut new_assignment = bm.assignment_snapshot();
    for (start, labels, accepted) in shard_results {
        counters.accepted += accepted;
        new_assignment[start..start + labels.len()].copy_from_slice(&labels);
    }
    bm.rebuild(graph, new_assignment);

    // Simulated accounting: the shard loops parallelise like A-SBP's sweep,
    // but every worker first pays a full model replication (∝ E) — §3.1's
    // memory-bandwidth objection — and the usual rebuild follows.
    stats.sim_mcmc.add_parallel(parallel_costs);
    let clone_cost = cfg.cost_model.rebuild_cost(graph.num_edges());
    stats
        .sim_mcmc
        .add_parallel_uniform(workers as f64 * clone_cost, 0.0);
    stats.sim_mcmc.add_parallel_uniform(
        cfg.cost_model.rebuild_cost(graph.num_edges()),
        cfg.cost_model.rebuild_serial_fraction,
    );
    counters
}
