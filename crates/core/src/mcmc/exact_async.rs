//! Exact asynchronous Gibbs with per-worker model replicas (Terenin et al.,
//! the algorithm the paper's §2.3/§3.1 discusses and deliberately does
//! *not* adopt).
//!
//! Each of `exact_async_workers` logical workers owns a full replica of the
//! blockmodel and processes a contiguous vertex shard serially, applying its
//! own accepted moves to its *local* replica immediately — so within a
//! shard the state is perfectly fresh, while other workers' moves stay
//! invisible until the end-of-sweep consolidation.
//!
//! The replicas are *persistent* across the sweeps of a phase: instead of
//! re-cloning the global model every sweep, each worker returns its list of
//! accepted moves, the global model is consolidated from the merged
//! membership (incremental replay or rebuild, see [`super::consolidate`]),
//! and every replica folds in the *other* workers' moves as exact integer
//! deltas. Because the sparse rows are canonical, a synced replica is
//! byte-identical to the consolidated global model, so the clone cost is
//! paid only when the pool is (re)seeded — at phase start, after a worker
//! count change, or after an audit repair invalidates the replicas.
//!
//! The paper rejects this design because (a) replicating `B` per worker
//! costs memory bandwidth on large models and (b) the replicas must be
//! consolidated anyway; implementing it lets the `ablation exact` target
//! quantify that trade-off against the paper's snapshot-based A-SBP.

use super::consolidate::consolidate_sweep;
use super::{PhaseWorkspace, SweepCounters};
use crate::budget::{RunControl, VERTEX_CHECK_STRIDE};
use crate::config::SbpConfig;
use crate::error::HsbpError;
use crate::stats::RunStats;
use hsbp_blockmodel::{
    evaluate_move_with_mode, propose::accept_move, propose_block, Block, Blockmodel,
    NeighborCounts, ProposalArena,
};
use hsbp_collections::SplitMix64;
use hsbp_graph::{Graph, Vertex};
use hsbp_parallel::{with_resident, ThreadPool};

#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    cfg: &SbpConfig,
    salt: u64,
    sweep_idx: u64,
    stats: &mut RunStats,
    parallel_costs: &[f64],
    ctrl: &RunControl,
    exec: &ThreadPool,
    ws: &mut PhaseWorkspace,
) -> Result<SweepCounters, HsbpError> {
    let n = graph.num_vertices();
    let sweep_no = stats.mcmc_sweeps + 1;
    let workers = cfg.exact_async_workers.clamp(1, n.max(1));
    let shard_len = n.div_ceil(workers);

    // (Re)seed the persistent replica pool when it is empty or stale (phase
    // start, worker-count change, or invalidation after an audit repair /
    // injected corruption). Only here is §3.1's replication cost — one full
    // model copy per worker — actually paid.
    if ws.replicas.len() != workers {
        ws.replicas.clear();
        ws.replicas
            .extend(std::iter::repeat_with(|| bm.clone()).take(workers));
        let clone_cost = cfg.cost_model.rebuild_cost(graph.num_edges());
        stats
            .sim_mcmc
            .add_parallel_uniform(workers as f64 * clone_cost, 0.0);
    }
    debug_assert_eq!(
        ws.replicas.first(),
        Some(&*bm),
        "EA-SBP replica drifted from the consolidated model"
    );

    // Each worker: serial MH over its shard against its own replica with
    // immediate local updates, returning the accepted moves.
    type ShardResult = (usize, Blockmodel, Vec<(Vertex, Block)>);
    let locals: Vec<(usize, Blockmodel)> = std::mem::take(&mut ws.replicas)
        .into_iter()
        .enumerate()
        .collect();
    let shard_results: Vec<ShardResult> = exec.map_vec(
        locals,
        || (),
        |(), (w, mut local)| {
            // Both ends clamp to `n`: on tiny graphs trailing workers get an
            // empty shard rather than an out-of-range slice.
            let start = (w * shard_len).min(n);
            let end = ((w + 1) * shard_len).min(n);
            with_resident(ProposalArena::default, |arena| {
                let mut moves: Vec<(Vertex, Block)> = Vec::new();
                for v in start..end {
                    // Coarse per-worker cancellation checkpoint; each worker
                    // bails with a consistent local replica, and the global
                    // consolidation below still runs on the partial moves.
                    if ((v - start) as u64).is_multiple_of(VERTEX_CHECK_STRIDE)
                        && v > start
                        && ctrl.interrupt_cause().is_some()
                    {
                        break;
                    }
                    let v = v as Vertex;
                    let mut rng = SplitMix64::for_item(salt, sweep_idx, u64::from(v));
                    let from = local.block_of(v);
                    let to = propose_block(graph, &local, local.assignment(), v, &mut rng);
                    if to == from {
                        continue;
                    }
                    NeighborCounts::gather_into(
                        graph,
                        local.assignment(),
                        v,
                        &mut arena.scratch,
                        &mut arena.counts,
                    );
                    let eval = evaluate_move_with_mode(
                        &local,
                        from,
                        to,
                        &arena.counts,
                        &mut arena.eval,
                        cfg.math_mode,
                    );
                    if accept_move(&eval, cfg.beta, &mut rng) {
                        local.apply_move(v, from, to, &arena.counts);
                        moves.push((v, to));
                    }
                }
                (w, local, moves)
            })
        },
    );

    let mut counters = SweepCounters {
        proposals: n as u64,
        accepted: 0,
    };
    let mut all_moves: Vec<(usize, Vertex, Block)> = Vec::new();
    let mut new_assignment = bm.assignment_snapshot();
    for (w, _, moves) in &shard_results {
        counters.accepted += moves.len() as u64;
        for &(v, to) in moves {
            new_assignment[v as usize] = to;
            all_moves.push((*w, v, to));
        }
    }

    // Simulated accounting: the shard loops parallelise like A-SBP's sweep;
    // the consolidation charges itself below.
    stats.sim_mcmc.add_parallel(parallel_costs);
    consolidate_sweep(
        graph,
        bm,
        new_assignment,
        cfg,
        &mut ws.arena,
        stats,
        sweep_no,
    )?;

    // Bring every replica up to the consolidated state by folding in the
    // *other* workers' moves (the worker's own moves are already applied
    // locally). Exact integer deltas against each replica's own evolving
    // assignment: the final replica state is a pure function of the merged
    // membership, hence byte-identical to `bm`. Each replica pays
    // ~O(moves · degree) — the per-sweep residue of §3.1's consolidation
    // objection, charged below across all workers.
    let synced: Vec<(usize, Blockmodel)> = if all_moves.is_empty() {
        shard_results
            .into_iter()
            .map(|(w, local, _)| (w, local))
            .collect()
    } else {
        let sync_cost: f64 = all_moves
            .iter()
            .map(|&(_, v, _)| {
                cfg.cost_model
                    .consolidation_move_cost(graph.incident_arity(v))
            })
            .sum();
        stats
            .sim_mcmc
            .add_parallel_uniform(workers as f64 * sync_cost, 0.0);
        let all_moves = &all_moves;
        exec.map_vec(
            shard_results,
            || (),
            |(), (w, mut local, _)| {
                with_resident(ProposalArena::default, |arena| {
                    for &(owner, v, to) in all_moves.iter() {
                        if owner == w {
                            continue;
                        }
                        let from = local.block_of(v);
                        if from == to {
                            continue;
                        }
                        NeighborCounts::gather_into(
                            graph,
                            local.assignment(),
                            v,
                            &mut arena.scratch,
                            &mut arena.counts,
                        );
                        local.apply_move(v, from, to, &arena.counts);
                    }
                    (w, local)
                })
            },
        )
    };
    let mut synced = synced;
    synced.sort_unstable_by_key(|&(w, _)| w);
    ws.replicas
        .extend(synced.into_iter().map(|(_, local)| local));
    Ok(counters)
}
