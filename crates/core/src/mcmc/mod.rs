//! The MCMC phase: repeated sweeps of one of the three variants until the
//! MDL improvement stalls (Algorithms 2–4's shared outer `repeat … until
//! ΔMDL < t × MDL or x times` loop).

mod async_gibbs;
mod consolidate;
mod exact_async;
mod hybrid;
mod metropolis;

use crate::budget::RunControl;
use crate::config::{SbpConfig, Variant};
use crate::error::HsbpError;
use crate::stats::{DriftEvent, RunStats};
use hsbp_blockmodel::{audit_blockmodel, mdl, repair_blockmodel, Blockmodel, ProposalArena};
use hsbp_collections::sample::mix_words;
use hsbp_graph::{stats::vertices_by_degree_desc, Graph, Vertex};
use hsbp_parallel::ChunkPlan;

/// Counters returned by a single sweep.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SweepCounters {
    pub proposals: u64,
    pub accepted: u64,
}

/// Reusable per-phase state shared by all sweep variants: the serial-path
/// proposal arena and EA-SBP's persistent model replicas. Parallel sweep
/// workers no longer lease arenas per section — each worker thread holds a
/// pool-resident [`ProposalArena`] for its lifetime
/// (see [`hsbp_parallel::with_resident`]). One workspace per MCMC phase
/// keeps the steady-state hot path allocation-free without leaking stale
/// replicas across the merge phases that reshape the model in between.
#[derive(Debug, Default)]
pub(crate) struct PhaseWorkspace {
    /// Arena for the serial sweep paths and the consolidation replay.
    pub arena: ProposalArena,
    /// EA-SBP's per-worker model replicas, kept in sync by move deltas.
    /// Cleared whenever the global model changes behind their back (audit
    /// repair, injected corruption) so the next sweep reseeds them.
    pub replicas: Vec<Blockmodel>,
}

/// Degree-weighted chunk plan over the contiguous vertex range
/// `start..end`: boundaries follow the incident-arity prefix sum (read
/// straight off the CSR offsets), plus 1 per vertex so zero-degree vertices
/// still carry their fixed per-proposal cost.
pub(crate) fn degree_plan(graph: &Graph, start: usize, end: usize, target: usize) -> ChunkPlan {
    let base = (graph.incident_prefix(start) + start) as u64;
    ChunkPlan::from_prefix(end - start, target, |i| {
        (graph.incident_prefix(start + i) + start + i) as u64 - base
    })
}

/// Result of one full MCMC phase.
#[derive(Debug, Clone, Copy)]
pub struct McmcOutcome {
    /// Sweeps performed.
    pub sweeps: usize,
    /// MDL of the final state.
    pub mdl: mdl::Mdl,
    /// True if the threshold test fired (false = sweep cap hit).
    pub converged: bool,
    /// True when a budget or cancellation stopped the phase early; the
    /// in-flight sweep (if any) may be partially applied, so the driver
    /// discards the whole evaluation.
    pub truncated: bool,
}

/// Per-vertex proposal costs in a fixed iteration order (static across the
/// sweeps of one phase, since proposal cost depends only on degree).
fn proposal_costs(graph: &Graph, order: impl Iterator<Item = Vertex>, cfg: &SbpConfig) -> Vec<f64> {
    order
        .map(|v| cfg.cost_model.proposal_cost(graph.incident_arity(v)))
        .collect()
}

/// Run the MCMC phase of the configured variant on `bm` until convergence.
///
/// `phase_index` salts the RNG so successive phases of one run draw
/// independent randomness.
///
/// # Panics
/// Panics if a strict-mode drift audit fails; use
/// [`run_mcmc_phase_controlled`] to receive that as `HsbpError::StateDrift`
/// instead.
pub fn run_mcmc_phase(
    graph: &Graph,
    bm: &mut Blockmodel,
    cfg: &SbpConfig,
    phase_index: u64,
    stats: &mut RunStats,
) -> McmcOutcome {
    run_mcmc_phase_controlled(graph, bm, cfg, phase_index, stats, &RunControl::unlimited())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_mcmc_phase`] under a [`RunControl`], with the cadenced drift audit.
///
/// Budget/cancel checks run at every sweep boundary (and, for the serial
/// sweep loops, every [`crate::budget::VERTEX_CHECK_STRIDE`] vertices); a
/// tripped control marks the outcome `truncated` and stops the phase. When
/// `cfg.audit_cadence > 0`, the incremental blockmodel state is audited
/// against a rebuild from membership every `audit_cadence` cumulative
/// sweeps: divergence is repaired in place and recorded in
/// `stats.drift_events`, or — with `cfg.strict_audit` — returned as
/// `Err(HsbpError::StateDrift)`. That error is the only failure mode.
pub fn run_mcmc_phase_controlled(
    graph: &Graph,
    bm: &mut Blockmodel,
    cfg: &SbpConfig,
    phase_index: u64,
    stats: &mut RunStats,
    ctrl: &RunControl,
) -> Result<McmcOutcome, HsbpError> {
    let salt = mix_words(&[cfg.seed, 0x4d43_4d43, phase_index]); // "MCMC"
    let n = graph.num_vertices();
    stats.mcmc_phases += 1;

    // Variant-specific precomputation.
    let (order, vstar_len) = match cfg.variant {
        Variant::Hybrid => {
            let order = vertices_by_degree_desc(graph);
            let vstar = ((n as f64) * cfg.hybrid_serial_fraction).round() as usize;
            (order, vstar.min(n))
        }
        _ => (Vec::new(), 0),
    };
    let parallel_costs: Vec<f64> = match cfg.variant {
        Variant::Metropolis => Vec::new(),
        Variant::AsyncGibbs | Variant::ExactAsync => proposal_costs(graph, 0..n as Vertex, cfg),
        Variant::Hybrid => proposal_costs(graph, order[vstar_len..].iter().copied(), cfg),
    };
    let exec = hsbp_parallel::pool_for(cfg.threads);
    // Static per-phase chunk plan for H-SBP's permuted tail: the tail order
    // isn't contiguous in vertex ids, so its per-item weights can't be read
    // off the CSR prefix directly — build them once (the order is fixed for
    // the whole phase).
    let tail_plan = if cfg.variant == Variant::Hybrid {
        let weights: Vec<u64> = order[vstar_len..]
            .iter()
            .map(|&v| graph.incident_arity(v) as u64 + 1)
            .collect();
        ChunkPlan::from_costs(&weights, exec.chunk_target())
    } else {
        ChunkPlan::even(0, 1)
    };

    let mut previous = mdl::mdl(bm, n, graph.total_weight());
    let mut recent_deltas: Vec<f64> = Vec::with_capacity(3);
    let mut sweeps = 0;
    let mut converged = false;
    let mut truncated = false;
    let mut ws = PhaseWorkspace::default();

    // History of past models for the distributed-staleness emulation (only
    // populated when it is actually consulted).
    let staleness = cfg.asbp_staleness.max(1);
    let use_stale = cfg.variant == Variant::AsyncGibbs && staleness > 1 && cfg.asbp_batches == 1;
    let mut history: std::collections::VecDeque<Blockmodel> = std::collections::VecDeque::new();
    if use_stale {
        history.push_back(bm.clone());
    }

    while sweeps < cfg.max_sweeps {
        if ctrl.sweep_stop_cause(stats.mcmc_sweeps).is_some() {
            truncated = true;
            break;
        }
        let counters = match cfg.variant {
            Variant::Metropolis => metropolis::sweep(
                graph,
                bm,
                cfg,
                salt,
                sweeps as u64,
                stats,
                ctrl,
                &mut ws.arena,
            )?,
            Variant::AsyncGibbs if use_stale => {
                // Evaluate against the oldest retained model (at most
                // `staleness` sweeps old), then retire it.
                let eval_model = history.front().cloned().unwrap_or_else(|| bm.clone());
                let counters = async_gibbs::sweep_stale(
                    graph,
                    bm,
                    &eval_model,
                    cfg,
                    salt,
                    sweeps as u64,
                    stats,
                    &parallel_costs,
                    exec,
                    &mut ws,
                )?;
                history.push_back(bm.clone());
                while history.len() > staleness {
                    history.pop_front();
                }
                counters
            }
            Variant::AsyncGibbs => async_gibbs::sweep(
                graph,
                bm,
                cfg,
                salt,
                sweeps as u64,
                stats,
                &parallel_costs,
                ctrl,
                exec,
                &mut ws,
            )?,
            Variant::ExactAsync => exact_async::sweep(
                graph,
                bm,
                cfg,
                salt,
                sweeps as u64,
                stats,
                &parallel_costs,
                ctrl,
                exec,
                &mut ws,
            )?,
            Variant::Hybrid => hybrid::sweep(
                graph,
                bm,
                &order,
                vstar_len,
                cfg,
                salt,
                sweeps as u64,
                stats,
                &parallel_costs,
                ctrl,
                exec,
                &tail_plan,
                &mut ws,
            )?,
        };
        if ctrl.interrupt_cause().is_some() {
            // The sweep may have bailed out part-way; the whole evaluation
            // is discarded by the driver, so don't count it.
            truncated = true;
            break;
        }
        sweeps += 1;
        stats.mcmc_sweeps += 1;
        stats.proposals += counters.proposals;
        stats.accepted += counters.accepted;

        if cfg.inject_drift_at_sweep == Some(stats.mcmc_sweeps) {
            bm.inject_state_corruption(mix_words(&[
                cfg.seed,
                0x4452_4946, // "DRIF"
                stats.mcmc_sweeps as u64,
            ]));
            // The replicas no longer match the (corrupted) global model.
            ws.replicas.clear();
        }
        if cfg.audit_cadence > 0 && stats.mcmc_sweeps.is_multiple_of(cfg.audit_cadence) {
            stats.audits_run += 1;
            if let Some(report) = audit_blockmodel(bm, graph) {
                if cfg.strict_audit {
                    return Err(HsbpError::StateDrift {
                        sweep: stats.mcmc_sweeps,
                        detail: report.summary(),
                    });
                }
                repair_blockmodel(bm, graph);
                // Repair rewrote the global model: reseed EA replicas.
                ws.replicas.clear();
                stats.drift_events.push(DriftEvent {
                    total_sweep: stats.mcmc_sweeps,
                    phase_index,
                    mismatches: report.mismatches,
                    mdl_delta: report.mdl_delta,
                    repaired: true,
                });
            }
        }

        let current = mdl::mdl(bm, n, graph.total_weight());
        let delta = previous.total - current.total;
        previous = current;
        if recent_deltas.len() == 3 {
            recent_deltas.remove(0);
        }
        recent_deltas.push(delta.abs());
        if recent_deltas.len() == 3 {
            let mean: f64 = recent_deltas.iter().sum::<f64>() / 3.0;
            if mean < cfg.mcmc_threshold * previous.total.abs().max(1.0) {
                converged = true;
                break;
            }
        }
    }

    Ok(McmcOutcome {
        sweeps,
        mdl: previous,
        converged,
        truncated,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hsbp_graph::Graph;

    fn planted(n_per: u32, groups: u32, seed: u64) -> (Graph, Vec<u32>) {
        // Dense planted partition without the generator crate (core's tests
        // must not depend on it for the unit level).
        let n = n_per * groups;
        let mut edges = Vec::new();
        let mut state = seed;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for u in 0..n {
            let gu = u / n_per;
            for _ in 0..6 {
                // ~85% within-community edges.
                let v = if rnd() % 100 < 85 {
                    gu * n_per + rnd() % n_per
                } else {
                    rnd() % n
                };
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        let truth: Vec<u32> = (0..n).map(|v| v / n_per).collect();
        (Graph::from_edges(n as usize, &edges), truth)
    }

    #[test]
    fn mcmc_phase_reduces_mdl_from_random_partition() {
        for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
            let (g, _) = planted(30, 3, 11);
            // Start from a deliberately wrong 3-block partition.
            let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
            let mut bm = Blockmodel::from_assignment(&g, wrong, 3);
            let before = mdl::mdl(&bm, g.num_vertices(), g.total_weight()).total;
            let cfg = SbpConfig {
                variant,
                seed: 5,
                ..Default::default()
            };
            let mut stats = RunStats::new(&cfg);
            let out = run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            assert!(out.sweeps >= 1);
            assert!(
                out.mdl.total < before,
                "{variant:?}: MDL {} did not improve on {before}",
                out.mdl.total
            );
            bm.check_consistency(&g).unwrap();
            assert!(stats.proposals > 0);
        }
    }

    #[test]
    fn mcmc_recovers_planted_partition_from_truth_start() {
        // Starting at the truth, the sampler must not wander away: the MDL
        // should stay at or below the truth's MDL.
        for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
            let (g, truth) = planted(25, 4, 23);
            let mut bm = Blockmodel::from_assignment(&g, truth.clone(), 4);
            let truth_mdl = mdl::mdl(&bm, g.num_vertices(), g.total_weight()).total;
            let cfg = SbpConfig {
                variant,
                seed: 9,
                max_sweeps: 20,
                ..Default::default()
            };
            let mut stats = RunStats::new(&cfg);
            let out = run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            assert!(
                out.mdl.total <= truth_mdl * 1.02,
                "{variant:?}: wandered from {truth_mdl} to {}",
                out.mdl.total
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
            let (g, _) = planted(20, 3, 31);
            let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
            let cfg = SbpConfig {
                variant,
                seed: 77,
                max_sweeps: 5,
                ..Default::default()
            };
            let run = |()| {
                let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 3);
                let mut stats = RunStats::new(&cfg);
                run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
                bm.assignment().to_vec()
            };
            assert_eq!(run(()), run(()), "{variant:?} is not deterministic");
        }
    }

    #[test]
    fn sweep_cap_respected() {
        let (g, _) = planted(20, 3, 41);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        let mut bm = Blockmodel::from_assignment(&g, wrong, 3);
        let cfg = SbpConfig {
            variant: Variant::AsyncGibbs,
            seed: 1,
            max_sweeps: 2,
            mcmc_threshold: 0.0, // never converge by threshold
            ..Default::default()
        };
        let mut stats = RunStats::new(&cfg);
        let out = run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
        assert_eq!(out.sweeps, 2);
        assert!(!out.converged);
    }

    #[test]
    fn sim_time_accumulates_per_variant() {
        let (g, _) = planted(25, 3, 51);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
            let cfg = SbpConfig {
                variant,
                seed: 3,
                max_sweeps: 4,
                ..Default::default()
            };
            let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 3);
            let mut stats = RunStats::new(&cfg);
            run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            let t1 = stats.sim_mcmc_time(1).unwrap();
            let t128 = stats.sim_mcmc_time(128).unwrap();
            assert!(t1 > 0.0, "{variant:?}: no sim time recorded");
            match variant {
                // Serial MH cannot speed up.
                Variant::Metropolis => assert_eq!(t1, t128),
                // Parallel variants must improve with threads.
                _ => assert!(t128 < t1, "{variant:?}: t1 {t1} vs t128 {t128}"),
            }
        }
    }

    #[test]
    fn asbp_parallel_sim_time_beats_sbp_at_128_threads() {
        let (g, _) = planted(40, 3, 61);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        let mut times = std::collections::HashMap::new();
        for variant in [Variant::Metropolis, Variant::AsyncGibbs] {
            let cfg = SbpConfig {
                variant,
                seed: 3,
                max_sweeps: 3,
                mcmc_threshold: 0.0,
                ..Default::default()
            };
            let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 3);
            let mut stats = RunStats::new(&cfg);
            run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            // Per-sweep normalised time removes the sweep-count difference.
            times.insert(
                variant.name(),
                stats.sim_mcmc_time(128).unwrap() / stats.mcmc_sweeps as f64,
            );
        }
        assert!(
            times["A-SBP"] < times["SBP"],
            "per-sweep A-SBP {} should beat SBP {} at 128 threads",
            times["A-SBP"],
            times["SBP"]
        );
    }

    #[test]
    fn batched_asbp_runs_and_stays_consistent() {
        let (g, _) = planted(20, 3, 71);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        let mut bm = Blockmodel::from_assignment(&g, wrong, 3);
        let cfg = SbpConfig {
            variant: Variant::AsyncGibbs,
            asbp_batches: 4,
            seed: 2,
            max_sweeps: 3,
            ..Default::default()
        };
        let mut stats = RunStats::new(&cfg);
        run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
        bm.check_consistency(&g).unwrap();
    }

    #[test]
    fn exact_async_improves_and_stays_consistent() {
        let (g, _) = planted(25, 3, 101);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        for workers in [1usize, 4, 16] {
            let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 3);
            let before = mdl::mdl(&bm, g.num_vertices(), g.total_weight()).total;
            let cfg = SbpConfig {
                variant: Variant::ExactAsync,
                exact_async_workers: workers,
                seed: 5,
                ..Default::default()
            };
            let mut stats = RunStats::new(&cfg);
            let out = run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            bm.check_consistency(&g).unwrap();
            assert!(
                out.mdl.total < before,
                "workers {workers}: MDL {} did not improve on {before}",
                out.mdl.total
            );
        }
    }

    #[test]
    fn exact_async_one_worker_equals_serial_sweep_outcome() {
        // With a single worker the local replica is never stale, so one
        // EA-SBP sweep is exactly one serial MH sweep (same counter RNG).
        let (g, _) = planted(15, 2, 111);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 2).collect();
        let run = |variant: Variant| {
            let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 2);
            let cfg = SbpConfig {
                variant,
                exact_async_workers: 1,
                max_sweeps: 1,
                mcmc_threshold: 0.0,
                seed: 4,
                ..Default::default()
            };
            let mut stats = RunStats::new(&cfg);
            run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            bm.assignment().to_vec()
        };
        assert_eq!(run(Variant::ExactAsync), run(Variant::Metropolis));
    }

    #[test]
    fn stale_asbp_runs_and_stays_consistent() {
        let (g, _) = planted(20, 3, 91);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        for staleness in [2usize, 4] {
            let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 3);
            let before = mdl::mdl(&bm, g.num_vertices(), g.total_weight()).total;
            let cfg = SbpConfig {
                variant: Variant::AsyncGibbs,
                asbp_staleness: staleness,
                seed: 6,
                max_sweeps: 8,
                ..Default::default()
            };
            let mut stats = RunStats::new(&cfg);
            let out = run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            bm.check_consistency(&g).unwrap();
            // Stale evaluation can thrash (the very pathology the ablation
            // studies), so only require that the chain stays sane.
            assert!(
                out.mdl.total.is_finite() && out.mdl.total < before.abs() * 2.0 + 100.0,
                "staleness {staleness}: MDL exploded from {before} to {}",
                out.mdl.total
            );
        }
    }

    #[test]
    fn staleness_changes_trajectory() {
        // Staleness > 1 must actually change behaviour relative to fresh
        // A-SBP (same seed, same graph).
        let (g, _) = planted(20, 3, 95);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        let run = |staleness: usize| {
            let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 3);
            let cfg = SbpConfig {
                variant: Variant::AsyncGibbs,
                asbp_staleness: staleness,
                seed: 8,
                max_sweeps: 6,
                mcmc_threshold: 0.0,
                ..Default::default()
            };
            let mut stats = RunStats::new(&cfg);
            run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            bm.assignment().to_vec()
        };
        assert_ne!(run(1), run(4));
    }

    #[test]
    fn consolidation_modes_are_bit_identical() {
        // Incremental replay, rebuild and the auto crossover must produce
        // the same trajectory — the canonical sparse rows make the two
        // paths byte-identical, and Verify double-checks that per sweep.
        use crate::config::Consolidation;
        let (g, _) = planted(25, 3, 121);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        for variant in [Variant::AsyncGibbs, Variant::Hybrid, Variant::ExactAsync] {
            let run = |mode: Consolidation| {
                let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 3);
                let cfg = SbpConfig {
                    variant,
                    seed: 13,
                    max_sweeps: 6,
                    mcmc_threshold: 0.0,
                    consolidation: mode,
                    ..Default::default()
                };
                let mut stats = RunStats::new(&cfg);
                run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
                (bm, stats)
            };
            let (inc, inc_stats) = run(Consolidation::ForceIncremental);
            let (reb, reb_stats) = run(Consolidation::ForceRebuild);
            let (auto, _) = run(Consolidation::Auto);
            let (verify, _) = run(Consolidation::Verify);
            assert_eq!(inc, reb, "{variant:?}: incremental != rebuild");
            assert_eq!(inc, auto, "{variant:?}: auto diverged");
            assert_eq!(inc, verify, "{variant:?}: verify diverged");
            assert!(inc_stats.consolidations_incremental > 0, "{variant:?}");
            assert_eq!(inc_stats.consolidations_rebuild, 0, "{variant:?}");
            assert!(reb_stats.consolidations_rebuild > 0, "{variant:?}");
            assert_eq!(reb_stats.consolidated_moves, 0, "{variant:?}");
        }
    }

    #[test]
    fn auto_consolidation_goes_incremental_once_settled() {
        // From a converged start almost nothing moves, so the cost-model
        // crossover must pick the incremental path for the late sweeps.
        let (g, truth) = planted(30, 3, 131);
        let mut bm = Blockmodel::from_assignment(&g, truth, 3);
        let cfg = SbpConfig {
            variant: Variant::AsyncGibbs,
            seed: 7,
            max_sweeps: 6,
            mcmc_threshold: 0.0,
            ..Default::default()
        };
        let mut stats = RunStats::new(&cfg);
        run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
        assert!(
            stats.consolidations_incremental > 0,
            "auto never used the incremental path: {stats:?}"
        );
    }

    #[test]
    fn hybrid_serial_fraction_extremes() {
        let (g, _) = planted(15, 2, 81);
        let wrong: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 2).collect();
        for fraction in [0.0, 1.0] {
            let mut bm = Blockmodel::from_assignment(&g, wrong.clone(), 2);
            let cfg = SbpConfig {
                variant: Variant::Hybrid,
                hybrid_serial_fraction: fraction,
                seed: 2,
                max_sweeps: 3,
                ..Default::default()
            };
            let mut stats = RunStats::new(&cfg);
            run_mcmc_phase(&g, &mut bm, &cfg, 0, &mut stats);
            bm.check_consistency(&g).unwrap();
        }
    }
}
