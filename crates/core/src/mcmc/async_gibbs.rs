//! The asynchronous-Gibbs sweep (Algorithm 3) — A-SBP's MCMC phase.
//!
//! All vertices are evaluated *in parallel* against the blockmodel frozen at
//! the start of the sweep (exact asynchronous Gibbs: the Metropolis-Hastings
//! ratio is still computed, so not every proposal is accepted). Accepted
//! moves only update a private copy of the membership vector; the blockmodel
//! is consolidated from it once at the end — incrementally (O(degree)
//! `apply_move` deltas) when few vertices moved, else via the classic O(E)
//! rebuild (see [`super::consolidate`]) — so every worker reads state that
//! is at most one sweep stale, and no locks are needed anywhere.
//!
//! With `asbp_batches > 1` the sweep is split into contiguous batches with a
//! consolidation after each (the "batched A-SBP" extension from the paper's
//! conclusion): staleness shrinks to a batch, at the cost of more
//! consolidations.
//!
//! Per-vertex randomness comes from a counter RNG keyed on
//! `(salt, sweep, vertex)`, making the outcome independent of how the pool
//! schedules the vertices over threads: every decision lands in a fixed
//! per-vertex output slot before the single consolidation point.

use super::consolidate::consolidate_sweep;
use super::{degree_plan, PhaseWorkspace, SweepCounters};
use crate::budget::RunControl;
use crate::config::SbpConfig;
use crate::error::HsbpError;
use crate::stats::RunStats;
use hsbp_blockmodel::{
    evaluate_move_with_mode, propose::accept_move, propose_block_frozen, Block,
    BlockNeighborSampler, Blockmodel, NeighborCounts, ProposalArena,
};
use hsbp_collections::SplitMix64;
use hsbp_graph::{Graph, Vertex};
use hsbp_parallel::ThreadPool;
use std::ops::Range;

/// Evaluate one chunk of vertices against the frozen model, pushing one
/// `Some(to)`/`None` decision per index. Shared by the A-SBP sweep and
/// H-SBP's parallel tail; `vertex_of` maps a plan index to the vertex it
/// stands for. The caller builds the [`BlockNeighborSampler`] once per
/// frozen model, so every proposal's block-neighbour draw is O(1) instead
/// of a linear scan.
///
/// The chunk is processed in two stages: stage A draws every counter-RNG
/// stream and alias-table proposal for the batch, parking the per-vertex
/// RNG state in the arena's [`ProposalBatch`]; stage B gathers, evaluates
/// and runs the acceptance test, resuming each vertex's parked stream.
/// Each vertex still consumes its own RNG stream in the per-vertex order,
/// so decisions are bit-identical to the unbatched loop — batching only
/// amortizes proposal dispatch across the chunk.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_chunk(
    graph: &Graph,
    bm: &Blockmodel,
    sampler: &BlockNeighborSampler,
    snapshot: &[Block],
    vertex_of: impl Fn(usize) -> Vertex,
    range: Range<usize>,
    cfg: &SbpConfig,
    salt: u64,
    sweep_idx: u64,
    arena: &mut ProposalArena,
    out: &mut Vec<Option<Block>>,
) {
    let ProposalArena {
        scratch,
        counts,
        eval,
        batch,
    } = arena;
    // Stage A: propose for the whole chunk.
    batch.clear();
    for i in range.clone() {
        let v = vertex_of(i);
        let mut rng = SplitMix64::for_item(salt, sweep_idx, u64::from(v));
        let from = snapshot[v as usize];
        let to = propose_block_frozen(graph, bm, sampler, snapshot, v, &mut rng);
        batch.rngs.push(rng);
        batch.from.push(from);
        batch.to.push(to);
    }
    // Stage B: gather, evaluate, accept.
    for (j, i) in range.enumerate() {
        let (from, to) = (batch.from[j], batch.to[j]);
        if to == from {
            out.push(None);
            continue;
        }
        let v = vertex_of(i);
        NeighborCounts::gather_into(graph, snapshot, v, scratch, counts);
        let e = evaluate_move_with_mode(bm, from, to, counts, eval, cfg.math_mode);
        out.push(if accept_move(&e, cfg.beta, &mut batch.rngs[j]) {
            Some(to)
        } else {
            None
        });
    }
}

/// A sweep evaluated against an *arbitrarily stale* model (the distributed
/// A-SBP emulation, `asbp_staleness > 1`): proposals and MH ratios use
/// `eval_model` — the blockmodel as it was `staleness` sweeps ago — while
/// accepted moves update the *current* membership vector, exactly as remote
/// workers applying decisions made from an old synchronisation point would.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_stale(
    graph: &Graph,
    bm: &mut Blockmodel,
    eval_model: &Blockmodel,
    cfg: &SbpConfig,
    salt: u64,
    sweep_idx: u64,
    stats: &mut RunStats,
    parallel_costs: &[f64],
    exec: &ThreadPool,
    ws: &mut PhaseWorkspace,
) -> Result<SweepCounters, HsbpError> {
    let n = graph.num_vertices();
    let sweep_no = stats.mcmc_sweeps + 1;
    let mut counters = SweepCounters::default();
    let stale_assignment = eval_model.assignment();
    let sampler = BlockNeighborSampler::build(eval_model);
    let plan = degree_plan(graph, 0, n, exec.chunk_target());
    let decisions: Vec<Option<Block>> =
        exec.map_chunked_resident(&plan, ProposalArena::default, |arena, range, out| {
            evaluate_chunk(
                graph,
                eval_model,
                &sampler,
                stale_assignment,
                |i| i as Vertex,
                range,
                cfg,
                salt,
                sweep_idx,
                arena,
                out,
            );
        });
    counters.proposals += n as u64;
    let mut new_assignment = bm.assignment_snapshot();
    for (v, decision) in decisions.into_iter().enumerate() {
        if let Some(to) = decision {
            new_assignment[v] = to;
            counters.accepted += 1;
        }
    }
    stats.sim_mcmc.add_parallel(parallel_costs);
    consolidate_sweep(
        graph,
        bm,
        new_assignment,
        cfg,
        &mut ws.arena,
        stats,
        sweep_no,
    )?;
    Ok(counters)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep(
    graph: &Graph,
    bm: &mut Blockmodel,
    cfg: &SbpConfig,
    salt: u64,
    sweep_idx: u64,
    stats: &mut RunStats,
    parallel_costs: &[f64],
    ctrl: &RunControl,
    exec: &ThreadPool,
    ws: &mut PhaseWorkspace,
) -> Result<SweepCounters, HsbpError> {
    let n = graph.num_vertices();
    let sweep_no = stats.mcmc_sweeps + 1;
    let mut counters = SweepCounters::default();
    let batches = cfg.asbp_batches.min(n.max(1));
    let batch_len = n.div_ceil(batches.max(1));

    for batch in 0..batches {
        // Cancellation checkpoint between batches: each completed batch
        // ends in a consolidation, so bailing here always leaves exact
        // state.
        if batch > 0 && ctrl.interrupt_cause().is_some() {
            break;
        }
        let start = batch * batch_len;
        let end = ((batch + 1) * batch_len).min(n);
        if start >= end {
            break;
        }
        let snapshot = bm.assignment_snapshot();
        let frozen: &Blockmodel = bm;
        let sampler = BlockNeighborSampler::build(frozen);
        let plan = degree_plan(graph, start, end, exec.chunk_target());
        let decisions: Vec<Option<Block>> =
            exec.map_chunked_resident(&plan, ProposalArena::default, |arena, range, out| {
                evaluate_chunk(
                    graph,
                    frozen,
                    &sampler,
                    &snapshot,
                    |i| (start + i) as Vertex,
                    range,
                    cfg,
                    salt,
                    sweep_idx,
                    arena,
                    out,
                );
            });
        counters.proposals += (end - start) as u64;
        let mut new_assignment = snapshot;
        for (offset, decision) in decisions.into_iter().enumerate() {
            if let Some(to) = decision {
                new_assignment[start + offset] = to;
                counters.accepted += 1;
            }
        }

        // Simulated accounting: the proposal loop is the parallel section;
        // the consolidation charges itself (serial move replay or
        // parallelisable rebuild).
        stats.sim_mcmc.add_parallel(&parallel_costs[start..end]);
        consolidate_sweep(
            graph,
            bm,
            new_assignment,
            cfg,
            &mut ws.arena,
            stats,
            sweep_no,
        )?;
    }
    Ok(counters)
}
