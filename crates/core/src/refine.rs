//! Warm-started incremental refinement over an evolving graph — the core
//! entry point behind `hsbp-serve`.
//!
//! A resident service does not re-run the full agglomerative search after
//! every mutation batch; it keeps the previous partition warm and only
//! re-sweeps the **dirty region** — the vertices a mutation touched plus
//! their one-hop neighbourhood, the only places where the blockmodel's
//! sufficient statistics changed. The resweep is the serial
//! Metropolis-Hastings kernel restricted to that region (immediate
//! `apply_move` updates through the PR 4 arena machinery), run under a
//! [`RunBudget`] with cooperative cancellation so a newly arriving mutation
//! batch can interrupt it between proposal strides without leaving the
//! model in a state no full sweep could produce.
//!
//! The asynchronous-Gibbs tolerance argument of the paper is what licenses
//! this: MCMC over a slightly-stale partition still converges, so warm
//! starts from the pre-mutation assignment lose nothing but the proposals
//! they skip (cf. the delta-exchange discipline of Wanye et al.,
//! arXiv 2305.18663, and SamBaS's partial-refinement argument,
//! arXiv 2108.06651).

use crate::budget::{CancelToken, RunBudget, RunControl, StopCause, VERTEX_CHECK_STRIDE};
use crate::config::SbpConfig;
use crate::error::HsbpError;
use crate::stats::{DriftEvent, RunStats};
use hsbp_blockmodel::{
    audit_blockmodel, evaluate_move_with_mode, mdl, propose::accept_move, propose_block,
    repair_blockmodel, Block, Blockmodel, NeighborCounts, ProposalArena,
};
use hsbp_collections::sample::mix_words;
use hsbp_collections::SplitMix64;
use hsbp_graph::{Graph, Vertex, Weight};

/// Result of one incremental refinement round.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// Refined community of every vertex (labels compacted to
    /// `0..num_blocks`).
    pub assignment: Vec<Block>,
    /// Number of occupied communities after compaction.
    pub num_blocks: usize,
    /// MDL of the refined partition on the (mutated) graph.
    pub mdl: mdl::Mdl,
    /// Dirty-region sweeps performed this round.
    pub sweeps: usize,
    /// Vertices in the expanded dirty region this round actually re-swept.
    pub dirty_vertices: usize,
    /// True when the threshold test fired (false = sweep cap or budget).
    pub converged: bool,
    /// True when the budget or the cancel token stopped the resweep early;
    /// the returned state is still a consistent partition.
    pub truncated: bool,
    /// Instrumentation (sweep counts, proposals, drift events).
    pub stats: RunStats,
}

/// Extend a stale assignment to a graph that may have grown: vertices past
/// `warm.len()` take the plurality block among their already-labelled
/// neighbours (edge-weight weighted), falling back to a fresh singleton
/// label when they have none. Returns the extended assignment and the new
/// label-space size (old labels are preserved, so `>= warm_num_blocks`
/// whenever the graph grew into the fallback).
pub fn extend_assignment(
    graph: &Graph,
    warm: &[Block],
    warm_num_blocks: usize,
) -> (Vec<Block>, usize) {
    let n = graph.num_vertices();
    let mut assignment: Vec<Block> = Vec::with_capacity(n);
    assignment.extend_from_slice(&warm[..warm.len().min(n)]);
    let mut num_blocks = warm_num_blocks.max(1);
    // New vertices are labelled in id order, so later arrivals can inherit
    // from earlier ones inside the same batch.
    let mut votes: Vec<(Block, Weight)> = Vec::new();
    for v in assignment.len()..n {
        votes.clear();
        let tally = |b: Block, w: Weight, votes: &mut Vec<(Block, Weight)>| match votes
            .iter_mut()
            .find(|(vb, _)| *vb == b)
        {
            Some((_, vw)) => *vw += w,
            None => votes.push((b, w)),
        };
        for (t, w) in graph.out_edges(v as Vertex) {
            if (t as usize) < v {
                tally(assignment[t as usize], w, &mut votes);
            }
        }
        for (s, w) in graph.in_edges(v as Vertex) {
            if (s as usize) < v {
                tally(assignment[s as usize], w, &mut votes);
            }
        }
        // Plurality with the lowest block id breaking ties (deterministic).
        let winner = votes
            .iter()
            .copied()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(b, _)| b);
        match winner {
            Some(b) => assignment.push(b),
            None => {
                assignment.push(num_blocks as Block);
                num_blocks += 1;
            }
        }
    }
    (assignment, num_blocks)
}

/// Expand `dirty` to its one-hop neighbourhood: every vertex whose
/// delta-MDL terms a mutation at a dirty vertex can have changed. Returns a
/// sorted, deduplicated vertex list.
pub fn expand_dirty_region(graph: &Graph, dirty: &[Vertex]) -> Vec<Vertex> {
    let n = graph.num_vertices();
    let mut in_region = vec![false; n];
    for &v in dirty {
        if (v as usize) >= n {
            continue;
        }
        in_region[v as usize] = true;
        for &t in graph.out_neighbors(v) {
            in_region[t as usize] = true;
        }
        for &s in graph.in_neighbors(v) {
            in_region[s as usize] = true;
        }
    }
    (0..n as Vertex)
        .filter(|&v| in_region[v as usize])
        .collect()
}

/// One serial MH sweep restricted to `region` (immediate `apply_move`
/// updates, identical kernel to the full Metropolis sweep). Returns false
/// when the control interrupted the sweep part-way.
#[allow(clippy::too_many_arguments)]
fn sweep_region(
    graph: &Graph,
    bm: &mut Blockmodel,
    region: &[Vertex],
    cfg: &SbpConfig,
    salt: u64,
    sweep_idx: u64,
    stats: &mut RunStats,
    ctrl: &RunControl,
    arena: &mut ProposalArena,
) -> bool {
    for (i, &v) in region.iter().enumerate() {
        if (i as u64).is_multiple_of(VERTEX_CHECK_STRIDE)
            && i > 0
            && ctrl.interrupt_cause().is_some()
        {
            return false;
        }
        let mut rng = SplitMix64::for_item(salt, sweep_idx, u64::from(v));
        let from = bm.block_of(v);
        let to = propose_block(graph, bm, bm.assignment(), v, &mut rng);
        stats.proposals += 1;
        if to == from {
            continue;
        }
        NeighborCounts::gather_into(
            graph,
            bm.assignment(),
            v,
            &mut arena.scratch,
            &mut arena.counts,
        );
        let eval =
            evaluate_move_with_mode(bm, from, to, &arena.counts, &mut arena.eval, cfg.math_mode);
        if accept_move(&eval, cfg.beta, &mut rng) {
            bm.apply_move(v, from, to, &arena.counts);
            stats.accepted += 1;
        }
    }
    true
}

/// Compact a label space in place: occupied blocks keep their relative
/// order and are renumbered `0..k`. Returns the occupied count.
fn compact_labels(assignment: &mut [Block], num_blocks: usize) -> usize {
    let mut occupied = vec![false; num_blocks];
    for &b in assignment.iter() {
        occupied[b as usize] = true;
    }
    let mut remap = vec![Block::MAX; num_blocks];
    let mut next: Block = 0;
    for (b, &occ) in occupied.iter().enumerate() {
        if occ {
            remap[b] = next;
            next += 1;
        }
    }
    for b in assignment.iter_mut() {
        *b = remap[*b as usize];
    }
    (next as usize).max(1)
}

/// Warm-started dirty-region refinement: extend `warm` over the (mutated)
/// `graph`, re-sweep the one-hop expansion of `dirty` with the serial MH
/// kernel until the regional MDL improvement stalls, and return the
/// compacted partition.
///
/// Deterministic in `(graph, warm, dirty, cfg)`. The budget and token stop
/// the resweep cooperatively between proposal strides: a truncated outcome
/// still carries a consistent partition (every prefix of a serial sweep
/// is), flagged via [`RefineOutcome::truncated`]. `cfg.audit_cadence`
/// drives the same rebuild-and-compare drift audit as batch runs, with
/// `cfg.strict_audit` turning detected drift into
/// [`HsbpError::StateDrift`]; a final audit always runs before the result
/// is returned so a published snapshot can never carry poisoned state.
///
/// An empty `dirty` region (after clamping to the graph) short-circuits:
/// the warm partition is evaluated and returned unchanged apart from label
/// compaction.
pub fn refine_partition(
    graph: &Graph,
    warm: &[Block],
    warm_num_blocks: usize,
    dirty: &[Vertex],
    cfg: &SbpConfig,
    budget: &RunBudget,
    token: &CancelToken,
) -> Result<RefineOutcome, HsbpError> {
    cfg.validate().map_err(HsbpError::InvalidConfig)?;
    budget.validate().map_err(HsbpError::InvalidConfig)?;
    if warm.len() > graph.num_vertices() {
        return Err(HsbpError::InvalidConfig(format!(
            "warm assignment covers {} vertices but the graph has {}",
            warm.len(),
            graph.num_vertices()
        )));
    }
    if let Some(&bad) = warm.iter().find(|&&b| (b as usize) >= warm_num_blocks) {
        return Err(HsbpError::InvalidConfig(format!(
            "warm label {bad} out of range for {warm_num_blocks} block(s)"
        )));
    }
    let ctrl = RunControl::new(budget, token);
    let mut stats = RunStats::new(cfg);
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(RefineOutcome {
            assignment: Vec::new(),
            num_blocks: 0,
            mdl: mdl::Mdl {
                log_likelihood: 0.0,
                model_complexity: 0.0,
                total: 0.0,
            },
            sweeps: 0,
            dirty_vertices: 0,
            converged: true,
            truncated: false,
            stats,
        });
    }

    let (mut assignment, mut num_blocks) = extend_assignment(graph, warm, warm_num_blocks);
    // Every vertex the extension labelled is dirty by construction.
    let mut seed_dirty: Vec<Vertex> = dirty.to_vec();
    seed_dirty.extend(warm.len() as Vertex..n as Vertex);
    let region = expand_dirty_region(graph, &seed_dirty);

    let mut bm = Blockmodel::from_assignment(graph, assignment, num_blocks);
    let salt = mix_words(&[cfg.seed, 0x5246_494e, warm_num_blocks as u64]); // "RFIN"
    let mut previous = mdl::mdl(&bm, n, graph.total_weight());
    let mut recent_deltas: Vec<f64> = Vec::with_capacity(3);
    let mut arena = ProposalArena::default();
    let mut sweeps = 0;
    let mut converged = region.is_empty();
    let mut truncated = false;

    while !region.is_empty() && sweeps < cfg.max_sweeps {
        if let Some(cause) = ctrl.sweep_stop_cause(stats.mcmc_sweeps) {
            stats.stop_cause = cause;
            truncated = true;
            break;
        }
        let completed = sweep_region(
            graph,
            &mut bm,
            &region,
            cfg,
            salt,
            sweeps as u64,
            &mut stats,
            &ctrl,
            &mut arena,
        );
        if !completed {
            stats.stop_cause = ctrl.interrupt_cause().unwrap_or(StopCause::Cancelled);
            truncated = true;
            break;
        }
        sweeps += 1;
        stats.mcmc_sweeps += 1;

        if cfg.inject_drift_at_sweep == Some(stats.mcmc_sweeps) {
            bm.inject_state_corruption(mix_words(&[cfg.seed, 0x4452_4946, sweeps as u64]));
        }
        if cfg.audit_cadence > 0 && stats.mcmc_sweeps.is_multiple_of(cfg.audit_cadence) {
            audit_round(&mut bm, graph, cfg, &mut stats)?;
        }

        let current = mdl::mdl(&bm, n, graph.total_weight());
        let delta = previous.total - current.total;
        previous = current;
        if recent_deltas.len() == 3 {
            recent_deltas.remove(0);
        }
        recent_deltas.push(delta.abs());
        if recent_deltas.len() == 3 {
            let mean: f64 = recent_deltas.iter().sum::<f64>() / 3.0;
            if mean < cfg.mcmc_threshold * previous.total.abs().max(1.0) {
                converged = true;
                break;
            }
        }
    }

    // Terminal audit: whatever is about to be published must match its own
    // membership vector exactly, even after a truncated resweep.
    stats.audits_run += 1;
    audit_round(&mut bm, graph, cfg, &mut stats)?;

    assignment = bm.assignment().to_vec();
    num_blocks = compact_labels(&mut assignment, bm.num_blocks());
    let final_bm = Blockmodel::from_assignment(graph, assignment.clone(), num_blocks);
    let final_mdl = mdl::mdl(&final_bm, n, graph.total_weight());
    Ok(RefineOutcome {
        assignment,
        num_blocks,
        mdl: final_mdl,
        sweeps,
        dirty_vertices: region.len(),
        converged,
        truncated,
        stats,
    })
}

/// One audit pass in refine context: repair-and-record, or fail in strict
/// mode.
fn audit_round(
    bm: &mut Blockmodel,
    graph: &Graph,
    cfg: &SbpConfig,
    stats: &mut RunStats,
) -> Result<(), HsbpError> {
    if let Some(report) = audit_blockmodel(bm, graph) {
        if cfg.strict_audit {
            return Err(HsbpError::StateDrift {
                sweep: stats.mcmc_sweeps,
                detail: report.summary(),
            });
        }
        repair_blockmodel(bm, graph);
        stats.drift_events.push(DriftEvent {
            total_sweep: stats.mcmc_sweeps,
            phase_index: 0,
            mismatches: report.mismatches,
            mdl_delta: report.mdl_delta,
            repaired: true,
        });
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hsbp_graph::GraphBuilder;

    fn planted(n_per: u32, groups: u32, seed: u64) -> (Graph, Vec<Block>) {
        let n = n_per * groups;
        let mut edges = Vec::new();
        let mut state = seed;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for u in 0..n {
            let gu = u / n_per;
            for _ in 0..6 {
                let v = if rnd() % 100 < 85 {
                    gu * n_per + rnd() % n_per
                } else {
                    rnd() % n
                };
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        let truth: Vec<Block> = (0..n).map(|v| v / n_per).collect();
        (Graph::from_edges(n as usize, &edges), truth)
    }

    #[test]
    fn extend_assignment_votes_with_neighbors() {
        // Vertex 4 joins with edges into block 1's members only.
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (4, 2), (3, 4)]);
        let warm = vec![0, 0, 1, 1];
        let (ext, k) = extend_assignment(&g, &warm, 2);
        assert_eq!(ext, vec![0, 0, 1, 1, 1]);
        assert_eq!(k, 2);
    }

    #[test]
    fn extend_assignment_isolated_vertex_gets_fresh_block() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let warm = vec![0, 0, 1];
        let (ext, k) = extend_assignment(&g, &warm, 2);
        assert_eq!(ext[3], 2);
        assert_eq!(k, 3);
    }

    #[test]
    fn dirty_region_expands_one_hop() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let region = expand_dirty_region(&g, &[1]);
        assert_eq!(region, vec![0, 1, 2]);
        // Out-of-range dirty ids are ignored, not a panic.
        assert!(expand_dirty_region(&g, &[99]).is_empty());
    }

    #[test]
    fn refine_improves_perturbed_partition() {
        let (g, truth) = planted(30, 3, 7);
        // Perturb a handful of labels, mark them dirty.
        let mut warm = truth.clone();
        let dirty: Vec<Vertex> = (0..10).map(|i| i * 7).collect();
        for &v in &dirty {
            warm[v as usize] = (warm[v as usize] + 1) % 3;
        }
        let before = mdl::mdl(
            &Blockmodel::from_assignment(&g, warm.clone(), 3),
            g.num_vertices(),
            g.total_weight(),
        )
        .total;
        let cfg = SbpConfig::new(crate::Variant::Metropolis, 3);
        let out = refine_partition(
            &g,
            &warm,
            3,
            &dirty,
            &cfg,
            &RunBudget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap();
        assert!(out.mdl.total < before, "{} !< {before}", out.mdl.total);
        assert!(out.dirty_vertices > dirty.len());
        assert!(!out.truncated);
        Blockmodel::from_assignment(&g, out.assignment, out.num_blocks)
            .check_consistency(&g)
            .unwrap();
    }

    #[test]
    fn refine_is_deterministic() {
        let (g, truth) = planted(20, 3, 17);
        let mut warm = truth;
        warm[5] = 0;
        warm[41] = 1;
        let cfg = SbpConfig::new(crate::Variant::Metropolis, 9);
        let run = || {
            refine_partition(
                &g,
                &warm,
                3,
                &[5, 41],
                &cfg,
                &RunBudget::unlimited(),
                &CancelToken::new(),
            )
            .unwrap()
            .assignment
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_dirty_region_is_identity_modulo_compaction() {
        let (g, truth) = planted(15, 2, 27);
        let cfg = SbpConfig::default();
        let out = refine_partition(
            &g,
            &truth,
            2,
            &[],
            &cfg,
            &RunBudget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(out.assignment, truth);
        assert_eq!(out.sweeps, 0);
        assert!(out.converged);
    }

    #[test]
    fn growing_graph_labels_new_vertices() {
        let (g, truth) = planted(15, 2, 37);
        let n = g.num_vertices();
        // Grow by two vertices wired into group 0.
        let mut b = GraphBuilder::new(n + 2);
        for (u, v, w) in g.edges() {
            b.add_edge_weighted(u, v, w);
        }
        b.add_edge(n as Vertex, 0);
        b.add_edge(1, n as Vertex);
        b.add_edge((n + 1) as Vertex, n as Vertex);
        let g2 = b.build();
        let cfg = SbpConfig::default();
        let out = refine_partition(
            &g2,
            &truth,
            2,
            &[],
            &cfg,
            &RunBudget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(out.assignment.len(), n + 2);
        assert!(out.num_blocks >= 2);
        Blockmodel::from_assignment(&g2, out.assignment, out.num_blocks)
            .check_consistency(&g2)
            .unwrap();
    }

    #[test]
    fn cancelled_refine_returns_consistent_truncated_state() {
        let (g, truth) = planted(25, 3, 47);
        let mut warm = truth;
        for label in warm.iter_mut().take(30) {
            *label = (*label + 1) % 3;
        }
        let dirty: Vec<Vertex> = (0..30).collect();
        let cfg = SbpConfig::default();
        let token = CancelToken::new();
        token.cancel();
        let out =
            refine_partition(&g, &warm, 3, &dirty, &cfg, &RunBudget::unlimited(), &token).unwrap();
        assert!(out.truncated);
        assert_eq!(out.stats.stop_cause, StopCause::Cancelled);
        Blockmodel::from_assignment(&g, out.assignment, out.num_blocks)
            .check_consistency(&g)
            .unwrap();
    }

    #[test]
    fn sweep_budget_truncates() {
        let (g, truth) = planted(25, 3, 57);
        let mut warm = truth;
        for label in warm.iter_mut().take(40) {
            *label = (*label + 1) % 3;
        }
        let dirty: Vec<Vertex> = (0..40).collect();
        let cfg = SbpConfig {
            mcmc_threshold: 0.0,
            ..SbpConfig::default()
        };
        let budget = RunBudget::unlimited().with_max_total_sweeps(1);
        let out =
            refine_partition(&g, &warm, 3, &dirty, &cfg, &budget, &CancelToken::new()).unwrap();
        assert_eq!(out.sweeps, 1);
        assert!(out.truncated);
        assert_eq!(out.stats.stop_cause, StopCause::SweepBudgetExhausted);
    }

    #[test]
    fn strict_audit_catches_injected_drift() {
        let (g, truth) = planted(20, 2, 67);
        let mut warm = truth;
        for label in warm.iter_mut().take(20) {
            *label = (*label + 1) % 2;
        }
        let dirty: Vec<Vertex> = (0..20).collect();
        let cfg = SbpConfig {
            inject_drift_at_sweep: Some(1),
            audit_cadence: 1,
            strict_audit: true,
            mcmc_threshold: 0.0,
            ..SbpConfig::default()
        };
        let err = refine_partition(
            &g,
            &warm,
            2,
            &dirty,
            &cfg,
            &RunBudget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap_err();
        assert!(matches!(err, HsbpError::StateDrift { .. }));
        // Lenient mode repairs instead and records the event.
        let lenient = SbpConfig {
            strict_audit: false,
            ..cfg
        };
        let out = refine_partition(
            &g,
            &warm,
            2,
            &dirty,
            &lenient,
            &RunBudget::unlimited(),
            &CancelToken::new(),
        )
        .unwrap();
        assert!(!out.stats.drift_events.is_empty());
        Blockmodel::from_assignment(&g, out.assignment, out.num_blocks)
            .check_consistency(&g)
            .unwrap();
    }

    #[test]
    fn invalid_warm_inputs_rejected() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let cfg = SbpConfig::default();
        let long = refine_partition(
            &g,
            &[0, 0, 0, 0],
            1,
            &[],
            &cfg,
            &RunBudget::unlimited(),
            &CancelToken::new(),
        );
        assert!(matches!(long, Err(HsbpError::InvalidConfig(_))));
        let bad_label = refine_partition(
            &g,
            &[0, 5, 0],
            2,
            &[],
            &cfg,
            &RunBudget::unlimited(),
            &CancelToken::new(),
        );
        assert!(matches!(bad_label, Err(HsbpError::InvalidConfig(_))));
    }
}
