//! Quick driver smoke check (temporary development harness).

use hsbp_core::{run_sbp, SbpConfig, Variant};
use hsbp_generator::{generate, DcsbmConfig};
use hsbp_metrics::nmi;

fn main() {
    let data = generate(DcsbmConfig {
        num_vertices: 1000,
        num_communities: 10,
        target_num_edges: 10_000,
        within_between_ratio: 3.0,
        seed: 7,
        ..Default::default()
    });
    for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
        let start = std::time::Instant::now();
        let result = run_sbp(&data.graph, &SbpConfig::new(variant, 1));
        let score = nmi(&data.ground_truth, &result.assignment);
        println!(
            "{:8} blocks={:3} nmi={:.3} mdl_norm={:.4} sweeps={:4} outer={:2} wall={:?} sim1={:.0} sim128={:.0}",
            variant.name(),
            result.num_blocks,
            score,
            result.normalized_mdl,
            result.stats.mcmc_sweeps,
            result.stats.outer_iterations,
            start.elapsed(),
            result.stats.sim_mcmc_time(1).unwrap(),
            result.stats.sim_mcmc_time(128).unwrap(),
        );
    }
}
