//! Synthetic graph generation for hsbp.
//!
//! The paper generates its synthetic evaluation graphs (Table 1) with
//! `graph-tool`'s DCSBM sampler, varying the degree distribution (min/max
//! degree, power-law exponent) and the within/between community edge ratio
//! `r`. That library is not available here, so [`dcsbm`] reimplements the
//! sampler from scratch: a degree-corrected planted-partition model with
//! power-law degree propensities and power-law community sizes — the same
//! family, with exactly the knobs the paper varies.
//!
//! [`catalog`] holds the dataset catalogs:
//!
//! * [`catalog::table1`] — the 24 synthetic graphs S1–S24 with the paper's
//!   exact target sizes, shrinkable by a scale factor,
//! * [`catalog::table2`] — deterministic *surrogates* for the 14 SuiteSparse
//!   real-world datasets (which cannot be downloaded in this environment):
//!   per-domain generator configurations matched to each dataset's V, E and
//!   degree character, again shrinkable.

pub mod catalog;
pub mod dcsbm;

pub use catalog::{table1, table1_reported, table2, table2_by_id, SyntheticSpec};
pub use dcsbm::{generate, DcsbmConfig, GeneratedGraph};
