//! From-scratch degree-corrected SBM sampler (replaces `graph-tool`).
//!
//! Generation pipeline, all driven by a single seed:
//!
//! 1. **Community sizes** — proportional to `(k+1)^(−community_size_exponent)`
//!    (exponent 0 ⇒ equal sizes), every community non-empty.
//! 2. **Degree propensities** — each vertex draws an out- and an
//!    in-propensity from a truncated power law on
//!    `[min_degree, max_degree]` with exponent `degree_exponent`.
//! 3. **Edge placement** — `target_num_edges` edges are placed one at a
//!    time: source `u ∝ θ_out`, then with probability `r/(r+1)` the target
//!    is drawn inside `u`'s community (`∝ θ_in` within it), otherwise from a
//!    different community (`∝` community in-mass, then `θ_in` inside).
//!    Self-loops and duplicate edges are rejected with bounded retries.
//!
//! The expected within/between edge ratio is therefore exactly `r`, and the
//! degree distribution follows the configured power law — the two levers the
//! paper's evaluation varies. As in `graph-tool` (paper §4.1), the realised
//! graph only approximates the requested parameters.

use hsbp_collections::fastmath;
use hsbp_collections::{AliasTable, FxHashSet, SplitMix64};
use hsbp_graph::{Graph, GraphBuilder, Vertex};

/// Parameters of the DCSBM sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct DcsbmConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Number of directed edges to place.
    pub target_num_edges: usize,
    /// Within/between community edge ratio `r` (paper Table 1). An edge is
    /// within-community with probability `r / (r + 1)`.
    pub within_between_ratio: f64,
    /// Power-law exponent of the degree propensity distribution (≥ 1).
    pub degree_exponent: f64,
    /// Minimum degree propensity.
    pub min_degree: u64,
    /// Maximum degree propensity.
    pub max_degree: u64,
    /// Exponent of the community-size power law (0 ⇒ equal sizes; larger ⇒
    /// more skew).
    pub community_size_exponent: f64,
    /// RNG seed; same config + seed ⇒ identical graph.
    pub seed: u64,
}

impl Default for DcsbmConfig {
    fn default() -> Self {
        Self {
            num_vertices: 1000,
            num_communities: 8,
            target_num_edges: 8000,
            within_between_ratio: 2.5,
            degree_exponent: 2.5,
            min_degree: 2,
            max_degree: 100,
            community_size_exponent: 0.5,
            seed: 0,
        }
    }
}

/// A generated graph with its planted ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedGraph {
    /// The sampled graph.
    pub graph: Graph,
    /// Planted community of every vertex.
    pub ground_truth: Vec<u32>,
    /// The configuration that produced it.
    pub config: DcsbmConfig,
}

/// Community sizes proportional to `(k+1)^(−exponent)`, all non-empty.
fn community_sizes(num_vertices: usize, num_communities: usize, exponent: f64) -> Vec<usize> {
    assert!(num_communities >= 1 && num_communities <= num_vertices);
    let weights: Vec<f64> = (0..num_communities)
        .map(|k| ((k + 1) as f64).powf(-exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * num_vertices as f64).floor() as usize)
        .collect();
    // Guarantee non-empty communities, then distribute the remainder to the
    // largest communities (round-robin from the front keeps skew).
    for s in sizes.iter_mut() {
        if *s == 0 {
            *s = 1;
        }
    }
    let mut assigned: usize = sizes.iter().sum();
    while assigned > num_vertices {
        // Shrink the largest community above 1.
        let (idx, _) = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .expect("non-empty sizes");
        assert!(
            sizes[idx] > 1,
            "cannot fit {num_communities} communities in {num_vertices}"
        );
        sizes[idx] -= 1;
        assigned -= 1;
    }
    let mut k = 0;
    while assigned < num_vertices {
        sizes[k % num_communities] += 1;
        assigned += 1;
        k += 1;
    }
    sizes
}

/// Truncated power-law sample on `[min_d, max_d]` with density `x^(−γ)`
/// (inverse-CDF of the continuous law, rounded).
fn sample_power_law(rng: &mut SplitMix64, min_d: u64, max_d: u64, gamma: f64) -> f64 {
    let (a, b) = (min_d as f64, max_d as f64);
    if max_d <= min_d {
        return a;
    }
    let u = rng.next_f64();
    if (gamma - 1.0).abs() < 1e-9 {
        // γ = 1: log-uniform.
        let (ln_a, ln_b) = (fastmath::ln(a), fastmath::ln(b));
        (ln_a + u * (ln_b - ln_a)).exp()
    } else {
        let e = 1.0 - gamma;
        (a.powf(e) + u * (b.powf(e) - a.powf(e))).powf(1.0 / e)
    }
}

/// Run the sampler.
///
/// # Panics
/// Panics on inconsistent configs (no vertices, more communities than
/// vertices, zero/negative ratio with a single community, …).
pub fn generate(config: DcsbmConfig) -> GeneratedGraph {
    let n = config.num_vertices;
    let c = config.num_communities;
    assert!(n > 0, "num_vertices must be positive");
    assert!(
        c >= 1 && c <= n,
        "need 1 <= num_communities <= num_vertices"
    );
    assert!(
        config.within_between_ratio >= 0.0,
        "ratio r must be non-negative"
    );
    assert!(config.min_degree >= 1 && config.max_degree >= config.min_degree);
    assert!(
        config.degree_exponent >= 1.0,
        "degree exponent must be >= 1"
    );

    let mut rng = SplitMix64::new(config.seed);

    // 1. Community sizes and a shuffled vertex -> community map.
    let sizes = community_sizes(n, c, config.community_size_exponent);
    let mut ground_truth: Vec<u32> = Vec::with_capacity(n);
    for (k, &size) in sizes.iter().enumerate() {
        ground_truth.extend(std::iter::repeat_n(k as u32, size));
    }
    // Fisher-Yates so vertex ids carry no community signal.
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        ground_truth.swap(i, j);
    }

    // 2. Degree propensities.
    let theta_out: Vec<f64> = (0..n)
        .map(|_| {
            sample_power_law(
                &mut rng,
                config.min_degree,
                config.max_degree,
                config.degree_exponent,
            )
        })
        .collect();
    let theta_in: Vec<f64> = (0..n)
        .map(|_| {
            sample_power_law(
                &mut rng,
                config.min_degree,
                config.max_degree,
                config.degree_exponent,
            )
        })
        .collect();

    // Per-community member lists and in-propensity alias tables.
    let mut members: Vec<Vec<Vertex>> = vec![Vec::new(); c];
    for (v, &k) in ground_truth.iter().enumerate() {
        members[k as usize].push(v as Vertex);
    }
    let source_table = AliasTable::new(&theta_out).expect("positive out-propensities");
    let in_tables: Vec<AliasTable> = members
        .iter()
        .map(|m| {
            let w: Vec<f64> = m.iter().map(|&v| theta_in[v as usize]).collect();
            AliasTable::new(&w).expect("non-empty community")
        })
        .collect();
    // Community in-mass (for choosing the foreign community of a
    // between-community edge).
    let community_mass: Vec<f64> = members
        .iter()
        .map(|m| m.iter().map(|&v| theta_in[v as usize]).sum())
        .collect();
    let community_table = AliasTable::new(&community_mass).expect("positive community mass");

    // 3. Edge placement.
    let p_within = if c == 1 {
        1.0
    } else {
        config.within_between_ratio / (config.within_between_ratio + 1.0)
    };
    let mut builder = GraphBuilder::with_capacity(n, config.target_num_edges);
    let mut seen: FxHashSet<(Vertex, Vertex)> = FxHashSet::default();
    seen.reserve(config.target_num_edges);
    let max_retries = 30;
    let mut placed = 0usize;
    let mut attempts_left = config
        .target_num_edges
        .saturating_mul(max_retries)
        .max(1000);
    while placed < config.target_num_edges && attempts_left > 0 {
        attempts_left -= 1;
        let u = source_table.sample(&mut rng) as Vertex;
        let cu = ground_truth[u as usize] as usize;
        let v = if rng.next_f64() < p_within {
            members[cu][in_tables[cu].sample(&mut rng)]
        } else {
            // Foreign community ∝ in-mass (reject own community).
            let mut cv = community_table.sample(&mut rng);
            let mut guard = 0;
            while cv == cu && guard < 64 {
                cv = community_table.sample(&mut rng);
                guard += 1;
            }
            if cv == cu {
                // A single community dominates the mass; fall back to the
                // next community round-robin.
                cv = (cu + 1) % c;
            }
            members[cv][in_tables[cv].sample(&mut rng)]
        };
        if u == v || !seen.insert((u, v)) {
            continue; // no self-loops, no duplicate edges
        }
        builder.add_edge(u, v);
        placed += 1;
    }

    GeneratedGraph {
        graph: builder.build(),
        ground_truth,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsbp_graph::stats::{within_between_ratio, GraphStats};

    fn small_config() -> DcsbmConfig {
        DcsbmConfig {
            num_vertices: 500,
            num_communities: 5,
            target_num_edges: 4000,
            within_between_ratio: 3.0,
            degree_exponent: 2.5,
            min_degree: 2,
            max_degree: 50,
            community_size_exponent: 0.5,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate(small_config());
        let b = generate(small_config());
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.ground_truth, b.ground_truth);
        let mut cfg = small_config();
        cfg.seed = 43;
        let c = generate(cfg);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn hits_target_sizes() {
        let g = generate(small_config());
        assert_eq!(g.graph.num_vertices(), 500);
        // All edges placed (dense enough that retries cannot exhaust).
        assert_eq!(g.graph.num_edges(), 4000);
        assert_eq!(g.graph.total_weight(), 4000); // no duplicates
        assert_eq!(g.ground_truth.len(), 500);
    }

    #[test]
    fn no_self_loops() {
        let g = generate(small_config());
        let stats = GraphStats::compute(&g.graph);
        assert_eq!(stats.self_loops, 0);
    }

    #[test]
    fn all_communities_populated() {
        let g = generate(small_config());
        let mut counts = vec![0usize; 5];
        for &k in &g.ground_truth {
            counts[k as usize] += 1;
        }
        assert!(counts.iter().all(|&s| s > 0), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 500);
    }

    #[test]
    fn realised_ratio_tracks_r() {
        let g = generate(small_config());
        let r = within_between_ratio(&g.graph, &g.ground_truth);
        // Expected r = 3; sampling noise plus rejection effects allow slack.
        assert!((1.8..5.0).contains(&r), "realised r = {r}");
    }

    #[test]
    fn weak_structure_when_r_small() {
        let mut cfg = small_config();
        cfg.within_between_ratio = 0.2;
        let g = generate(cfg);
        let r = within_between_ratio(&g.graph, &g.ground_truth);
        assert!(r < 0.6, "realised r = {r}");
    }

    #[test]
    fn single_community_all_within() {
        let mut cfg = small_config();
        cfg.num_communities = 1;
        cfg.community_size_exponent = 0.0;
        let g = generate(cfg);
        assert!(g.ground_truth.iter().all(|&k| k == 0));
        assert!(within_between_ratio(&g.graph, &g.ground_truth).is_infinite());
    }

    #[test]
    fn degree_bounds_roughly_respected() {
        let cfg = DcsbmConfig {
            num_vertices: 2000,
            target_num_edges: 10000,
            min_degree: 5,
            max_degree: 20,
            degree_exponent: 2.0,
            ..small_config()
        };
        let g = generate(cfg);
        let stats = GraphStats::compute(&g.graph);
        // Propensities bounded by 20 ⇒ realised max total degree stays far
        // below an unbounded power law's hubs.
        assert!(stats.max_degree < 100, "max degree {}", stats.max_degree);
    }

    #[test]
    fn community_sizes_skewed_and_exact() {
        let sizes = community_sizes(1000, 10, 1.0);
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes[0] > sizes[9], "{sizes:?}");
        let flat = community_sizes(1000, 10, 0.0);
        assert_eq!(flat.iter().sum::<usize>(), 1000);
        assert_eq!(flat[0], 100);
    }

    #[test]
    fn community_sizes_tiny_graph() {
        let sizes = community_sizes(3, 3, 2.0);
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn power_law_sample_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = sample_power_law(&mut rng, 3, 30, 2.5);
            assert!((3.0..=30.0).contains(&x), "{x}");
        }
        // Degenerate range.
        assert_eq!(sample_power_law(&mut rng, 5, 5, 2.0), 5.0);
    }

    #[test]
    fn power_law_gamma_one_log_uniform() {
        let mut rng = SplitMix64::new(9);
        let samples: Vec<f64> = (0..5000)
            .map(|_| sample_power_law(&mut rng, 1, 100, 1.0))
            .collect();
        assert!(samples.iter().all(|&x| (1.0..=100.0).contains(&x)));
        // Median of log-uniform on [1, 100] is 10.
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[2500];
        assert!((5.0..20.0).contains(&median), "median {median}");
    }

    #[test]
    #[should_panic]
    fn rejects_more_communities_than_vertices() {
        generate(DcsbmConfig {
            num_vertices: 3,
            num_communities: 5,
            ..small_config()
        });
    }
}
