//! Dataset catalogs: the paper's Table 1 (synthetic) and Table 2
//! (real-world surrogates).
//!
//! Every entry records the paper's exact vertex/edge counts and produces a
//! [`DcsbmConfig`] at a chosen scale: `scale = 1.0` targets the paper's
//! sizes; smaller scales shrink V and E proportionally (preserving the mean
//! degree, which is what drives SBP's per-sweep cost and the strength of the
//! degree-correction).

use crate::dcsbm::DcsbmConfig;

/// One catalog entry: a dataset identity plus its generator parameters.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Dataset id ("S1".."S24" or the real-world dataset name).
    pub id: &'static str,
    /// Vertex count reported in the paper.
    pub paper_vertices: usize,
    /// Edge count reported in the paper.
    pub paper_edges: usize,
    /// Within/between ratio `r` the generator targets.
    pub ratio: f64,
    /// Degree power-law exponent.
    pub degree_exponent: f64,
    /// Community-size skew exponent.
    pub community_size_exponent: f64,
    /// Minimum degree propensity.
    pub min_degree: u64,
    /// Maximum degree propensity at scale 1 (scaled down with the graph).
    pub max_degree: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Multiplier applied to the requested scale (≤ 1 overall). Sparse
    /// graphs shrink less aggressively than dense ones: at small sizes they
    /// drop below the SBM detectability threshold that the paper's full
    /// 200 k-vertex versions comfortably clear.
    pub scale_boost: f64,
    /// Human-readable provenance (domain for surrogates, group for Table 1).
    pub note: &'static str,
}

impl SyntheticSpec {
    /// Generator configuration at `scale ∈ (0, 1]`.
    ///
    /// V and E shrink proportionally (mean degree preserved); the number of
    /// planted communities follows `≈ √V / 2` (communities shrink with the
    /// graph, as in the graph-challenge generator the paper builds on); the
    /// max degree shrinks like `V` but never below `4·min_degree`.
    pub fn config(&self, scale: f64) -> DcsbmConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let scale = (scale * self.scale_boost).min(1.0);
        let num_vertices = ((self.paper_vertices as f64 * scale).round() as usize).max(64);
        let target_num_edges = ((self.paper_edges as f64 * scale).round() as usize).max(64);
        let num_communities =
            (((num_vertices as f64).sqrt() / 2.0).round() as usize).clamp(2, num_vertices / 4);
        // Hub degrees shrink like √scale, not linearly: a 1/128-scale graph
        // still needs hubs for the degree correction (and H-SBP's V*) to
        // mean anything.
        let max_degree =
            (((self.max_degree as f64) * scale.sqrt()).round() as u64).max(4 * self.min_degree);
        DcsbmConfig {
            num_vertices,
            num_communities,
            target_num_edges,
            within_between_ratio: self.ratio,
            degree_exponent: self.degree_exponent,
            min_degree: self.min_degree,
            max_degree,
            community_size_exponent: self.community_size_exponent,
            seed: self.seed,
        }
    }
}

macro_rules! spec {
    ($id:literal, $v:literal, $e:literal, r=$r:literal, gamma=$g:literal,
     size_exp=$se:literal, min=$min:literal, max=$max:literal, seed=$seed:literal,
     boost=$boost:literal, $note:literal) => {
        SyntheticSpec {
            id: $id,
            paper_vertices: $v,
            paper_edges: $e,
            ratio: $r,
            degree_exponent: $g,
            community_size_exponent: $se,
            min_degree: $min,
            max_degree: $max,
            seed: $seed,
            scale_boost: $boost,
            note: $note,
        }
    };
}

/// The 24 synthetic graphs of Table 1.
///
/// The paper's exact per-graph generator inputs are not published (only the
/// realised V/E and the statement that min/max degree, the power-law
/// exponent and `r` were varied). The reconstruction: six groups of four —
/// three sparse groups (V ≈ 200 k, E ≈ 320–450 k) and three dense groups
/// (V = 225 999, E ≈ 4.5–6.3 M) — with the degree exponent varying across
/// group pairs and, inside each group, the low-E members using a lower `r`
/// than the high-E members. The third sparse group (S17–S20) gets the
/// weakest structure; the paper redacts six sparse graphs on which all three
/// algorithms fail, consistent with "low r and low density".
pub fn table1() -> Vec<SyntheticSpec> {
    vec![
        // Group 1: sparse, gamma 2.1.
        spec!(
            "S1",
            198101,
            321071,
            r = 1.0,
            gamma = 2.1,
            size_exp = 0.5,
            min = 1,
            max = 1000,
            seed = 101,
            boost = 4.0,
            "sparse g1 low-r"
        ),
        spec!(
            "S2",
            199643,
            425466,
            r = 4.0,
            gamma = 2.1,
            size_exp = 0.5,
            min = 1,
            max = 1000,
            seed = 102,
            boost = 4.0,
            "sparse g1 high-r"
        ),
        spec!(
            "S3",
            197894,
            322196,
            r = 1.0,
            gamma = 2.1,
            size_exp = 0.5,
            min = 1,
            max = 1000,
            seed = 103,
            boost = 4.0,
            "sparse g1 low-r"
        ),
        spec!(
            "S4",
            199219,
            436203,
            r = 4.0,
            gamma = 2.1,
            size_exp = 0.5,
            min = 1,
            max = 1000,
            seed = 104,
            boost = 4.0,
            "sparse g1 high-r"
        ),
        // Group 2: dense, gamma 2.1.
        spec!(
            "S5",
            225999,
            4463267,
            r = 1.5,
            gamma = 2.1,
            size_exp = 0.5,
            min = 5,
            max = 4000,
            seed = 105,
            boost = 1.0,
            "dense g2 low-r"
        ),
        spec!(
            "S6",
            225999,
            5864094,
            r = 2.5,
            gamma = 2.1,
            size_exp = 0.5,
            min = 5,
            max = 4000,
            seed = 106,
            boost = 1.0,
            "dense g2 high-r"
        ),
        spec!(
            "S7",
            225999,
            4536499,
            r = 1.5,
            gamma = 2.1,
            size_exp = 0.5,
            min = 5,
            max = 4000,
            seed = 107,
            boost = 1.0,
            "dense g2 low-r"
        ),
        spec!(
            "S8",
            225999,
            6327321,
            r = 2.5,
            gamma = 2.1,
            size_exp = 0.5,
            min = 5,
            max = 4000,
            seed = 108,
            boost = 1.0,
            "dense g2 high-r"
        ),
        // Group 3: sparse, gamma 2.5.
        spec!(
            "S9",
            197552,
            321509,
            r = 2.0,
            gamma = 2.5,
            size_exp = 0.5,
            min = 1,
            max = 600,
            seed = 109,
            boost = 4.0,
            "sparse g3 low-r"
        ),
        spec!(
            "S10",
            199564,
            425382,
            r = 3.5,
            gamma = 2.5,
            size_exp = 0.5,
            min = 1,
            max = 600,
            seed = 110,
            boost = 4.0,
            "sparse g3 high-r"
        ),
        spec!(
            "S11",
            196287,
            323076,
            r = 2.0,
            gamma = 2.5,
            size_exp = 0.5,
            min = 1,
            max = 600,
            seed = 111,
            boost = 4.0,
            "sparse g3 low-r"
        ),
        spec!(
            "S12",
            199564,
            426813,
            r = 3.5,
            gamma = 2.5,
            size_exp = 0.5,
            min = 1,
            max = 600,
            seed = 112,
            boost = 4.0,
            "sparse g3 high-r"
        ),
        // Group 4: dense, gamma 2.5.
        spec!(
            "S13",
            225999,
            4502604,
            r = 1.5,
            gamma = 2.5,
            size_exp = 0.5,
            min = 5,
            max = 2500,
            seed = 113,
            boost = 1.0,
            "dense g4 low-r"
        ),
        spec!(
            "S14",
            225999,
            5891353,
            r = 2.5,
            gamma = 2.5,
            size_exp = 0.5,
            min = 5,
            max = 2500,
            seed = 114,
            boost = 1.0,
            "dense g4 high-r"
        ),
        spec!(
            "S15",
            225999,
            4495263,
            r = 1.5,
            gamma = 2.5,
            size_exp = 0.5,
            min = 5,
            max = 2500,
            seed = 115,
            boost = 1.0,
            "dense g4 low-r"
        ),
        spec!(
            "S16",
            225999,
            6277133,
            r = 2.5,
            gamma = 2.5,
            size_exp = 0.5,
            min = 5,
            max = 2500,
            seed = 116,
            boost = 1.0,
            "dense g4 high-r"
        ),
        // Group 5: sparse, gamma 2.9, weakest structure (paper redacts the
        // sparse graphs on which every algorithm fails).
        spec!(
            "S17",
            199285,
            322338,
            r = 0.4,
            gamma = 2.9,
            size_exp = 0.5,
            min = 1,
            max = 300,
            seed = 117,
            boost = 4.0,
            "sparse g5 low-r"
        ),
        spec!(
            "S18",
            201169,
            427949,
            r = 0.6,
            gamma = 2.9,
            size_exp = 0.5,
            min = 1,
            max = 300,
            seed = 118,
            boost = 4.0,
            "sparse g5 high-r"
        ),
        spec!(
            "S19",
            198875,
            322236,
            r = 0.4,
            gamma = 2.9,
            size_exp = 0.5,
            min = 1,
            max = 300,
            seed = 119,
            boost = 4.0,
            "sparse g5 low-r"
        ),
        spec!(
            "S20",
            201506,
            447244,
            r = 0.6,
            gamma = 2.9,
            size_exp = 0.5,
            min = 1,
            max = 300,
            seed = 120,
            boost = 4.0,
            "sparse g5 high-r"
        ),
        // Group 6: dense, gamma 2.9.
        spec!(
            "S21",
            225999,
            4481133,
            r = 1.2,
            gamma = 2.9,
            size_exp = 0.5,
            min = 5,
            max = 1500,
            seed = 121,
            boost = 1.0,
            "dense g6 low-r"
        ),
        spec!(
            "S22",
            225999,
            5896200,
            r = 2.2,
            gamma = 2.9,
            size_exp = 0.5,
            min = 5,
            max = 1500,
            seed = 122,
            boost = 1.0,
            "dense g6 high-r"
        ),
        spec!(
            "S23",
            225999,
            4523706,
            r = 1.2,
            gamma = 2.9,
            size_exp = 0.5,
            min = 5,
            max = 1500,
            seed = 123,
            boost = 1.0,
            "dense g6 low-r"
        ),
        spec!(
            "S24",
            225999,
            6247681,
            r = 2.2,
            gamma = 2.9,
            size_exp = 0.5,
            min = 5,
            max = 1500,
            seed = 124,
            boost = 1.0,
            "dense g6 high-r"
        ),
    ]
}

/// The graphs of Table 1 that survive the paper's redaction (§5: six sparse
/// graphs on which all three algorithms fail are dropped, leaving 18).
pub fn table1_reported() -> Vec<SyntheticSpec> {
    const REPORTED: [&str; 18] = [
        "S2", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12", "S13", "S14", "S15", "S16",
        "S21", "S22", "S23", "S24",
    ];
    table1()
        .into_iter()
        .filter(|s| REPORTED.contains(&s.id))
        .collect()
}

/// Surrogates for the 14 SuiteSparse real-world graphs of Table 2.
///
/// The real datasets cannot be downloaded in this offline environment, so
/// each is replaced by a DCSBM surrogate whose V, E (at scale 1) match the
/// paper's table and whose degree exponent, community strength `r` and
/// community-size skew are chosen per domain: web graphs are hub-heavy with
/// strong communities; social graphs are hub-heavy with moderate
/// communities; `p2p-Gnutella31` is engineered near-degree-regular with very
/// weak structure (the paper finds no algorithm converges on it,
/// `MDL_norm > 1`); `barth5` is a near-regular finite-element mesh.
pub fn table2() -> Vec<SyntheticSpec> {
    vec![
        spec!(
            "rajat01",
            6847,
            43262,
            r = 2.0,
            gamma = 2.5,
            size_exp = 0.5,
            min = 2,
            max = 300,
            seed = 201,
            boost = 32.0,
            "circuit simulation"
        ),
        spec!(
            "wiki-Vote",
            7115,
            103689,
            r = 1.2,
            gamma = 2.1,
            size_exp = 0.6,
            min = 1,
            max = 900,
            seed = 202,
            boost = 32.0,
            "social (votes)"
        ),
        spec!(
            "barth5",
            15622,
            61498,
            r = 4.0,
            gamma = 6.0,
            size_exp = 0.2,
            min = 3,
            max = 10,
            seed = 203,
            boost = 16.0,
            "finite-element mesh"
        ),
        spec!(
            "cit-HepTh",
            27770,
            352807,
            r = 1.5,
            gamma = 2.6,
            size_exp = 0.4,
            min = 1,
            max = 1200,
            seed = 204,
            boost = 8.0,
            "citation"
        ),
        spec!(
            "p2p-Gnutella31",
            62586,
            147892,
            r = 0.15,
            gamma = 4.0,
            size_exp = 0.2,
            min = 1,
            max = 60,
            seed = 205,
            boost = 4.0,
            "p2p overlay (no community structure)"
        ),
        spec!(
            "soc-Epinions1",
            75879,
            508837,
            r = 1.2,
            gamma = 2.2,
            size_exp = 0.6,
            min = 1,
            max = 2500,
            seed = 206,
            boost = 4.0,
            "social (trust)"
        ),
        spec!(
            "soc-Slashdot0902",
            82168,
            948464,
            r = 1.2,
            gamma = 2.2,
            size_exp = 0.6,
            min = 1,
            max = 3000,
            seed = 207,
            boost = 4.0,
            "social"
        ),
        spec!(
            "cnr-2000",
            325557,
            3216152,
            r = 3.0,
            gamma = 2.0,
            size_exp = 0.8,
            min = 1,
            max = 10000,
            seed = 208,
            boost = 1.0,
            "web crawl"
        ),
        spec!(
            "amazon0505",
            410236,
            3356824,
            r = 2.5,
            gamma = 2.8,
            size_exp = 0.4,
            min = 2,
            max = 400,
            seed = 209,
            boost = 1.0,
            "co-purchasing"
        ),
        spec!(
            "higgs-twitter",
            456626,
            14855842,
            r = 1.2,
            gamma = 2.1,
            size_exp = 0.7,
            min = 1,
            max = 20000,
            seed = 210,
            boost = 1.0,
            "social (retweets)"
        ),
        spec!(
            "Stanford-Berkeley",
            683446,
            7583376,
            r = 3.0,
            gamma = 2.0,
            size_exp = 0.8,
            min = 1,
            max = 15000,
            seed = 211,
            boost = 1.0,
            "web"
        ),
        spec!(
            "web-BerkStan",
            685230,
            7600595,
            r = 3.0,
            gamma = 2.0,
            size_exp = 0.8,
            min = 1,
            max = 15000,
            seed = 212,
            boost = 1.0,
            "web"
        ),
        spec!(
            "amazon-2008",
            735323,
            5158388,
            r = 2.5,
            gamma = 2.8,
            size_exp = 0.4,
            min = 2,
            max = 400,
            seed = 213,
            boost = 1.0,
            "book similarity"
        ),
        spec!(
            "flickr",
            820878,
            9837214,
            r = 1.5,
            gamma = 2.1,
            size_exp = 0.7,
            min = 1,
            max = 12000,
            seed = 214,
            boost = 1.0,
            "social (photos)"
        ),
    ]
}

/// Table 2 minus `higgs-twitter` and `flickr` (the paper's accuracy plots in
/// Fig. 5 show 14 panels but Fig. 6's speedup omits none); helper for
/// experiments that need the 12-graph accuracy subset mentioned in §5.3.
pub fn table2_by_id(id: &str) -> Option<SyntheticSpec> {
    table2().into_iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcsbm::generate;
    use hsbp_graph::stats::within_between_ratio;

    #[test]
    fn table1_has_24_unique_entries() {
        let t = table1();
        assert_eq!(t.len(), 24);
        let mut ids: Vec<&str> = t.iter().map(|s| s.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 24);
        let mut seeds: Vec<u64> = t.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 24, "seeds must be distinct");
    }

    #[test]
    fn table1_sizes_match_paper() {
        let t = table1();
        assert_eq!(t[0].paper_vertices, 198101);
        assert_eq!(t[0].paper_edges, 321071);
        assert_eq!(t[7].id, "S8");
        assert_eq!(t[7].paper_edges, 6327321);
        assert_eq!(t[23].id, "S24");
        assert_eq!(t[23].paper_vertices, 225999);
    }

    #[test]
    fn reported_subset_is_18() {
        let reported = table1_reported();
        assert_eq!(reported.len(), 18);
        assert!(reported
            .iter()
            .all(|s| !["S1", "S3", "S17", "S18", "S19", "S20"].contains(&s.id)));
    }

    #[test]
    fn table2_has_14_entries() {
        let t = table2();
        assert_eq!(t.len(), 14);
        assert_eq!(t[6].id, "soc-Slashdot0902");
        assert_eq!(t[6].paper_vertices, 82168);
        assert_eq!(t[6].paper_edges, 948464);
        assert!(table2_by_id("web-BerkStan").is_some());
        assert!(table2_by_id("nope").is_none());
    }

    #[test]
    fn config_scales_proportionally() {
        let spec = &table1()[4]; // S5, dense
        let full = spec.config(1.0);
        let small = spec.config(0.03125);
        assert_eq!(full.num_vertices, 225999);
        assert_eq!(full.target_num_edges, 4463267);
        let mean_full = full.target_num_edges as f64 / full.num_vertices as f64;
        let mean_small = small.target_num_edges as f64 / small.num_vertices as f64;
        assert!((mean_full - mean_small).abs() / mean_full < 0.01);
        assert!(small.num_communities >= 2);
    }

    #[test]
    #[should_panic]
    fn config_rejects_zero_scale() {
        table1()[0].config(0.0);
    }

    #[test]
    fn small_scale_generation_works_end_to_end() {
        // Generate a miniature S5 and check the planted ratio lands near the
        // target.
        let spec = table1().into_iter().find(|s| s.id == "S5").unwrap();
        let cfg = spec.config(0.01);
        let g = generate(cfg.clone());
        assert_eq!(g.graph.num_vertices(), cfg.num_vertices);
        let placed = g.graph.num_edges() as f64 / cfg.target_num_edges as f64;
        assert!(placed > 0.9, "placed only {placed} of target edges");
        let r = within_between_ratio(&g.graph, &g.ground_truth);
        assert!(
            (spec.ratio * 0.5..spec.ratio * 2.5).contains(&r),
            "realised r {r} vs target {}",
            spec.ratio
        );
    }

    #[test]
    fn p2p_surrogate_has_weak_structure() {
        let spec = table2_by_id("p2p-Gnutella31").unwrap();
        let g = generate(spec.config(0.05));
        let r = within_between_ratio(&g.graph, &g.ground_truth);
        assert!(r < 0.5, "p2p surrogate should have r << 1, got {r}");
    }

    #[test]
    fn mesh_surrogate_is_near_regular() {
        let spec = table2_by_id("barth5").unwrap();
        let g = generate(spec.config(0.1));
        let stats = hsbp_graph::GraphStats::compute(&g.graph);
        assert!(
            stats.max_degree <= 60,
            "mesh max degree {}",
            stats.max_degree
        );
    }
}
