//! Property tests for the DCSBM sampler: structural validity, determinism
//! and parameter adherence over random configurations.

use hsbp_generator::{generate, DcsbmConfig};
use hsbp_graph::stats::within_between_ratio;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = DcsbmConfig> {
    (
        50usize..300, // vertices
        1usize..8,    // communities
        1usize..10,   // edges per vertex
        0.1f64..5.0,  // ratio r
        1.5f64..4.0,  // degree exponent
        1u64..4,      // min degree
        any::<u64>(), // seed
    )
        .prop_map(|(n, c, epv, r, gamma, min_d, seed)| DcsbmConfig {
            num_vertices: n,
            num_communities: c.min(n),
            target_num_edges: n * epv,
            within_between_ratio: r,
            degree_exponent: gamma,
            min_degree: min_d,
            max_degree: min_d + 40,
            community_size_exponent: 0.5,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated graphs are structurally valid, the right size, loop-free,
    /// and the planted assignment covers exactly the requested communities.
    #[test]
    fn generated_graphs_are_valid(cfg in arb_config()) {
        let data = generate(cfg.clone());
        prop_assert!(data.graph.validate().is_ok());
        prop_assert_eq!(data.graph.num_vertices(), cfg.num_vertices);
        prop_assert_eq!(data.ground_truth.len(), cfg.num_vertices);
        // No self-loops by construction.
        for v in 0..cfg.num_vertices as u32 {
            prop_assert_eq!(data.graph.self_loop(v), 0);
        }
        // Every planted label in range and every community non-empty.
        let mut seen = vec![false; cfg.num_communities];
        for &b in &data.ground_truth {
            prop_assert!((b as usize) < cfg.num_communities);
            seen[b as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Dense-enough configs place nearly all edges.
        prop_assert!(data.graph.num_edges() as f64 >= 0.5 * cfg.target_num_edges as f64);
    }

    /// Same config => identical output; different seed => different graph.
    #[test]
    fn generation_is_deterministic(cfg in arb_config()) {
        let a = generate(cfg.clone());
        let b = generate(cfg.clone());
        prop_assert_eq!(a.graph, b.graph.clone());
        prop_assert_eq!(&a.ground_truth, &b.ground_truth);
        let mut other = cfg;
        other.seed = other.seed.wrapping_add(1);
        let c = generate(other);
        // With ≥ 50 edges the chance of an identical graph is negligible.
        prop_assert!(c.graph != b.graph || c.ground_truth != b.ground_truth);
    }

    /// The realised within/between ratio moves in the direction of r.
    #[test]
    fn ratio_direction_holds(seed in any::<u64>()) {
        let base = DcsbmConfig {
            num_vertices: 300,
            num_communities: 5,
            target_num_edges: 3000,
            seed,
            ..Default::default()
        };
        let strong = generate(DcsbmConfig { within_between_ratio: 4.0, ..base.clone() });
        let weak = generate(DcsbmConfig { within_between_ratio: 0.25, ..base });
        let r_strong = within_between_ratio(&strong.graph, &strong.ground_truth);
        let r_weak = within_between_ratio(&weak.graph, &weak.ground_truth);
        prop_assert!(r_strong > r_weak, "strong {} <= weak {}", r_strong, r_weak);
    }
}
