//! Allocation accounting for the per-proposal hot path.
//!
//! This integration test binary installs a counting global allocator and
//! asserts that the steady-state proposal loop — gather neighbour counts,
//! evaluate the move, apply it — performs **zero** heap allocations once the
//! per-worker arena has warmed up.
//!
//! The whole file is ONE test on purpose: integration tests in a binary run
//! on multiple threads, and any sibling test's allocations would bleed into
//! the counter. Keep every allocation-sensitive assertion in `hot_path`.

use hsbp_blockmodel::{
    evaluate_move_with_mode, propose::accept_move, propose_block, Blockmodel, MathMode,
    NeighborCounts, ProposalArena,
};
use hsbp_collections::SplitMix64;
use hsbp_generator::{generate, DcsbmConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with a global allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn hot_path() {
    let generated = generate(DcsbmConfig {
        num_vertices: 800,
        num_communities: 12,
        target_num_edges: 8_000,
        seed: 42,
        ..Default::default()
    });
    let graph = &generated.graph;
    let mut bm = Blockmodel::from_assignment(graph, generated.ground_truth.clone(), 12);

    let mut arena = ProposalArena::default();
    let n = graph.num_vertices() as u32;

    // Both math modes must be allocation-free; the Table mode's lazy table
    // build happens during the warmup pass, not in steady state.
    for mode in [MathMode::Exact, MathMode::Table] {
        // One full pass to warm the arena (and the blockmodel's own rows).
        let proposal = |bm: &mut Blockmodel, arena: &mut ProposalArena, sweep: u64, v: u32| {
            let mut rng = SplitMix64::for_item(9, sweep, u64::from(v));
            let from = bm.block_of(v);
            let to = propose_block(graph, bm, bm.assignment(), v, &mut rng);
            if to == from {
                return;
            }
            NeighborCounts::gather_into(
                graph,
                bm.assignment(),
                v,
                &mut arena.scratch,
                &mut arena.counts,
            );
            let eval = evaluate_move_with_mode(bm, from, to, &arena.counts, &mut arena.eval, mode);
            if accept_move(&eval, 3.0, &mut rng) {
                bm.apply_move(v, from, to, &arena.counts);
            }
        };
        for v in 0..n {
            proposal(&mut bm, &mut arena, 0, v);
        }

        // Steady state: count allocations over full sweeps.
        let sweeps = 5u64;
        let before = allocations();
        for sweep in 1..=sweeps {
            for v in 0..n {
                proposal(&mut bm, &mut arena, sweep, v);
            }
        }
        let delta = allocations() - before;
        let per_proposal = delta as f64 / (sweeps * u64::from(n)) as f64;
        eprintln!(
            "hot path ({mode:?}): {delta} allocations over {} proposals ({per_proposal:.3} per proposal)",
            sweeps * u64::from(n)
        );
        assert_eq!(
            delta, 0,
            "steady-state {mode:?} proposal loop must not allocate ({per_proposal:.3} allocations/proposal)"
        );
    }
}
