//! Property tests for the blockmodel: the O(degree) incremental deltas and
//! in-place updates must agree exactly (to floating tolerance) with full
//! recomputation on arbitrary random graphs and partitions.

use hsbp_blockmodel::{delta_mdl_merge, delta_mdl_move, mdl, Blockmodel, NeighborCounts};
use hsbp_graph::Graph;
use proptest::prelude::*;

/// Random directed graph (self-loops and duplicate edges allowed) plus a
/// random assignment into `c` blocks where every block is non-empty-ish.
fn arb_instance() -> impl Strategy<Value = (Graph, Vec<u32>, usize)> {
    (3usize..20, 2usize..6).prop_flat_map(|(n, c)| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 1..80);
        let assignment = proptest::collection::vec(0..c as u32, n);
        (edges, assignment, Just(n), Just(c)).prop_map(move |(edges, assignment, n, c)| {
            (Graph::from_edges(n, &edges), assignment, c)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast vertex-move delta == brute-force likelihood recompute.
    #[test]
    fn move_delta_matches_recompute((g, assignment, c) in arb_instance(), vsel in any::<u32>(), tsel in any::<u32>()) {
        let bm = Blockmodel::from_assignment(&g, assignment.clone(), c);
        let v = vsel % g.num_vertices() as u32;
        let to = tsel % c as u32;
        let from = bm.block_of(v);
        prop_assume!(from != to);
        let counts = NeighborCounts::gather(&g, &bm, v);
        let fast = delta_mdl_move(&bm, from, to, &counts);
        let mut moved = assignment;
        moved[v as usize] = to;
        let after = Blockmodel::from_assignment(&g, moved, c);
        let slow = mdl::log_likelihood(&bm) - mdl::log_likelihood(&after);
        prop_assert!((fast - slow).abs() < 1e-8, "fast {} slow {}", fast, slow);
    }

    /// Fast merge delta == brute-force likelihood recompute.
    #[test]
    fn merge_delta_matches_recompute((g, assignment, c) in arb_instance(), rsel in any::<u32>(), ssel in any::<u32>()) {
        let bm = Blockmodel::from_assignment(&g, assignment.clone(), c);
        let r = rsel % c as u32;
        let s = ssel % c as u32;
        prop_assume!(r != s);
        let fast = delta_mdl_merge(&bm, r, s);
        let merged_assignment: Vec<u32> = assignment.iter().map(|&b| if b == r { s } else { b }).collect();
        let after = Blockmodel::from_assignment(&g, merged_assignment, c);
        let slow = mdl::log_likelihood(&bm) - mdl::log_likelihood(&after);
        prop_assert!((fast - slow).abs() < 1e-8, "fast {} slow {}", fast, slow);
    }

    /// apply_move keeps the model exactly consistent with a fresh build, and
    /// the realised MDL change equals the predicted delta.
    #[test]
    fn apply_move_consistent((g, assignment, c) in arb_instance(), vsel in any::<u32>(), tsel in any::<u32>()) {
        let mut bm = Blockmodel::from_assignment(&g, assignment, c);
        let v = vsel % g.num_vertices() as u32;
        let to = tsel % c as u32;
        let from = bm.block_of(v);
        prop_assume!(from != to);
        let counts = NeighborCounts::gather(&g, &bm, v);
        let predicted = delta_mdl_move(&bm, from, to, &counts);
        let before = mdl::log_likelihood(&bm);
        bm.apply_move(v, from, to, &counts);
        prop_assert!(bm.check_consistency(&g).is_ok());
        let after = mdl::log_likelihood(&bm);
        prop_assert!(((before - after) - predicted).abs() < 1e-8);
    }

    /// A chain of random moves never corrupts the model.
    #[test]
    fn random_walk_stays_consistent((g, assignment, c) in arb_instance(), moves in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..30)) {
        let mut bm = Blockmodel::from_assignment(&g, assignment, c);
        for (vsel, tsel) in moves {
            let v = vsel % g.num_vertices() as u32;
            let to = tsel % c as u32;
            let from = bm.block_of(v);
            if from == to {
                continue;
            }
            let counts = NeighborCounts::gather(&g, &bm, v);
            bm.apply_move(v, from, to, &counts);
        }
        prop_assert!(bm.check_consistency(&g).is_ok());
    }

    /// rebuild() from any assignment equals from_assignment.
    #[test]
    fn rebuild_matches_fresh_build((g, assignment, c) in arb_instance(), other in proptest::collection::vec(any::<u32>(), 0..20)) {
        let mut bm = Blockmodel::from_assignment(&g, assignment, c);
        // Derive a second assignment of the right length from `other`.
        let n = g.num_vertices();
        let new_assignment: Vec<u32> = (0..n).map(|i| other.get(i % other.len().max(1)).copied().unwrap_or(0) % c as u32).collect();
        bm.rebuild(&g, new_assignment.clone());
        prop_assert!(bm.check_consistency(&g).is_ok());
        let fresh = Blockmodel::from_assignment(&g, new_assignment, c);
        prop_assert!((mdl::log_likelihood(&bm) - mdl::log_likelihood(&fresh)).abs() < 1e-10);
    }

    /// The dense and sparse rebuild strategies are interchangeable.
    #[test]
    fn dense_sparse_rebuild_equivalent((g, assignment, c) in arb_instance()) {
        let mut dense = Blockmodel::from_assignment(&g, vec![0; g.num_vertices()], c);
        dense.rebuild_dense(&g, assignment.clone());
        let mut sparse = Blockmodel::from_assignment(&g, vec![0; g.num_vertices()], c);
        sparse.rebuild_sparse(&g, assignment);
        for r in 0..c as u32 {
            prop_assert_eq!(dense.row(r).to_sorted_vec(), sparse.row(r).to_sorted_vec());
            prop_assert_eq!(dense.col(r).to_sorted_vec(), sparse.col(r).to_sorted_vec());
            prop_assert_eq!(dense.d_out(r), sparse.d_out(r));
            prop_assert_eq!(dense.d_in(r), sparse.d_in(r));
        }
        prop_assert!(dense.check_consistency(&g).is_ok());
    }

    /// apply_merges always produces a consistent, compact model.
    #[test]
    fn merges_stay_consistent((g, assignment, c) in arb_instance(), merges in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..6)) {
        let mut bm = Blockmodel::from_assignment(&g, assignment, c);
        let merges: Vec<(u32, u32)> = merges.into_iter().map(|(a, b)| (a % c as u32, b % c as u32)).collect();
        let new_c = bm.apply_merges(&g, &merges);
        prop_assert_eq!(new_c, bm.num_blocks());
        prop_assert!(new_c >= 1 && new_c <= c);
        // Labels are compact: every label < new_c appears... (some may be
        // empty only if they were empty before the merge).
        prop_assert!(bm.assignment().iter().all(|&b| (b as usize) < new_c));
        prop_assert!(bm.check_consistency(&g).is_ok());
    }

    /// MDL decomposition: total = complexity − likelihood, and the null MDL
    /// depends only on E.
    #[test]
    fn mdl_decomposition_holds((g, assignment, c) in arb_instance()) {
        let bm = Blockmodel::from_assignment(&g, assignment, c);
        let m = mdl::mdl(&bm, g.num_vertices(), g.total_weight());
        prop_assert!((m.total - (m.model_complexity - m.log_likelihood)).abs() < 1e-10);
        prop_assert!(m.log_likelihood <= 1e-10, "likelihood must be non-positive");
        if g.total_weight() > 0 {
            prop_assert!(mdl::null_mdl(g.total_weight()) > 0.0);
        }
    }
}
