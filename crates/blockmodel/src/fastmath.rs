//! `MathMode` and the delta-MDL math kernels.
//!
//! The per-proposal delta evaluation spends most of its time in
//! `x·ln x`-shaped terms over sparse B-matrix entries whose arguments are
//! small integer counts. [`MathMode`] selects how those terms are computed:
//!
//! * [`MathMode::Exact`] — libm `ln` exactly as the pre-fastmath tree did.
//!   This path is property-pinned bit-identical to the original code.
//! * [`MathMode::Table`] — serve `ln`/`x·ln x` from the precomputed tables
//!   in [`hsbp_collections::fastmath`]. Table entries are computed with the
//!   same `f64::ln`, and non-integer/above-cap arguments fall back to libm,
//!   so for the integer counts the hot path feeds it the result is
//!   bit-identical to `Exact` — the mode changes the *cost* of a term, not
//!   its value. The exactness property tests in `hsbp-core` pin that
//!   equivalence end-to-end (identical accept/reject trace and MDL bits).
//!
//! Kernels are monomorphized: the mode is dispatched once per public call
//! (`evaluate_move_with_mode`, `delta_mdl_merge_with_mode`, …), not per
//! term, so `Exact` keeps exactly the old instruction stream.

// One audited home for the log helpers: re-export the collections module so
// downstream crates (metrics, bench, CLI) can reach it through blockmodel.
pub use hsbp_collections::fastmath::{
    ln, ln_lookup, table, table_cap, xlnx, xlnx_lookup, xlny, LnTable, DEFAULT_TABLE_CAP,
    HSBP_MATH_CAP_ENV, MAX_TABLE_CAP, MIN_TABLE_CAP,
};

/// Environment variable selecting the default math mode (`exact`/`table`).
pub const HSBP_MATH_ENV: &str = "HSBP_MATH";

/// How delta-MDL terms are computed. See the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MathMode {
    /// libm `ln` per term — the original, property-pinned path.
    #[default]
    Exact,
    /// Precomputed `ln`/`x·ln x` table lookups for integer counts, exact
    /// fallback otherwise.
    Table,
}

impl MathMode {
    /// Stable lowercase name (CLI/bench/JSON spelling).
    pub fn name(&self) -> &'static str {
        match self {
            MathMode::Exact => "exact",
            MathMode::Table => "table",
        }
    }

    /// Parse a CLI/env spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<MathMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" => Some(MathMode::Exact),
            "table" => Some(MathMode::Table),
            _ => None,
        }
    }

    /// Mode selected by the `HSBP_MATH` environment variable, defaulting to
    /// `Exact` when unset or unparsable.
    pub fn from_env() -> MathMode {
        std::env::var(HSBP_MATH_ENV)
            .ok()
            .and_then(|v| MathMode::parse(&v))
            .unwrap_or_default()
    }
}

/// One delta-MDL term implementation; monomorphized into the kernels.
pub trait MdlKernel {
    /// `B_rs · ln(B_rs / (d_out_r · d_in_s))` with the zero-cell convention
    /// (zero for `b <= 0`).
    fn ll_term(b: f64, d_out: f64, d_in: f64) -> f64;

    /// `h(x) = (1+x)·ln(1+x) − x·ln x`, zero at `x <= 0`.
    fn entropy_term(x: f64) -> f64;
}

/// The original libm path. `ll_term` delegates to
/// [`crate::mdl::log_likelihood_term`], so it is bit-identical to the
/// pre-fastmath code by construction.
pub struct ExactKernel;

impl MdlKernel for ExactKernel {
    #[inline]
    fn ll_term(b: f64, d_out: f64, d_in: f64) -> f64 {
        crate::mdl::log_likelihood_term(b, d_out, d_in)
    }

    #[inline]
    fn entropy_term(x: f64) -> f64 {
        crate::mdl::dcsbm_entropy_term(x)
    }
}

/// Table-served logs: integer arguments below the cap are loads, everything
/// else falls back to the exact computation.
pub struct TableKernel;

impl MdlKernel for TableKernel {
    #[inline]
    fn ll_term(b: f64, d_out: f64, d_in: f64) -> f64 {
        if b <= 0.0 {
            0.0
        } else {
            debug_assert!(
                d_out > 0.0 && d_in > 0.0,
                "non-empty cell with zero block degree"
            );
            // Same association as the exact path — b * (ln b - ln d_out -
            // ln d_in) — with each ln served from the table, so in-range
            // integer arguments reproduce the exact result bit-for-bit.
            b * (ln_lookup(b) - ln_lookup(d_out) - ln_lookup(d_in))
        }
    }

    #[inline]
    fn entropy_term(x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            // (1+x)ln(1+x) computed as xlnx(1+x): identical multiply of
            // identical factors, table-served when 1+x is an in-range
            // integer.
            xlnx_lookup(1.0 + x) - xlnx_lookup(x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_roundtrip() {
        for mode in [MathMode::Exact, MathMode::Table] {
            assert_eq!(MathMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(MathMode::parse("TABLE"), Some(MathMode::Table));
        assert_eq!(MathMode::parse(" exact "), Some(MathMode::Exact));
        assert_eq!(MathMode::parse("fast"), None);
        assert_eq!(MathMode::default(), MathMode::Exact);
    }

    #[test]
    fn table_kernel_is_bit_identical_on_integer_counts() {
        // The hot path only ever feeds integer counts/degrees below the cap;
        // the table must reproduce the exact term bit-for-bit there.
        for b in [0_u64, 1, 2, 3, 17, 255, 4096] {
            for d_out in [1_u64, 2, 9, 1023, 50_000] {
                for d_in in [1_u64, 5, 77, 60_000] {
                    let (bf, of, inf) = (b as f64, d_out as f64, d_in as f64);
                    assert_eq!(
                        TableKernel::ll_term(bf, of, inf).to_bits(),
                        ExactKernel::ll_term(bf, of, inf).to_bits(),
                        "ll_term diverged at ({b}, {d_out}, {d_in})"
                    );
                }
            }
        }
        for x in [0_u64, 1, 2, 100, 65_000] {
            let xf = x as f64;
            assert_eq!(
                TableKernel::entropy_term(xf).to_bits(),
                ExactKernel::entropy_term(xf).to_bits(),
                "entropy_term diverged at {x}"
            );
        }
    }

    #[test]
    fn table_kernel_fractional_args_fall_back_within_tolerance() {
        // dcsbm_entropy_term takes the fractional C²/E; the table path must
        // agree with exact to far better than the 1e-9 delta contract.
        for &x in &[0.017, 0.5, 1.2, 33.75, 1e6 + 0.25] {
            let t = TableKernel::entropy_term(x);
            let e = ExactKernel::entropy_term(x);
            assert!(
                (t - e).abs() <= 1e-12 * e.abs().max(1.0),
                "x={x}: {t} vs {e}"
            );
        }
        for &(b, o, i) in &[(2.5, 7.0, 9.0), (3.0, 6.5, 2.0), (1e9, 2e9, 3e9)] {
            let t = TableKernel::ll_term(b, o, i);
            let e = ExactKernel::ll_term(b, o, i);
            assert!((t - e).abs() <= 1e-9 * e.abs().max(1.0));
        }
    }
}
