//! O(degree) evaluation of the MDL change of a proposed vertex move or block
//! merge, plus the Hastings correction — all without mutating the model.
//!
//! A vertex move `v: r → s` only touches rows `r`, `s` and columns `r`, `s`
//! of `B` (and the four block degrees `d_out/d_in` of `r` and `s`), so the
//! likelihood delta is the difference of Eq.-1 terms over exactly those
//! entries. The same holds for a block merge. Correctness is enforced by
//! property tests comparing against a full recompute on a mutated clone.
//!
//! All per-proposal state lives in reusable epoch-stamped
//! [`ScratchCounter`]s bundled into a [`ProposalArena`]; the steady-state
//! proposal loop performs zero heap allocations (enforced by the
//! `alloc_hotpath` integration test). Every counter iterates in ascending
//! key order, so the float summations below are pure functions of the
//! logical state — a prerequisite for bit-identical incremental sweep
//! consolidation.

use crate::fastmath::{ExactKernel, MathMode, MdlKernel, TableKernel};
use crate::model::{Block, Blockmodel};
use hsbp_collections::{ScratchCounter, SplitMix64};
use hsbp_graph::{Graph, Vertex, Weight};
use std::sync::Mutex;

/// Census of a vertex's neighbourhood by block: how many edge endpoints `v`
/// has in each block, split by direction, with self-loops separated.
///
/// Gathered once per proposal and shared by the delta computation, the
/// Hastings correction and the in-place move application. Entries are sorted
/// by block id.
#[derive(Debug, Clone, Default)]
pub struct NeighborCounts {
    /// `(block, weight)` of out-edges `v -> u`, `u != v`.
    pub out_counts: Vec<(Block, Weight)>,
    /// `(block, weight)` of in-edges `u -> v`, `u != v`.
    pub in_counts: Vec<(Block, Weight)>,
    /// Total weight of self-loops `v -> v`.
    pub self_loops: Weight,
}

impl NeighborCounts {
    /// Gather for `v` using the model's own assignment.
    pub fn gather(graph: &Graph, bm: &Blockmodel, v: Vertex) -> Self {
        Self::gather_with(graph, bm.assignment(), v, &mut MoveScratch::default())
    }

    /// Gather for `v` against an explicit assignment, allocating the result.
    ///
    /// Compatibility wrapper around [`NeighborCounts::gather_into`]; hot
    /// loops should hold a [`ProposalArena`] and use `gather_into` instead.
    pub fn gather_with(
        graph: &Graph,
        assignment: &[Block],
        v: Vertex,
        scratch: &mut MoveScratch,
    ) -> Self {
        let mut counts = NeighborCounts::default();
        Self::gather_into(graph, assignment, v, scratch, &mut counts);
        counts
    }

    /// Gather for `v` against an explicit assignment (the per-sweep snapshot
    /// in A-SBP), reusing both the `scratch` counters and the `counts`
    /// buffers — allocation-free once warmed up.
    pub fn gather_into(
        graph: &Graph,
        assignment: &[Block],
        v: Vertex,
        scratch: &mut MoveScratch,
        counts: &mut NeighborCounts,
    ) {
        counts.out_counts.clear();
        counts.in_counts.clear();
        counts.self_loops = 0;
        scratch.out.begin();
        scratch.inn.begin();
        for (u, w) in graph.out_edges(v) {
            if u == v {
                counts.self_loops += w;
            } else {
                scratch.out.add(assignment[u as usize], w as i64);
            }
        }
        for (u, w) in graph.in_edges(v) {
            if u != v {
                scratch.inn.add(assignment[u as usize], w as i64);
            }
        }
        // Sorted output keeps downstream arithmetic deterministic.
        let out_counts = &mut counts.out_counts;
        scratch
            .out
            .for_each_sorted(|b, w| out_counts.push((b, w as Weight)));
        let in_counts = &mut counts.in_counts;
        scratch
            .inn
            .for_each_sorted(|b, w| in_counts.push((b, w as Weight)));
    }

    /// Total out-degree of the vertex (self-loops included).
    #[inline]
    pub fn k_out(&self) -> Weight {
        self.out_counts.iter().map(|&(_, w)| w).sum::<Weight>() + self.self_loops
    }

    /// Total in-degree of the vertex (self-loops included).
    #[inline]
    pub fn k_in(&self) -> Weight {
        self.in_counts.iter().map(|&(_, w)| w).sum::<Weight>() + self.self_loops
    }

    /// Total degree `k_out + k_in`.
    #[inline]
    pub fn degree(&self) -> Weight {
        self.k_out() + self.k_in()
    }
}

/// Reusable counters for [`NeighborCounts::gather_into`].
#[derive(Debug, Default)]
pub struct MoveScratch {
    out: ScratchCounter,
    inn: ScratchCounter,
}

/// Reusable counters for [`evaluate_move_with`] and
/// [`delta_mdl_merge_with`]: the signed working image of the affected
/// rows/columns of `B` plus the neighbour-block census.
#[derive(Debug, Default)]
pub struct EvalScratch {
    row_from: ScratchCounter,
    row_to: ScratchCounter,
    /// Column entries `B[a][from]` for `a ∉ {from, to}`.
    col_from: ScratchCounter,
    /// Column entries `B[a][to]` for `a ∉ {from, to}`.
    col_to: ScratchCounter,
    census: ScratchCounter,
}

/// Staged proposals for one chunk of a frozen-model sweep.
///
/// Batched sweeps draw *all* counter-RNG streams and alias-table proposals
/// for a chunk first (stage A), then gather/evaluate/accept (stage B). The
/// per-vertex RNG state is parked here between the stages, so each vertex
/// consumes its stream in exactly the per-vertex order — results stay
/// bit-identical to the unbatched loop while the proposal dispatch
/// (sampler lookups, branchy alias walks) amortizes across the batch.
#[derive(Debug, Default)]
pub struct ProposalBatch {
    /// Per-vertex RNG state after the proposal draw, resumed by the
    /// acceptance test.
    pub rngs: Vec<SplitMix64>,
    /// Current block of each vertex in the chunk.
    pub from: Vec<Block>,
    /// Proposed target block of each vertex in the chunk.
    pub to: Vec<Block>,
}

impl ProposalBatch {
    /// Drop staged proposals (buffers keep their capacity).
    pub fn clear(&mut self) {
        self.rngs.clear();
        self.from.clear();
        self.to.clear();
    }
}

/// Everything one worker needs to evaluate proposals without allocating:
/// gather counters, the reusable neighbour-count buffers and the move
/// evaluation image. One arena per worker, reused across sweeps.
#[derive(Debug, Default)]
pub struct ProposalArena {
    /// Gather counters for [`NeighborCounts::gather_into`].
    pub scratch: MoveScratch,
    /// Reusable result buffer for the gathered counts.
    pub counts: NeighborCounts,
    /// Move-evaluation image for [`evaluate_move_with`].
    pub eval: EvalScratch,
    /// Staged per-chunk proposals for batched frozen-model sweeps.
    pub batch: ProposalBatch,
}

/// A shared pool of [`ProposalArena`]s for parallel sweeps whose worker
/// closures are re-created per chunk (`map_init` under the vendored rayon
/// shim). Leasing pops a warmed arena; dropping the lease returns it.
#[derive(Debug, Default)]
pub struct ArenaPool {
    arenas: Mutex<Vec<ProposalArena>>,
}

impl ArenaPool {
    /// Empty pool; arenas are created on first lease and recycled after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow an arena (warmed if one is available, fresh otherwise).
    pub fn lease(&self) -> ArenaLease<'_> {
        let arena = match self.arenas.lock() {
            Ok(mut guard) => guard.pop().unwrap_or_default(),
            Err(_) => ProposalArena::default(),
        };
        ArenaLease { pool: self, arena }
    }
}

/// RAII lease over a pooled [`ProposalArena`]; returns it on drop.
#[derive(Debug)]
pub struct ArenaLease<'a> {
    pool: &'a ArenaPool,
    arena: ProposalArena,
}

impl std::ops::Deref for ArenaLease<'_> {
    type Target = ProposalArena;
    fn deref(&self) -> &ProposalArena {
        &self.arena
    }
}

impl std::ops::DerefMut for ArenaLease<'_> {
    fn deref_mut(&mut self) -> &mut ProposalArena {
        &mut self.arena
    }
}

impl Drop for ArenaLease<'_> {
    fn drop(&mut self) {
        if let Ok(mut guard) = self.pool.arenas.lock() {
            guard.push(std::mem::take(&mut self.arena));
        }
    }
}

/// Result of evaluating a proposed vertex move.
#[derive(Debug, Clone, Copy)]
pub struct MoveEval {
    /// `ΔMDL` (likelihood part; C is unchanged by a move). Negative is an
    /// improvement.
    pub delta_mdl: f64,
    /// Hastings factor `p_backward / p_forward` for the MH acceptance test.
    pub hastings: f64,
}

/// Degrees of the two affected blocks in the working image.
struct AffectedDegrees {
    d_out_from: i64,
    d_out_to: i64,
    d_in_from: i64,
    d_in_to: i64,
}

/// Load the affected rows/columns of `B` into the scratch image.
fn snapshot(scratch: &mut EvalScratch, bm: &Blockmodel, from: Block, to: Block) -> AffectedDegrees {
    scratch.row_from.begin();
    scratch.row_to.begin();
    scratch.col_from.begin();
    scratch.col_to.begin();
    for (t, w) in bm.row(from).iter() {
        scratch.row_from.add(t, w as i64);
    }
    for (t, w) in bm.row(to).iter() {
        scratch.row_to.add(t, w as i64);
    }
    for (a, w) in bm.col(from).iter() {
        if a != from && a != to {
            scratch.col_from.add(a, w as i64);
        }
    }
    for (a, w) in bm.col(to).iter() {
        if a != from && a != to {
            scratch.col_to.add(a, w as i64);
        }
    }
    AffectedDegrees {
        d_out_from: bm.d_out(from) as i64,
        d_out_to: bm.d_out(to) as i64,
        d_in_from: bm.d_in(from) as i64,
        d_in_to: bm.d_in(to) as i64,
    }
}

/// Sum of Eq.-1 terms over the affected entries with the image's current
/// values and degrees. Iterates each counter in key order, so the float sum
/// is deterministic. Monomorphized per [`MdlKernel`] so the exact path keeps
/// its original instruction stream.
fn likelihood_part<K: MdlKernel>(
    scratch: &mut EvalScratch,
    bm: &Blockmodel,
    from: Block,
    to: Block,
    deg: &AffectedDegrees,
) -> f64 {
    let d_in_of = |t: Block| -> f64 {
        if t == from {
            deg.d_in_from as f64
        } else if t == to {
            deg.d_in_to as f64
        } else {
            bm.d_in(t) as f64
        }
    };
    let mut total = 0.0;
    let d_out_from = deg.d_out_from as f64;
    scratch.row_from.for_each_sorted(|t, b| {
        total += K::ll_term(b as f64, d_out_from, d_in_of(t));
    });
    let d_out_to = deg.d_out_to as f64;
    scratch.row_to.for_each_sorted(|t, b| {
        total += K::ll_term(b as f64, d_out_to, d_in_of(t));
    });
    let d_in_from = deg.d_in_from as f64;
    scratch.col_from.for_each_sorted(|a, b| {
        total += K::ll_term(b as f64, bm.d_out(a) as f64, d_in_from);
    });
    let d_in_to = deg.d_in_to as f64;
    scratch.col_to.for_each_sorted(|a, b| {
        total += K::ll_term(b as f64, bm.d_out(a) as f64, d_in_to);
    });
    total
}

/// Mutate the image to reflect the move `v: from -> to`.
fn apply_image(
    scratch: &mut EvalScratch,
    counts: &NeighborCounts,
    from: Block,
    to: Block,
    deg: &mut AffectedDegrees,
) {
    // Out-edges v -> (block t): B[from][t] -= w, B[to][t] += w.
    for &(t, w) in &counts.out_counts {
        let w = w as i64;
        scratch.row_from.add(t, -w);
        scratch.row_to.add(t, w);
    }
    // In-edges (block a) -> v: B[a][from] -= w, B[a][to] += w. When
    // a ∈ {from, to} the entry lives in a tracked *row*, otherwise in a
    // tracked column.
    for &(a, w) in &counts.in_counts {
        let w = w as i64;
        if a == from {
            scratch.row_from.add(from, -w);
            scratch.row_from.add(to, w);
        } else if a == to {
            scratch.row_to.add(from, -w);
            scratch.row_to.add(to, w);
        } else {
            scratch.col_from.add(a, -w);
            scratch.col_to.add(a, w);
        }
    }
    // Self-loops travel along the diagonal.
    if counts.self_loops > 0 {
        let w = counts.self_loops as i64;
        scratch.row_from.add(from, -w);
        scratch.row_to.add(to, w);
    }
    let k_out = counts.k_out() as i64;
    let k_in = counts.k_in() as i64;
    deg.d_out_from -= k_out;
    deg.d_out_to += k_out;
    deg.d_in_from -= k_in;
    deg.d_in_to += k_in;
    debug_assert!(deg.d_out_from >= 0 && deg.d_in_from >= 0);
}

fn d_total_of(deg: &AffectedDegrees, bm: &Blockmodel, t: Block, from: Block, to: Block) -> i64 {
    if t == from {
        deg.d_out_from + deg.d_in_from
    } else if t == to {
        deg.d_out_to + deg.d_in_to
    } else {
        bm.d_total(t) as i64
    }
}

/// Evaluate a proposed move `v: from → to`, allocating fresh scratch.
///
/// Compatibility wrapper around [`evaluate_move_with`]; hot loops should
/// hold a [`ProposalArena`] and pass its `eval` field instead.
pub fn evaluate_move(bm: &Blockmodel, from: Block, to: Block, counts: &NeighborCounts) -> MoveEval {
    evaluate_move_with(bm, from, to, counts, &mut EvalScratch::default())
}

/// Evaluate a proposed move `v: from → to`: its MDL delta and Hastings
/// correction. `counts` must be gathered with `v` still in `from`.
/// Allocation-free once `scratch` has warmed up.
///
/// The Hastings factor follows the graph-challenge reference: with the
/// neighbour-block census `{(t, k_t)}` of `v` (self-loops counted toward
/// `from`), `C = num_blocks`,
///
/// ```text
/// p_fwd = Σ_t k_t/k_v · (B[t][to]   + B[to][t]   + 1) / (d_t + C)    (old B)
/// p_bwd = Σ_t k_t/k_v · (B'[t][from] + B'[from][t] + 1) / (d'_t + C)  (new B)
/// ```
pub fn evaluate_move_with(
    bm: &Blockmodel,
    from: Block,
    to: Block,
    counts: &NeighborCounts,
    scratch: &mut EvalScratch,
) -> MoveEval {
    evaluate_move_kernel::<ExactKernel>(bm, from, to, counts, scratch)
}

/// [`evaluate_move_with`] under an explicit [`MathMode`]. The mode is
/// dispatched once per call into a monomorphized kernel; `Exact` is the
/// original libm path, `Table` serves the `ln` terms from the precomputed
/// table (bit-identical for the integer counts the hot path produces).
pub fn evaluate_move_with_mode(
    bm: &Blockmodel,
    from: Block,
    to: Block,
    counts: &NeighborCounts,
    scratch: &mut EvalScratch,
    mode: MathMode,
) -> MoveEval {
    match mode {
        MathMode::Exact => evaluate_move_kernel::<ExactKernel>(bm, from, to, counts, scratch),
        MathMode::Table => evaluate_move_kernel::<TableKernel>(bm, from, to, counts, scratch),
    }
}

fn evaluate_move_kernel<K: MdlKernel>(
    bm: &Blockmodel,
    from: Block,
    to: Block,
    counts: &NeighborCounts,
    scratch: &mut EvalScratch,
) -> MoveEval {
    if from == to {
        return MoveEval {
            delta_mdl: 0.0,
            hastings: 1.0,
        };
    }
    let mut deg = snapshot(scratch, bm, from, to);
    let old_part = likelihood_part::<K>(scratch, bm, from, to, &deg);

    // Combined neighbour-block census (both directions; self-loops toward
    // the *current* block of v, i.e. `from`).
    scratch.census.begin();
    for &(t, w) in counts.out_counts.iter().chain(counts.in_counts.iter()) {
        scratch.census.add(t, w as i64);
    }
    if counts.self_loops > 0 {
        scratch.census.add(from, 2 * counts.self_loops as i64);
    }
    let k_v: i64 = counts.degree() as i64;
    let c = bm.num_blocks() as f64;

    // Forward probability uses the pre-move matrix.
    let mut p_fwd = 0.0;
    if k_v > 0 {
        scratch.census.for_each_sorted(|t, k_t| {
            let mass = if t == to {
                2 * bm.edge_count(to, to)
            } else {
                bm.edge_count(t, to) + bm.edge_count(to, t)
            };
            p_fwd += k_t as f64 * (mass as f64 + 1.0) / (bm.d_total(t) as f64 + c);
        });
        p_fwd /= k_v as f64;
    }

    apply_image(scratch, counts, from, to, &mut deg);
    let new_part = likelihood_part::<K>(scratch, bm, from, to, &deg);

    // Backward probability uses the post-move matrix (labels of the census
    // unchanged, matching the reference implementation).
    let mut p_bwd = 0.0;
    if k_v > 0 {
        let EvalScratch {
            row_from,
            row_to,
            col_from,
            col_to,
            census,
        } = scratch;
        // Re-borrow the image immutably for lookups while the census drives
        // the iteration.
        let image = EvalScratchRef {
            row_from,
            row_to,
            col_from,
            col_to,
        };
        census.for_each_sorted(|t, k_t| {
            let mass = image.pair_mass(bm, t, from, from, to);
            let d_t = d_total_of(&deg, bm, t, from, to);
            p_bwd += k_t as f64 * (mass as f64 + 1.0) / (d_t as f64 + c);
        });
        p_bwd /= k_v as f64;
    }

    let hastings = if p_fwd > 0.0 && k_v > 0 {
        p_bwd / p_fwd
    } else {
        1.0
    };
    MoveEval {
        delta_mdl: old_part - new_part,
        hastings,
    }
}

/// Immutable view over the four image counters (the census counter needs a
/// disjoint mutable borrow while these are read).
struct EvalScratchRef<'a> {
    row_from: &'a ScratchCounter,
    row_to: &'a ScratchCounter,
    col_from: &'a ScratchCounter,
    col_to: &'a ScratchCounter,
}

impl EvalScratchRef<'_> {
    fn pair_mass(&self, bm: &Blockmodel, t: Block, target: Block, from: Block, to: Block) -> i64 {
        let get = |row: Block, col: Block| -> i64 {
            if row == from {
                self.row_from.get(col)
            } else if row == to {
                self.row_to.get(col)
            } else if col == from {
                self.col_from.get(row)
            } else if col == to {
                self.col_to.get(row)
            } else {
                bm.edge_count(row, col) as i64
            }
        };
        if t == target {
            // Diagonal cell counted once in each direction = twice.
            2 * get(t, t)
        } else {
            get(t, target) + get(target, t)
        }
    }
}

/// MDL delta (likelihood part) of moving `v: from → to`.
pub fn delta_mdl_move(bm: &Blockmodel, from: Block, to: Block, counts: &NeighborCounts) -> f64 {
    evaluate_move(bm, from, to, counts).delta_mdl
}

/// Likelihood-part MDL delta of merging `r` into `s`, allocating scratch.
///
/// Compatibility wrapper around [`delta_mdl_merge_with`].
pub fn delta_mdl_merge(bm: &Blockmodel, r: Block, s: Block) -> f64 {
    delta_mdl_merge_with(bm, r, s, &mut EvalScratch::default())
}

/// Likelihood-part MDL delta of merging block `r` into block `s`, computed
/// without touching the model and without allocating (given a warmed
/// `scratch`). The (identical for every candidate) model complexity change
/// from `C → C−1` is *not* included; add
/// [`crate::mdl::model_complexity_delta`] for the full ΔMDL.
pub fn delta_mdl_merge_with(bm: &Blockmodel, r: Block, s: Block, scratch: &mut EvalScratch) -> f64 {
    delta_mdl_merge_kernel::<ExactKernel>(bm, r, s, scratch)
}

/// [`delta_mdl_merge_with`] under an explicit [`MathMode`] (see
/// [`evaluate_move_with_mode`] for the mode semantics).
pub fn delta_mdl_merge_with_mode(
    bm: &Blockmodel,
    r: Block,
    s: Block,
    scratch: &mut EvalScratch,
    mode: MathMode,
) -> f64 {
    match mode {
        MathMode::Exact => delta_mdl_merge_kernel::<ExactKernel>(bm, r, s, scratch),
        MathMode::Table => delta_mdl_merge_kernel::<TableKernel>(bm, r, s, scratch),
    }
}

fn delta_mdl_merge_kernel<K: MdlKernel>(
    bm: &Blockmodel,
    r: Block,
    s: Block,
    scratch: &mut EvalScratch,
) -> f64 {
    if r == s {
        return 0.0;
    }
    // Old likelihood part: rows r, s fully; columns r, s excluding entries
    // already counted in those rows.
    let mut old_part = 0.0;
    for (t, b) in bm.row(r).iter() {
        old_part += K::ll_term(b as f64, bm.d_out(r) as f64, bm.d_in(t) as f64);
    }
    for (t, b) in bm.row(s).iter() {
        old_part += K::ll_term(b as f64, bm.d_out(s) as f64, bm.d_in(t) as f64);
    }
    for (a, b) in bm.col(r).iter() {
        if a != r && a != s {
            old_part += K::ll_term(b as f64, bm.d_out(a) as f64, bm.d_in(r) as f64);
        }
    }
    for (a, b) in bm.col(s).iter() {
        if a != r && a != s {
            old_part += K::ll_term(b as f64, bm.d_out(a) as f64, bm.d_in(s) as f64);
        }
    }

    // Merged row: row r + row s with key r folded into s (reuses the
    // `row_from` counter as the merged-row buffer).
    let new_row = &mut scratch.row_from;
    new_row.begin();
    for (t, b) in bm.row(r).iter().chain(bm.row(s).iter()) {
        let key = if t == r { s } else { t };
        new_row.add(key, b as i64);
    }
    // Merged column, excluding rows r and s (their mass is in new_row).
    let new_col = &mut scratch.col_from;
    new_col.begin();
    for (a, b) in bm.col(r).iter().chain(bm.col(s).iter()) {
        if a != r && a != s {
            new_col.add(a, b as i64);
        }
    }
    let d_out_merged = (bm.d_out(r) + bm.d_out(s)) as f64;
    let d_in_merged = (bm.d_in(r) + bm.d_in(s)) as f64;
    let d_in_of = |t: Block| -> f64 {
        if t == s {
            d_in_merged
        } else {
            bm.d_in(t) as f64
        }
    };

    let mut new_part = 0.0;
    scratch.row_from.for_each_sorted(|t, b| {
        new_part += K::ll_term(b as f64, d_out_merged, d_in_of(t));
    });
    scratch.col_from.for_each_sorted(|a, b| {
        new_part += K::ll_term(b as f64, bm.d_out(a) as f64, d_in_merged);
    });
    old_part - new_part
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::mdl;
    use hsbp_graph::Graph;

    fn ring(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Graph::from_edges(n as usize, &edges)
    }

    fn brute_force_delta(graph: &Graph, bm: &Blockmodel, v: Vertex, to: Block) -> f64 {
        let mut assignment = bm.assignment().to_vec();
        assignment[v as usize] = to;
        let moved = Blockmodel::from_assignment(graph, assignment, bm.num_blocks());
        mdl::log_likelihood(bm) - mdl::log_likelihood(&moved)
    }

    #[test]
    fn gather_counts_directions() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (3, 0), (0, 0)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 1, 1, 2], 3);
        let counts = NeighborCounts::gather(&g, &bm, 0);
        assert_eq!(counts.out_counts, vec![(1, 2)]);
        assert_eq!(counts.in_counts, vec![(2, 1)]);
        assert_eq!(counts.self_loops, 1);
        assert_eq!(counts.k_out(), 3);
        assert_eq!(counts.k_in(), 2);
        assert_eq!(counts.degree(), 5);
    }

    #[test]
    fn gather_into_reuses_buffers_and_matches_gather() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (3, 0), (0, 0), (4, 0), (0, 4)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 1, 1, 2, 2], 3);
        let mut scratch = MoveScratch::default();
        let mut counts = NeighborCounts::default();
        for v in 0..5u32 {
            NeighborCounts::gather_into(&g, bm.assignment(), v, &mut scratch, &mut counts);
            let fresh = NeighborCounts::gather(&g, &bm, v);
            assert_eq!(counts.out_counts, fresh.out_counts, "v={v}");
            assert_eq!(counts.in_counts, fresh.in_counts, "v={v}");
            assert_eq!(counts.self_loops, fresh.self_loops, "v={v}");
        }
    }

    #[test]
    fn arena_pool_recycles() {
        let pool = ArenaPool::new();
        {
            let mut lease = pool.lease();
            lease.counts.out_counts.push((1, 1));
        }
        let lease = pool.lease();
        // The recycled arena keeps its buffers (contents are overwritten by
        // gather_into before each use).
        assert!(lease.counts.out_counts.capacity() >= 1);
    }

    #[test]
    fn delta_matches_brute_force_on_ring() {
        let g = ring(8);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        for v in 0..8u32 {
            let from = bm.block_of(v);
            let counts = NeighborCounts::gather(&g, &bm, v);
            for to in 0..4u32 {
                if to == from {
                    continue;
                }
                let fast = delta_mdl_move(&bm, from, to, &counts);
                let slow = brute_force_delta(&g, &bm, v, to);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "v={v} {from}->{to}: fast {fast} vs slow {slow}"
                );
            }
        }
    }

    #[test]
    fn evaluate_move_with_matches_wrapper() {
        let g = ring(8);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        let mut arena = ProposalArena::default();
        for v in 0..8u32 {
            let from = bm.block_of(v);
            NeighborCounts::gather_into(
                &g,
                bm.assignment(),
                v,
                &mut arena.scratch,
                &mut arena.counts,
            );
            for to in 0..4u32 {
                let fresh = evaluate_move(&bm, from, to, &arena.counts);
                let reused = evaluate_move_with(&bm, from, to, &arena.counts, &mut arena.eval);
                assert_eq!(fresh.delta_mdl.to_bits(), reused.delta_mdl.to_bits());
                assert_eq!(fresh.hastings.to_bits(), reused.hastings.to_bits());
            }
        }
    }

    #[test]
    fn delta_with_self_loops() {
        let g = Graph::from_edges(4, &[(0, 0), (0, 1), (1, 0), (2, 3), (3, 2), (3, 3), (1, 2)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1], 2);
        for v in 0..4u32 {
            let from = bm.block_of(v);
            let to = 1 - from;
            let counts = NeighborCounts::gather(&g, &bm, v);
            let fast = delta_mdl_move(&bm, from, to, &counts);
            let slow = brute_force_delta(&g, &bm, v, to);
            assert!(
                (fast - slow).abs() < 1e-9,
                "v={v}: fast {fast} vs slow {slow}"
            );
        }
    }

    #[test]
    fn table_mode_matches_exact_bitwise_on_integer_counts() {
        // All counts and degrees in a blockmodel are small integers, so the
        // table kernel must reproduce the exact kernel bit-for-bit.
        let g = ring(8);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        let mut arena = ProposalArena::default();
        for v in 0..8u32 {
            let from = bm.block_of(v);
            NeighborCounts::gather_into(
                &g,
                bm.assignment(),
                v,
                &mut arena.scratch,
                &mut arena.counts,
            );
            for to in 0..4u32 {
                let exact = evaluate_move_with_mode(
                    &bm,
                    from,
                    to,
                    &arena.counts,
                    &mut arena.eval,
                    MathMode::Exact,
                );
                let table = evaluate_move_with_mode(
                    &bm,
                    from,
                    to,
                    &arena.counts,
                    &mut arena.eval,
                    MathMode::Table,
                );
                assert_eq!(exact.delta_mdl.to_bits(), table.delta_mdl.to_bits());
                assert_eq!(exact.hastings.to_bits(), table.hastings.to_bits());
            }
        }
        for r in 0..4u32 {
            for s in 0..4u32 {
                let exact = delta_mdl_merge_with_mode(&bm, r, s, &mut arena.eval, MathMode::Exact);
                let table = delta_mdl_merge_with_mode(&bm, r, s, &mut arena.eval, MathMode::Table);
                assert_eq!(exact.to_bits(), table.to_bits(), "merge {r}->{s}");
            }
        }
    }

    #[test]
    fn delta_zero_for_null_move() {
        let g = ring(6);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let counts = NeighborCounts::gather(&g, &bm, 0);
        let eval = evaluate_move(&bm, 0, 0, &counts);
        assert_eq!(eval.delta_mdl, 0.0);
        assert_eq!(eval.hastings, 1.0);
    }

    #[test]
    fn isolated_vertex_moves_freely() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1], 2);
        let counts = NeighborCounts::gather(&g, &bm, 3);
        let eval = evaluate_move(&bm, 1, 0, &counts);
        assert_eq!(eval.delta_mdl, 0.0);
        assert_eq!(eval.hastings, 1.0);
    }

    #[test]
    fn merge_delta_matches_brute_force() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (2, 3),
                (0, 0),
            ],
        );
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2], 3);
        let mut scratch = EvalScratch::default();
        for r in 0..3u32 {
            for s in 0..3u32 {
                if r == s {
                    continue;
                }
                let fast = delta_mdl_merge(&bm, r, s);
                let reused = delta_mdl_merge_with(&bm, r, s, &mut scratch);
                assert_eq!(fast.to_bits(), reused.to_bits());
                // Brute force: relabel r -> s, keep label space size (the
                // likelihood does not depend on empty blocks).
                let assignment: Vec<Block> = bm
                    .assignment()
                    .iter()
                    .map(|&b| if b == r { s } else { b })
                    .collect();
                let merged = Blockmodel::from_assignment(&g, assignment, 3);
                let slow = mdl::log_likelihood(&bm) - mdl::log_likelihood(&merged);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "merge {r}->{s}: fast {fast} vs slow {slow}"
                );
            }
        }
    }

    #[test]
    fn merge_is_symmetric_in_likelihood() {
        // Merging r into s or s into r yields the same merged model, so the
        // likelihood delta must match.
        let g = ring(9);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1, 2, 2, 2], 3);
        for (r, s) in [(0u32, 1u32), (1, 2), (0, 2)] {
            let a = delta_mdl_merge(&bm, r, s);
            let b = delta_mdl_merge(&bm, s, r);
            assert!((a - b).abs() < 1e-9, "merge {r}/{s}: {a} vs {b}");
        }
    }

    #[test]
    fn hastings_is_reciprocal_for_reverse_move() {
        // For deterministic states: hastings(v: r->s) * hastings(v: s->r on
        // the moved model) == 1 (p_bwd/p_fwd inverts).
        let g = ring(8);
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        let v = 1u32;
        let counts = NeighborCounts::gather(&g, &bm, v);
        let fwd = evaluate_move(&bm, 0, 1, &counts);
        bm.apply_move(v, 0, 1, &counts);
        let counts_back = NeighborCounts::gather(&g, &bm, v);
        let bwd = evaluate_move(&bm, 1, 0, &counts_back);
        assert!(
            (fwd.hastings * bwd.hastings - 1.0).abs() < 1e-9,
            "fwd {} bwd {}",
            fwd.hastings,
            bwd.hastings
        );
        // And the deltas must cancel.
        assert!((fwd.delta_mdl + bwd.delta_mdl).abs() < 1e-9);
    }
}
