//! O(degree) evaluation of the MDL change of a proposed vertex move or block
//! merge, plus the Hastings correction — all without mutating the model.
//!
//! A vertex move `v: r → s` only touches rows `r`, `s` and columns `r`, `s`
//! of `B` (and the four block degrees `d_out/d_in` of `r` and `s`), so the
//! likelihood delta is the difference of Eq.-1 terms over exactly those
//! entries. The same holds for a block merge. Correctness is enforced by
//! property tests comparing against a full recompute on a mutated clone.

use crate::mdl::log_likelihood_term;
use crate::model::{Block, Blockmodel};
use hsbp_collections::FxHashMap;
use hsbp_graph::{Graph, Vertex, Weight};

/// Census of a vertex's neighbourhood by block: how many edge endpoints `v`
/// has in each block, split by direction, with self-loops separated.
///
/// Gathered once per proposal and shared by the delta computation, the
/// Hastings correction and the in-place move application.
#[derive(Debug, Clone, Default)]
pub struct NeighborCounts {
    /// `(block, weight)` of out-edges `v -> u`, `u != v`.
    pub out_counts: Vec<(Block, Weight)>,
    /// `(block, weight)` of in-edges `u -> v`, `u != v`.
    pub in_counts: Vec<(Block, Weight)>,
    /// Total weight of self-loops `v -> v`.
    pub self_loops: Weight,
}

impl NeighborCounts {
    /// Gather for `v` using the model's own assignment.
    pub fn gather(graph: &Graph, bm: &Blockmodel, v: Vertex) -> Self {
        Self::gather_with(graph, bm.assignment(), v, &mut MoveScratch::default())
    }

    /// Gather for `v` against an explicit assignment (the per-sweep snapshot
    /// in A-SBP), reusing `scratch` buffers across calls.
    pub fn gather_with(
        graph: &Graph,
        assignment: &[Block],
        v: Vertex,
        scratch: &mut MoveScratch,
    ) -> Self {
        scratch.out_map.clear();
        scratch.in_map.clear();
        let mut self_loops: Weight = 0;
        for (u, w) in graph.out_edges(v) {
            if u == v {
                self_loops += w;
            } else {
                *scratch.out_map.entry(assignment[u as usize]).or_insert(0) += w;
            }
        }
        for (u, w) in graph.in_edges(v) {
            if u != v {
                *scratch.in_map.entry(assignment[u as usize]).or_insert(0) += w;
            }
        }
        let mut out_counts: Vec<(Block, Weight)> =
            scratch.out_map.iter().map(|(&b, &w)| (b, w)).collect();
        let mut in_counts: Vec<(Block, Weight)> =
            scratch.in_map.iter().map(|(&b, &w)| (b, w)).collect();
        // Sorted output keeps downstream arithmetic deterministic.
        out_counts.sort_unstable();
        in_counts.sort_unstable();
        NeighborCounts {
            out_counts,
            in_counts,
            self_loops,
        }
    }

    /// Total out-degree of the vertex (self-loops included).
    #[inline]
    pub fn k_out(&self) -> Weight {
        self.out_counts.iter().map(|&(_, w)| w).sum::<Weight>() + self.self_loops
    }

    /// Total in-degree of the vertex (self-loops included).
    #[inline]
    pub fn k_in(&self) -> Weight {
        self.in_counts.iter().map(|&(_, w)| w).sum::<Weight>() + self.self_loops
    }

    /// Total degree `k_out + k_in`.
    #[inline]
    pub fn degree(&self) -> Weight {
        self.k_out() + self.k_in()
    }
}

/// Reusable hash-map buffers for [`NeighborCounts::gather_with`].
#[derive(Debug, Default)]
pub struct MoveScratch {
    out_map: FxHashMap<Block, Weight>,
    in_map: FxHashMap<Block, Weight>,
}

/// Result of evaluating a proposed vertex move.
#[derive(Debug, Clone, Copy)]
pub struct MoveEval {
    /// `ΔMDL` (likelihood part; C is unchanged by a move). Negative is an
    /// improvement.
    pub delta_mdl: f64,
    /// Hastings factor `p_backward / p_forward` for the MH acceptance test.
    pub hastings: f64,
}

/// Signed working image of the four affected rows/cols of `B`.
struct AffectedState {
    row_from: FxHashMap<Block, i64>,
    row_to: FxHashMap<Block, i64>,
    /// Column entries `B[a][from]` for `a ∉ {from, to}`.
    col_from: FxHashMap<Block, i64>,
    /// Column entries `B[a][to]` for `a ∉ {from, to}`.
    col_to: FxHashMap<Block, i64>,
    d_out_from: i64,
    d_out_to: i64,
    d_in_from: i64,
    d_in_to: i64,
}

impl AffectedState {
    fn snapshot(bm: &Blockmodel, from: Block, to: Block) -> Self {
        let mut s = AffectedState {
            row_from: FxHashMap::default(),
            row_to: FxHashMap::default(),
            col_from: FxHashMap::default(),
            col_to: FxHashMap::default(),
            d_out_from: bm.d_out(from) as i64,
            d_out_to: bm.d_out(to) as i64,
            d_in_from: bm.d_in(from) as i64,
            d_in_to: bm.d_in(to) as i64,
        };
        for (t, w) in bm.row(from).iter() {
            s.row_from.insert(t, w as i64);
        }
        for (t, w) in bm.row(to).iter() {
            s.row_to.insert(t, w as i64);
        }
        for (a, w) in bm.col(from).iter() {
            if a != from && a != to {
                s.col_from.insert(a, w as i64);
            }
        }
        for (a, w) in bm.col(to).iter() {
            if a != from && a != to {
                s.col_to.insert(a, w as i64);
            }
        }
        s
    }

    /// Sum of Eq.-1 terms over the affected entries with the state's current
    /// values and degrees.
    fn likelihood_part(&self, bm: &Blockmodel, from: Block, to: Block) -> f64 {
        let d_in_of = |t: Block| -> f64 {
            if t == from {
                self.d_in_from as f64
            } else if t == to {
                self.d_in_to as f64
            } else {
                bm.d_in(t) as f64
            }
        };
        let mut total = 0.0;
        for (&t, &b) in &self.row_from {
            total += log_likelihood_term(b as f64, self.d_out_from as f64, d_in_of(t));
        }
        for (&t, &b) in &self.row_to {
            total += log_likelihood_term(b as f64, self.d_out_to as f64, d_in_of(t));
        }
        for (&a, &b) in &self.col_from {
            total += log_likelihood_term(b as f64, bm.d_out(a) as f64, self.d_in_from as f64);
        }
        for (&a, &b) in &self.col_to {
            total += log_likelihood_term(b as f64, bm.d_out(a) as f64, self.d_in_to as f64);
        }
        total
    }

    /// Mutate the image to reflect the move `v: from -> to`.
    fn apply(&mut self, counts: &NeighborCounts, from: Block, to: Block) {
        // Out-edges v -> (block t): B[from][t] -= w, B[to][t] += w.
        for &(t, w) in &counts.out_counts {
            let w = w as i64;
            *self.row_from.entry(t).or_insert(0) -= w;
            *self.row_to.entry(t).or_insert(0) += w;
        }
        // In-edges (block a) -> v: B[a][from] -= w, B[a][to] += w. When
        // a ∈ {from, to} the entry lives in a tracked *row*, otherwise in a
        // tracked column.
        for &(a, w) in &counts.in_counts {
            let w = w as i64;
            if a == from {
                *self.row_from.entry(from).or_insert(0) -= w;
                *self.row_from.entry(to).or_insert(0) += w;
            } else if a == to {
                *self.row_to.entry(from).or_insert(0) -= w;
                *self.row_to.entry(to).or_insert(0) += w;
            } else {
                *self.col_from.entry(a).or_insert(0) -= w;
                *self.col_to.entry(a).or_insert(0) += w;
            }
        }
        // Self-loops travel along the diagonal.
        if counts.self_loops > 0 {
            let w = counts.self_loops as i64;
            *self.row_from.entry(from).or_insert(0) -= w;
            *self.row_to.entry(to).or_insert(0) += w;
        }
        let k_out = counts.k_out() as i64;
        let k_in = counts.k_in() as i64;
        self.d_out_from -= k_out;
        self.d_out_to += k_out;
        self.d_in_from -= k_in;
        self.d_in_to += k_in;
        debug_assert!(self.d_out_from >= 0 && self.d_in_from >= 0);
        debug_assert!(
            self.row_from.values().all(|&b| b >= 0),
            "negative cell in row_from"
        );
        debug_assert!(
            self.row_to.values().all(|&b| b >= 0),
            "negative cell in row_to"
        );
    }

    /// `B[t][to] + B[to][t]` in the current image, for the Hastings sum.
    fn pair_mass(&self, bm: &Blockmodel, t: Block, target: Block, from: Block, to: Block) -> i64 {
        let get = |row: Block, col: Block| -> i64 {
            if row == from {
                self.row_from.get(&col).copied().unwrap_or(0)
            } else if row == to {
                self.row_to.get(&col).copied().unwrap_or(0)
            } else if col == from {
                self.col_from.get(&row).copied().unwrap_or(0)
            } else if col == to {
                self.col_to.get(&row).copied().unwrap_or(0)
            } else {
                bm.edge_count(row, col) as i64
            }
        };
        if t == target {
            // Diagonal cell counted once in each direction = twice.
            2 * get(t, t)
        } else {
            get(t, target) + get(target, t)
        }
    }

    fn d_total_of(&self, bm: &Blockmodel, t: Block, from: Block, to: Block) -> i64 {
        if t == from {
            self.d_out_from + self.d_in_from
        } else if t == to {
            self.d_out_to + self.d_in_to
        } else {
            bm.d_total(t) as i64
        }
    }
}

/// Evaluate a proposed move `v: from → to`: its MDL delta and Hastings
/// correction. `counts` must be gathered with `v` still in `from`.
///
/// The Hastings factor follows the graph-challenge reference: with the
/// neighbour-block census `{(t, k_t)}` of `v` (self-loops counted toward
/// `from`), `C = num_blocks`,
///
/// ```text
/// p_fwd = Σ_t k_t/k_v · (B[t][to]   + B[to][t]   + 1) / (d_t + C)    (old B)
/// p_bwd = Σ_t k_t/k_v · (B'[t][from] + B'[from][t] + 1) / (d'_t + C)  (new B)
/// ```
pub fn evaluate_move(bm: &Blockmodel, from: Block, to: Block, counts: &NeighborCounts) -> MoveEval {
    if from == to {
        return MoveEval {
            delta_mdl: 0.0,
            hastings: 1.0,
        };
    }
    let mut state = AffectedState::snapshot(bm, from, to);
    let old_part = state.likelihood_part(bm, from, to);

    // Combined neighbour-block census (both directions; self-loops toward
    // the *current* block of v, i.e. `from`).
    let mut census: FxHashMap<Block, Weight> = FxHashMap::default();
    for &(t, w) in counts.out_counts.iter().chain(counts.in_counts.iter()) {
        *census.entry(t).or_insert(0) += w;
    }
    if counts.self_loops > 0 {
        *census.entry(from).or_insert(0) += 2 * counts.self_loops;
    }
    let k_v: Weight = census.values().sum();
    let c = bm.num_blocks() as f64;

    // Forward probability uses the pre-move matrix.
    let mut p_fwd = 0.0;
    if k_v > 0 {
        for (&t, &k_t) in &census {
            let mass = if t == to {
                2 * bm.edge_count(to, to)
            } else {
                bm.edge_count(t, to) + bm.edge_count(to, t)
            };
            p_fwd += k_t as f64 * (mass as f64 + 1.0) / (bm.d_total(t) as f64 + c);
        }
        p_fwd /= k_v as f64;
    }

    state.apply(counts, from, to);
    let new_part = state.likelihood_part(bm, from, to);

    // Backward probability uses the post-move matrix (labels of the census
    // unchanged, matching the reference implementation).
    let mut p_bwd = 0.0;
    if k_v > 0 {
        for (&t, &k_t) in &census {
            let mass = state.pair_mass(bm, t, from, from, to);
            let d_t = state.d_total_of(bm, t, from, to);
            p_bwd += k_t as f64 * (mass as f64 + 1.0) / (d_t as f64 + c);
        }
        p_bwd /= k_v as f64;
    }

    let hastings = if p_fwd > 0.0 && k_v > 0 {
        p_bwd / p_fwd
    } else {
        1.0
    };
    MoveEval {
        delta_mdl: old_part - new_part,
        hastings,
    }
}

/// MDL delta (likelihood part) of moving `v: from → to`.
pub fn delta_mdl_move(bm: &Blockmodel, from: Block, to: Block, counts: &NeighborCounts) -> f64 {
    evaluate_move(bm, from, to, counts).delta_mdl
}

/// Likelihood-part MDL delta of merging block `r` into block `s`, computed
/// without touching the model. The (identical for every candidate) model
/// complexity change from `C → C−1` is *not* included; add
/// [`crate::mdl::model_complexity_delta`] for the full ΔMDL.
pub fn delta_mdl_merge(bm: &Blockmodel, r: Block, s: Block) -> f64 {
    if r == s {
        return 0.0;
    }
    // Old likelihood part: rows r, s fully; columns r, s excluding entries
    // already counted in those rows.
    let mut old_part = 0.0;
    for (t, b) in bm.row(r).iter() {
        old_part += log_likelihood_term(b as f64, bm.d_out(r) as f64, bm.d_in(t) as f64);
    }
    for (t, b) in bm.row(s).iter() {
        old_part += log_likelihood_term(b as f64, bm.d_out(s) as f64, bm.d_in(t) as f64);
    }
    for (a, b) in bm.col(r).iter() {
        if a != r && a != s {
            old_part += log_likelihood_term(b as f64, bm.d_out(a) as f64, bm.d_in(r) as f64);
        }
    }
    for (a, b) in bm.col(s).iter() {
        if a != r && a != s {
            old_part += log_likelihood_term(b as f64, bm.d_out(a) as f64, bm.d_in(s) as f64);
        }
    }

    // Merged row: row r + row s with key r folded into s.
    let mut new_row: FxHashMap<Block, Weight> = FxHashMap::default();
    for (t, b) in bm.row(r).iter().chain(bm.row(s).iter()) {
        let key = if t == r { s } else { t };
        *new_row.entry(key).or_insert(0) += b;
    }
    // Merged column, excluding rows r and s (their mass is in new_row).
    let mut new_col: FxHashMap<Block, Weight> = FxHashMap::default();
    for (a, b) in bm.col(r).iter().chain(bm.col(s).iter()) {
        if a != r && a != s {
            *new_col.entry(a).or_insert(0) += b;
        }
    }
    let d_out_merged = (bm.d_out(r) + bm.d_out(s)) as f64;
    let d_in_merged = (bm.d_in(r) + bm.d_in(s)) as f64;
    let d_in_of = |t: Block| -> f64 {
        if t == s {
            d_in_merged
        } else {
            bm.d_in(t) as f64
        }
    };

    let mut new_part = 0.0;
    for (&t, &b) in &new_row {
        new_part += log_likelihood_term(b as f64, d_out_merged, d_in_of(t));
    }
    for (&a, &b) in &new_col {
        new_part += log_likelihood_term(b as f64, bm.d_out(a) as f64, d_in_merged);
    }
    old_part - new_part
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::mdl;
    use hsbp_graph::Graph;

    fn ring(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Graph::from_edges(n as usize, &edges)
    }

    fn brute_force_delta(graph: &Graph, bm: &Blockmodel, v: Vertex, to: Block) -> f64 {
        let mut assignment = bm.assignment().to_vec();
        assignment[v as usize] = to;
        let moved = Blockmodel::from_assignment(graph, assignment, bm.num_blocks());
        mdl::log_likelihood(bm) - mdl::log_likelihood(&moved)
    }

    #[test]
    fn gather_counts_directions() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (3, 0), (0, 0)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 1, 1, 2], 3);
        let counts = NeighborCounts::gather(&g, &bm, 0);
        assert_eq!(counts.out_counts, vec![(1, 2)]);
        assert_eq!(counts.in_counts, vec![(2, 1)]);
        assert_eq!(counts.self_loops, 1);
        assert_eq!(counts.k_out(), 3);
        assert_eq!(counts.k_in(), 2);
        assert_eq!(counts.degree(), 5);
    }

    #[test]
    fn delta_matches_brute_force_on_ring() {
        let g = ring(8);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        for v in 0..8u32 {
            let from = bm.block_of(v);
            let counts = NeighborCounts::gather(&g, &bm, v);
            for to in 0..4u32 {
                if to == from {
                    continue;
                }
                let fast = delta_mdl_move(&bm, from, to, &counts);
                let slow = brute_force_delta(&g, &bm, v, to);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "v={v} {from}->{to}: fast {fast} vs slow {slow}"
                );
            }
        }
    }

    #[test]
    fn delta_with_self_loops() {
        let g = Graph::from_edges(4, &[(0, 0), (0, 1), (1, 0), (2, 3), (3, 2), (3, 3), (1, 2)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1], 2);
        for v in 0..4u32 {
            let from = bm.block_of(v);
            let to = 1 - from;
            let counts = NeighborCounts::gather(&g, &bm, v);
            let fast = delta_mdl_move(&bm, from, to, &counts);
            let slow = brute_force_delta(&g, &bm, v, to);
            assert!(
                (fast - slow).abs() < 1e-9,
                "v={v}: fast {fast} vs slow {slow}"
            );
        }
    }

    #[test]
    fn delta_zero_for_null_move() {
        let g = ring(6);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let counts = NeighborCounts::gather(&g, &bm, 0);
        let eval = evaluate_move(&bm, 0, 0, &counts);
        assert_eq!(eval.delta_mdl, 0.0);
        assert_eq!(eval.hastings, 1.0);
    }

    #[test]
    fn isolated_vertex_moves_freely() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1], 2);
        let counts = NeighborCounts::gather(&g, &bm, 3);
        let eval = evaluate_move(&bm, 1, 0, &counts);
        assert_eq!(eval.delta_mdl, 0.0);
        assert_eq!(eval.hastings, 1.0);
    }

    #[test]
    fn merge_delta_matches_brute_force() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (2, 3),
                (0, 0),
            ],
        );
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2], 3);
        for r in 0..3u32 {
            for s in 0..3u32 {
                if r == s {
                    continue;
                }
                let fast = delta_mdl_merge(&bm, r, s);
                // Brute force: relabel r -> s, keep label space size (the
                // likelihood does not depend on empty blocks).
                let assignment: Vec<Block> = bm
                    .assignment()
                    .iter()
                    .map(|&b| if b == r { s } else { b })
                    .collect();
                let merged = Blockmodel::from_assignment(&g, assignment, 3);
                let slow = mdl::log_likelihood(&bm) - mdl::log_likelihood(&merged);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "merge {r}->{s}: fast {fast} vs slow {slow}"
                );
            }
        }
    }

    #[test]
    fn merge_is_symmetric_in_likelihood() {
        // Merging r into s or s into r yields the same merged model, so the
        // likelihood delta must match.
        let g = ring(9);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1, 2, 2, 2], 3);
        for (r, s) in [(0u32, 1u32), (1, 2), (0, 2)] {
            let a = delta_mdl_merge(&bm, r, s);
            let b = delta_mdl_merge(&bm, s, r);
            assert!((a - b).abs() < 1e-9, "merge {r}/{s}: {a} vs {b}");
        }
    }

    #[test]
    fn hastings_is_reciprocal_for_reverse_move() {
        // For deterministic states: hastings(v: r->s) * hastings(v: s->r on
        // the moved model) == 1 (p_bwd/p_fwd inverts).
        let g = ring(8);
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 2, 2, 3, 3], 4);
        let v = 1u32;
        let counts = NeighborCounts::gather(&g, &bm, v);
        let fwd = evaluate_move(&bm, 0, 1, &counts);
        bm.apply_move(v, 0, 1, &counts);
        let counts_back = NeighborCounts::gather(&g, &bm, v);
        let bwd = evaluate_move(&bm, 1, 0, &counts_back);
        assert!(
            (fwd.hastings * bwd.hastings - 1.0).abs() < 1e-9,
            "fwd {} bwd {}",
            fwd.hastings,
            bwd.hastings
        );
        // And the deltas must cancel.
        assert!((fwd.delta_mdl + bwd.delta_mdl).abs() < 1e-9);
    }
}
