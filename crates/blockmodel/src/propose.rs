//! Metropolis-Hastings proposal distribution over target blocks.
//!
//! Follows the graph-challenge / Peixoto scheme the paper's SBP baseline
//! uses. To propose a new block for vertex `v` (or merge target for block
//! `r`) with `C` blocks:
//!
//! 1. pick a uniformly random incident edge of `v`; let `t` be the block of
//!    the neighbour,
//! 2. with probability `C / (d_t + C)` propose a uniformly random block
//!    (exploration — dominates when `t` has few edges),
//! 3. otherwise propose a block drawn from the edges incident on block `t`
//!    (row `t` ∪ column `t` of `B`, weighted by edge count).
//!
//! Step 3 concentrates proposals on blocks already well connected to the
//! vertex's neighbourhood, which is what makes SBP converge in a reasonable
//! number of sweeps.

use crate::delta::{MoveEval, NeighborCounts};
use crate::model::{Block, Blockmodel};
use hsbp_collections::{AliasTable, SplitMix64};
use hsbp_graph::{Graph, Vertex};

/// Per-block O(1) samplers over the block-neighbour distributions (row `t`
/// ∪ column `t` of `B`, weighted by edge count), for paths that propose
/// repeatedly against a *frozen* model: A-SBP sweeps, H-SBP's parallel
/// tail, and the merge phase's candidate search. One O(nnz(B)) build
/// amortises over `O(n)` draws per sweep (or `C × proposals` per merge
/// round), replacing the serial path's O(nnz) linear scan per draw with an
/// alias-method draw.
///
/// The distribution is identical to [`propose_block`]'s step 3; only the
/// RNG consumption pattern differs, so frozen-path trajectories are
/// deterministic per seed but not bit-equal to the serial scan's.
#[derive(Debug, Clone, Default)]
pub struct BlockNeighborSampler {
    /// Per block: alias table over the concatenated row ∪ column entries
    /// plus the block-id decode vector. `None` for edgeless blocks.
    tables: Vec<Option<(AliasTable, Vec<Block>)>>,
}

impl BlockNeighborSampler {
    /// Snapshot the frozen model's block-neighbour distributions.
    pub fn build(bm: &Blockmodel) -> Self {
        let mut tables = Vec::with_capacity(bm.num_blocks());
        let mut weights: Vec<f64> = Vec::new();
        for t in 0..bm.num_blocks() as Block {
            let mut keys: Vec<Block> = Vec::new();
            weights.clear();
            for (s, w) in bm.row(t).iter().chain(bm.col(t).iter()) {
                keys.push(s);
                weights.push(w as f64);
            }
            tables.push(AliasTable::new(&weights).map(|table| (table, keys)));
        }
        Self { tables }
    }

    /// Draw a block from block `t`'s edge-weighted neighbourhood in O(1);
    /// `None` if the block has no edges (matches
    /// `sample_block_neighbor`'s contract).
    #[inline]
    pub fn sample(&self, t: Block, rng: &mut SplitMix64) -> Option<Block> {
        self.tables[t as usize]
            .as_ref()
            .map(|(table, keys)| keys[table.sample(rng)])
    }
}

/// Draw a uniformly random incident edge of `v` (weight-aware) and return
/// the neighbour. `None` if `v` has no incident edges.
fn random_incident_neighbor(graph: &Graph, v: Vertex, rng: &mut SplitMix64) -> Option<Vertex> {
    let arity = graph.incident_arity(v);
    if arity == 0 {
        return None;
    }
    // Fast path: unweighted slot selection. Collapsed parallel edges carry
    // weight > 1; fall back to weighted selection in that case.
    let degree = graph.degree(v);
    if degree as usize == arity {
        let k = rng.next_below(arity as u64) as usize;
        let (u, _, _) = graph.incident_edge(v, k);
        return Some(u);
    }
    let mut x = rng.next_below(degree);
    for (u, w) in graph.out_edges(v).chain(graph.in_edges(v)) {
        if x < w {
            return Some(u);
        }
        x -= w;
    }
    unreachable!("weighted incident selection overran degree");
}

/// Draw a block from the edges incident on block `t` (row `t` ∪ column `t`
/// of `B`, weighted by count). `None` if block `t` has no edges.
fn sample_block_neighbor(bm: &Blockmodel, t: Block, rng: &mut SplitMix64) -> Option<Block> {
    let d_t = bm.d_total(t);
    if d_t == 0 {
        return None;
    }
    let mut x = rng.next_below(d_t);
    for (s, w) in bm.row(t).iter() {
        if x < w {
            return Some(s);
        }
        x -= w;
    }
    for (s, w) in bm.col(t).iter() {
        if x < w {
            return Some(s);
        }
        x -= w;
    }
    unreachable!("block-neighbour selection overran d_total");
}

/// Propose a new block for vertex `v` whose neighbours are labelled by
/// `assignment` (the sweep snapshot in A-SBP; `bm.assignment()` in serial
/// SBP). May return `v`'s own block — callers treat that as a null move.
pub fn propose_block(
    graph: &Graph,
    bm: &Blockmodel,
    assignment: &[Block],
    v: Vertex,
    rng: &mut SplitMix64,
) -> Block {
    let c = bm.num_blocks() as u64;
    debug_assert!(c > 0);
    let uniform = |rng: &mut SplitMix64| rng.next_below(c) as Block;
    match random_incident_neighbor(graph, v, rng) {
        None => uniform(rng),
        Some(u) => {
            let t = assignment[u as usize];
            let d_t = bm.d_total(t);
            // Exploration vs exploitation mixture.
            if rng.next_f64() < c as f64 / (d_t as f64 + c as f64) {
                uniform(rng)
            } else {
                sample_block_neighbor(bm, t, rng).unwrap_or_else(|| uniform(rng))
            }
        }
    }
}

/// [`propose_block`] against a frozen model, drawing step 3 from a
/// prebuilt [`BlockNeighborSampler`] instead of a linear scan over the
/// block matrix. Same proposal distribution; O(1) per draw.
pub fn propose_block_frozen(
    graph: &Graph,
    bm: &Blockmodel,
    sampler: &BlockNeighborSampler,
    assignment: &[Block],
    v: Vertex,
    rng: &mut SplitMix64,
) -> Block {
    let c = bm.num_blocks() as u64;
    debug_assert!(c > 0);
    let uniform = |rng: &mut SplitMix64| rng.next_below(c) as Block;
    match random_incident_neighbor(graph, v, rng) {
        None => uniform(rng),
        Some(u) => {
            let t = assignment[u as usize];
            let d_t = bm.d_total(t);
            if rng.next_f64() < c as f64 / (d_t as f64 + c as f64) {
                uniform(rng)
            } else {
                sampler.sample(t, rng).unwrap_or_else(|| uniform(rng))
            }
        }
    }
}

/// Propose a merge target for block `r` (the block-level analogue of
/// [`propose_block`], used by Algorithm 1). May return `r` itself.
pub fn propose_merge_target(bm: &Blockmodel, r: Block, rng: &mut SplitMix64) -> Block {
    let c = bm.num_blocks() as u64;
    let uniform = |rng: &mut SplitMix64| rng.next_below(c) as Block;
    match sample_block_neighbor(bm, r, rng) {
        None => uniform(rng),
        Some(t) => {
            let d_t = bm.d_total(t);
            if rng.next_f64() < c as f64 / (d_t as f64 + c as f64) {
                uniform(rng)
            } else {
                sample_block_neighbor(bm, t, rng).unwrap_or_else(|| uniform(rng))
            }
        }
    }
}

/// [`propose_merge_target`] against a frozen model via a prebuilt
/// [`BlockNeighborSampler`] — the merge phase evaluates
/// `C × merge_proposals_per_block` candidates against one frozen model per
/// round, so the O(nnz(B)) build amortises to O(1) per candidate.
pub fn propose_merge_target_frozen(
    bm: &Blockmodel,
    sampler: &BlockNeighborSampler,
    r: Block,
    rng: &mut SplitMix64,
) -> Block {
    let c = bm.num_blocks() as u64;
    let uniform = |rng: &mut SplitMix64| rng.next_below(c) as Block;
    match sampler.sample(r, rng) {
        None => uniform(rng),
        Some(t) => {
            let d_t = bm.d_total(t);
            if rng.next_f64() < c as f64 / (d_t as f64 + c as f64) {
                uniform(rng)
            } else {
                sampler.sample(t, rng).unwrap_or_else(|| uniform(rng))
            }
        }
    }
}

/// The Hastings correction of a proposed move, re-exported from the combined
/// evaluation for callers that only need the factor.
pub fn hastings_correction(
    bm: &Blockmodel,
    from: Block,
    to: Block,
    counts: &NeighborCounts,
) -> f64 {
    crate::delta::evaluate_move(bm, from, to, counts).hastings
}

/// Metropolis-Hastings acceptance test: accept with probability
/// `min(1, exp(−β·ΔMDL) · hastings)`.
pub fn accept_move(eval: &MoveEval, beta: f64, rng: &mut SplitMix64) -> bool {
    // Clamp the exponent to avoid inf/0 surprises on pathological deltas.
    let exponent = (-beta * eval.delta_mdl).clamp(-700.0, 700.0);
    let p = exponent.exp() * eval.hastings;
    p >= 1.0 || rng.next_f64() < p
}

/// Degree of "exploration" in the proposal: probability that a proposal for
/// a vertex adjacent to block `t` is drawn uniformly. Exposed for tests and
/// diagnostics.
pub fn exploration_probability(bm: &Blockmodel, t: Block) -> f64 {
    let c = bm.num_blocks() as f64;
    c / (bm.d_total(t) as f64 + c)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::delta::evaluate_move;
    use hsbp_graph::Graph;

    fn two_cliques() -> (Graph, Blockmodel) {
        let mut edges = Vec::new();
        for group in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
            for &a in &group {
                for &b in &group {
                    if a != b {
                        edges.push((a, b));
                    }
                }
            }
        }
        edges.push((3, 4));
        let g = Graph::from_edges(8, &edges);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        (g, bm)
    }

    #[test]
    fn proposals_land_in_valid_range() {
        let (g, bm) = two_cliques();
        let mut rng = SplitMix64::new(1);
        for v in 0..8u32 {
            for _ in 0..50 {
                let b = propose_block(&g, &bm, bm.assignment(), v, &mut rng);
                assert!((b as usize) < bm.num_blocks());
            }
        }
    }

    #[test]
    fn proposals_favor_own_community() {
        // In a strong 2-community graph, proposals for a clique vertex should
        // overwhelmingly name its own block.
        let (g, bm) = two_cliques();
        let mut rng = SplitMix64::new(7);
        let mut own = 0;
        let trials = 2000;
        for _ in 0..trials {
            let b = propose_block(&g, &bm, bm.assignment(), 0, &mut rng);
            if b == 0 {
                own += 1;
            }
        }
        assert!(
            own > trials / 2,
            "only {own}/{trials} proposals named the home block"
        );
    }

    #[test]
    fn isolated_vertex_gets_uniform_proposals() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 0)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 1], 2);
        let mut rng = SplitMix64::new(3);
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[propose_block(&g, &bm, bm.assignment(), 4, &mut rng) as usize] += 1;
        }
        // Uniform over 2 blocks: both seen plenty.
        assert!(counts[0] > 700 && counts[1] > 700, "{counts:?}");
    }

    #[test]
    fn merge_targets_valid() {
        let (_, bm) = two_cliques();
        let mut rng = SplitMix64::new(5);
        for r in 0..2u32 {
            for _ in 0..50 {
                let t = propose_merge_target(&bm, r, &mut rng);
                assert!((t as usize) < bm.num_blocks());
            }
        }
    }

    #[test]
    fn accept_always_takes_clear_improvements() {
        let eval = MoveEval {
            delta_mdl: -10.0,
            hastings: 1.0,
        };
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(accept_move(&eval, 3.0, &mut rng));
        }
    }

    #[test]
    fn accept_rejects_terrible_moves_usually() {
        let eval = MoveEval {
            delta_mdl: 50.0,
            hastings: 1.0,
        };
        let mut rng = SplitMix64::new(2);
        let accepted = (0..1000)
            .filter(|_| accept_move(&eval, 3.0, &mut rng))
            .count();
        assert_eq!(accepted, 0, "exp(-150) acceptance should never fire");
    }

    #[test]
    fn accept_rate_matches_probability() {
        // delta such that exp(-beta*delta) = 0.5 at beta = 1.
        let eval = MoveEval {
            delta_mdl: std::f64::consts::LN_2,
            hastings: 1.0,
        };
        let mut rng = SplitMix64::new(9);
        let n = 40_000;
        let accepted = (0..n).filter(|_| accept_move(&eval, 1.0, &mut rng)).count();
        let rate = accepted as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn accept_extreme_delta_no_panic() {
        let mut rng = SplitMix64::new(4);
        let good = MoveEval {
            delta_mdl: -1e9,
            hastings: 1.0,
        };
        assert!(accept_move(&good, 3.0, &mut rng));
        let bad = MoveEval {
            delta_mdl: 1e9,
            hastings: 1.0,
        };
        assert!(!accept_move(&bad, 3.0, &mut rng));
    }

    #[test]
    fn exploration_probability_shrinks_with_degree() {
        let (_, bm) = two_cliques();
        let p = exploration_probability(&bm, 0);
        assert!(p > 0.0 && p < 1.0);
        // d_total(0) = 12 within + 1 bridge out = 25? (12 out + 13 in) —
        // exact value irrelevant; just check monotonicity vs an empty block.
        let g2 = Graph::from_edges(3, &[(0, 1)]);
        let bm2 = Blockmodel::from_assignment(&g2, vec![0, 0, 1], 2);
        assert_eq!(exploration_probability(&bm2, 1), 1.0); // empty block: always uniform
    }

    #[test]
    fn alias_sampler_matches_linear_scan_distribution() {
        // The alias tables must reproduce sample_block_neighbor's
        // edge-weighted distribution: tally both over many draws and
        // compare frequencies per (source block, target block) cell.
        let (_, bm) = two_cliques();
        let sampler = BlockNeighborSampler::build(&bm);
        let trials = 40_000u32;
        for t in 0..bm.num_blocks() as Block {
            let mut scan = vec![0u32; bm.num_blocks()];
            let mut alias = vec![0u32; bm.num_blocks()];
            let mut rng = SplitMix64::new(11 + u64::from(t));
            for _ in 0..trials {
                scan[sample_block_neighbor(&bm, t, &mut rng).unwrap() as usize] += 1;
                alias[sampler.sample(t, &mut rng).unwrap() as usize] += 1;
            }
            for s in 0..bm.num_blocks() {
                let diff = (f64::from(scan[s]) - f64::from(alias[s])).abs() / f64::from(trials);
                assert!(
                    diff < 0.02,
                    "block {t}->{s}: scan {} vs alias {}",
                    scan[s],
                    alias[s]
                );
            }
        }
    }

    #[test]
    fn frozen_proposals_land_in_valid_range_and_favor_home() {
        let (g, bm) = two_cliques();
        let sampler = BlockNeighborSampler::build(&bm);
        let mut rng = SplitMix64::new(21);
        let mut own = 0;
        let trials = 2000;
        for _ in 0..trials {
            let b = propose_block_frozen(&g, &bm, &sampler, bm.assignment(), 0, &mut rng);
            assert!((b as usize) < bm.num_blocks());
            if b == 0 {
                own += 1;
            }
        }
        assert!(own > trials / 2, "only {own}/{trials} named the home block");
        for r in 0..2u32 {
            for _ in 0..50 {
                let t = propose_merge_target_frozen(&bm, &sampler, r, &mut rng);
                assert!((t as usize) < bm.num_blocks());
            }
        }
    }

    #[test]
    fn sampler_handles_edgeless_blocks() {
        // Block 1 has no incident edges: sampler returns None and the frozen
        // proposal falls back to uniform.
        let g = Graph::from_edges(3, &[(0, 1)]);
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 1], 2);
        let sampler = BlockNeighborSampler::build(&bm);
        let mut rng = SplitMix64::new(8);
        assert_eq!(sampler.sample(1, &mut rng), None);
        assert!(sampler.sample(0, &mut rng).is_some());
    }

    #[test]
    fn hastings_wrapper_matches_eval() {
        let (g, bm) = two_cliques();
        let counts = NeighborCounts::gather(&g, &bm, 3);
        let h = hastings_correction(&bm, 0, 1, &counts);
        let eval = evaluate_move(&bm, 0, 1, &counts);
        assert_eq!(h, eval.hastings);
    }
}
