//! Drift audit for the incrementally-maintained blockmodel.
//!
//! The MCMC phases keep `B`, the degree caches, and the block sizes up to
//! date via per-move deltas (`apply_move`) and per-sweep rebuilds; the MDL
//! trajectory the driver optimises is only correct while that incremental
//! state matches what [`Blockmodel::from_assignment`] would build from the
//! membership vector. [`audit_blockmodel`] is the runtime enforcement of
//! that invariant: rebuild from membership, compare every component, and
//! report exactly what diverged (plus the induced MDL error) so the caller
//! can repair in place ([`repair_blockmodel`]) or abort.
//!
//! The audit is read-only: on a healthy model it allocates a scratch
//! rebuild, compares, and drops it — it never perturbs the run, so audited
//! and unaudited healthy runs are bit-identical.

use crate::mdl;
use crate::model::Blockmodel;
use hsbp_graph::Graph;

/// What a drift audit found: the mismatched components and the MDL error
/// the drift introduces.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// One human-readable line per mismatched component (row, column,
    /// degree cache, block size, or internal row/column-total coherence).
    pub mismatches: Vec<String>,
    /// `|MDL(drifted state) − MDL(rebuilt state)|`.
    pub mdl_delta: f64,
}

impl DriftReport {
    /// One-line summary suitable for `HsbpError::StateDrift`.
    pub fn summary(&self) -> String {
        let shown = self
            .mismatches
            .iter()
            .take(3)
            .cloned()
            .collect::<Vec<_>>()
            .join(", ");
        let suffix = if self.mismatches.len() > 3 {
            format!(" (+{} more)", self.mismatches.len() - 3)
        } else {
            String::new()
        };
        format!(
            "{} mismatched component(s): {shown}{suffix}; |ΔMDL| = {:.3e}",
            self.mismatches.len(),
            self.mdl_delta
        )
    }
}

/// Rebuild the blockmodel from `bm`'s membership vector and compare every
/// component against the incrementally-maintained state. Returns `None`
/// when the state is exact, or a [`DriftReport`] listing **all** divergent
/// components otherwise.
pub fn audit_blockmodel(bm: &Blockmodel, graph: &Graph) -> Option<DriftReport> {
    let fresh = Blockmodel::from_assignment(graph, bm.assignment().to_vec(), bm.num_blocks());
    let mut mismatches = Vec::new();
    for r in 0..bm.num_blocks() as u32 {
        if bm.row(r).to_sorted_vec() != fresh.row(r).to_sorted_vec() {
            mismatches.push(format!("row {r} mismatch"));
        }
        if bm.col(r).to_sorted_vec() != fresh.col(r).to_sorted_vec() {
            mismatches.push(format!("col {r} mismatch"));
        }
        if bm.d_out(r) != fresh.d_out(r) {
            mismatches.push(format!("d_out[{r}] {} != {}", bm.d_out(r), fresh.d_out(r)));
        }
        if bm.d_in(r) != fresh.d_in(r) {
            mismatches.push(format!("d_in[{r}] {} != {}", bm.d_in(r), fresh.d_in(r)));
        }
        if bm.block_size(r) != fresh.block_size(r) {
            mismatches.push(format!("size[{r}] mismatch"));
        }
        if bm.d_out(r) != bm.row(r).total() {
            mismatches.push(format!("d_out[{r}] != row total"));
        }
        if bm.d_in(r) != bm.col(r).total() {
            mismatches.push(format!("d_in[{r}] != col total"));
        }
    }
    if mismatches.is_empty() {
        return None;
    }
    let drifted = mdl::mdl(bm, graph.num_vertices(), graph.total_weight()).total;
    let exact = mdl::mdl(&fresh, graph.num_vertices(), graph.total_weight()).total;
    Some(DriftReport {
        mismatches,
        mdl_delta: (drifted - exact).abs(),
    })
}

/// Repair a drifted model in place: rebuild `B`, the degree caches, and the
/// block sizes from the membership vector (which the audit treats as ground
/// truth — it is the only component the MCMC phases also maintain
/// non-incrementally).
pub fn repair_blockmodel(bm: &mut Blockmodel, graph: &Graph) {
    let assignment = bm.assignment_snapshot();
    bm.rebuild(graph, assignment);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for group in [[0u32, 1, 2], [3, 4, 5]] {
            for &a in &group {
                for &b in &group {
                    if a != b {
                        edges.push((a, b));
                    }
                }
            }
        }
        edges.push((2, 3));
        Graph::from_edges(6, &edges)
    }

    #[test]
    fn healthy_model_passes_audit() {
        let g = two_cliques();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        assert!(audit_blockmodel(&bm, &g).is_none());
    }

    #[test]
    fn injected_corruption_is_detected_and_repaired() {
        let g = two_cliques();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        assert!(bm.inject_state_corruption(42));
        let report = audit_blockmodel(&bm, &g).expect("corruption must be detected");
        assert!(!report.mismatches.is_empty());
        assert!(report.mdl_delta > 0.0);
        assert!(!report.summary().is_empty());
        repair_blockmodel(&mut bm, &g);
        assert!(audit_blockmodel(&bm, &g).is_none());
        bm.check_consistency(&g).unwrap();
    }

    #[test]
    fn corruption_injection_is_deterministic() {
        let g = two_cliques();
        let mut a = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let mut b = a.clone();
        assert!(a.inject_state_corruption(7));
        assert!(b.inject_state_corruption(7));
        for r in 0..2u32 {
            assert_eq!(a.row(r).to_sorted_vec(), b.row(r).to_sorted_vec());
            assert_eq!(a.d_out(r), b.d_out(r));
        }
    }

    #[test]
    fn corruption_preserves_membership() {
        let g = two_cliques();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let before = bm.assignment_snapshot();
        bm.inject_state_corruption(3);
        assert_eq!(bm.assignment(), &before[..]);
    }

    #[test]
    fn empty_model_cannot_be_corrupted() {
        let g = Graph::from_edges(0, &[]);
        let mut bm = Blockmodel::from_assignment(&g, vec![], 0);
        assert!(!bm.inject_state_corruption(1));
        assert!(audit_blockmodel(&bm, &g).is_none());
    }
}
