//! Minimum description length of the DCSBM (Eqs. 1 and 2 of the paper).
//!
//! * Eq. 1: `L(G|B) = Σ_{rs} B_rs · ln( B_rs / (d_out_r · d_in_s) )`
//! * Eq. 2: `MDL = E·h(C²/E) + V·ln C − L(G|B)` with
//!   `h(x) = (1+x)·ln(1+x) − x·ln x`.
//!
//! Lower MDL = better model. The *null* MDL puts every vertex in one block;
//! the paper's normalized MDL is `MDL / MDL_null` and is comparable across
//! graphs.

use crate::fastmath::{ExactKernel, MathMode, MdlKernel, TableKernel};
use crate::model::Blockmodel;

/// `h(x) = (1+x)ln(1+x) − x·ln x`, the binary-entropy-like term of Eq. 2.
/// Defined as 0 at `x = 0` (its limit).
#[inline]
pub fn dcsbm_entropy_term(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        (1.0 + x) * (1.0 + x).ln() - x * x.ln()
    }
}

/// One cell's contribution to `L(G|B)`: `b·ln(b/(d_out·d_in))`, 0 when the
/// cell is empty.
#[inline]
pub fn log_likelihood_term(b: f64, d_out: f64, d_in: f64) -> f64 {
    if b <= 0.0 {
        0.0
    } else {
        debug_assert!(
            d_out > 0.0 && d_in > 0.0,
            "non-empty cell with zero block degree"
        );
        b * (b.ln() - d_out.ln() - d_in.ln())
    }
}

/// [`dcsbm_entropy_term`] computed under a [`MathMode`]: `Exact` is the
/// function above, `Table` serves integer arguments from the precomputed
/// `x·ln x` table (bit-identical there, exact fallback otherwise).
#[inline]
pub fn dcsbm_entropy_term_mode(x: f64, mode: MathMode) -> f64 {
    match mode {
        MathMode::Exact => ExactKernel::entropy_term(x),
        MathMode::Table => TableKernel::entropy_term(x),
    }
}

/// [`log_likelihood_term`] computed under a [`MathMode`]: `Exact` is the
/// function above, `Table` serves integer counts/degrees from the
/// precomputed `ln` table (bit-identical there, exact fallback otherwise).
#[inline]
pub fn log_likelihood_term_mode(b: f64, d_out: f64, d_in: f64, mode: MathMode) -> f64 {
    match mode {
        MathMode::Exact => ExactKernel::ll_term(b, d_out, d_in),
        MathMode::Table => TableKernel::ll_term(b, d_out, d_in),
    }
}

/// Description-length summary of a fitted blockmodel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mdl {
    /// `L(G|B)` — Eq. 1 (non-positive).
    pub log_likelihood: f64,
    /// `E·h(C²/E) + V·ln C` — the model complexity part of Eq. 2.
    pub model_complexity: f64,
    /// Full MDL — Eq. 2.
    pub total: f64,
}

/// `L(G|B)` over all non-zero cells of `B` (Eq. 1).
pub fn log_likelihood(bm: &Blockmodel) -> f64 {
    let mut total = 0.0;
    for r in 0..bm.num_blocks() as u32 {
        let d_out = bm.d_out(r) as f64;
        for (s, b) in bm.row(r).iter() {
            total += log_likelihood_term(b as f64, d_out, bm.d_in(s) as f64);
        }
    }
    total
}

/// Model complexity: `E·h(C²/E) + V·ln C`.
pub fn model_complexity(num_vertices: usize, num_edges: u64, num_blocks: usize) -> f64 {
    if num_edges == 0 || num_blocks == 0 {
        return 0.0;
    }
    let e = num_edges as f64;
    let c = num_blocks as f64;
    e * dcsbm_entropy_term(c * c / e) + num_vertices as f64 * c.ln()
}

/// Full MDL (Eq. 2) of a fitted blockmodel.
pub fn mdl(bm: &Blockmodel, num_vertices: usize, num_edges: u64) -> Mdl {
    let ll = log_likelihood(bm);
    let mc = model_complexity(num_vertices, num_edges, bm.num_blocks());
    Mdl {
        log_likelihood: ll,
        model_complexity: mc,
        total: mc - ll,
    }
}

/// MDL of the structure-less null model (all vertices in one block).
///
/// With `C = 1`: `B₁₁ = E`, `d_out = d_in = E`, so `L = E·ln(1/E)` and
/// `MDL_null = E·h(1/E) + E·ln E`.
pub fn null_mdl(num_edges: u64) -> f64 {
    if num_edges == 0 {
        return 0.0;
    }
    let e = num_edges as f64;
    e * dcsbm_entropy_term(1.0 / e) + e * e.ln()
}

/// Change in the model-complexity part of the MDL when the number of blocks
/// goes from `c` to `c_new` (used to turn a merge's likelihood delta into a
/// full MDL delta).
pub fn model_complexity_delta(num_vertices: usize, num_edges: u64, c: usize, c_new: usize) -> f64 {
    model_complexity(num_vertices, num_edges, c_new) - model_complexity(num_vertices, num_edges, c)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hsbp_graph::Graph;

    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for group in [[0u32, 1, 2], [3, 4, 5]] {
            for &a in &group {
                for &b in &group {
                    if a != b {
                        edges.push((a, b));
                    }
                }
            }
        }
        edges.push((2, 3));
        Graph::from_edges(6, &edges)
    }

    #[test]
    fn entropy_term_limits() {
        assert_eq!(dcsbm_entropy_term(0.0), 0.0);
        // h(1) = 2 ln 2
        assert!((dcsbm_entropy_term(1.0) - 2.0 * 2f64.ln()).abs() < 1e-12);
        // h is increasing on (0, inf)
        assert!(dcsbm_entropy_term(2.0) > dcsbm_entropy_term(1.0));
    }

    #[test]
    fn likelihood_term_zero_cell() {
        assert_eq!(log_likelihood_term(0.0, 5.0, 5.0), 0.0);
    }

    #[test]
    fn mode_variants_agree_on_hot_path_arguments() {
        for mode in [MathMode::Exact, MathMode::Table] {
            assert_eq!(
                log_likelihood_term_mode(4.0, 12.0, 9.0, mode).to_bits(),
                log_likelihood_term(4.0, 12.0, 9.0).to_bits()
            );
            assert_eq!(log_likelihood_term_mode(0.0, 5.0, 5.0, mode), 0.0);
            assert_eq!(
                dcsbm_entropy_term_mode(3.0, mode).to_bits(),
                dcsbm_entropy_term(3.0).to_bits()
            );
            // Fractional argument (the C²/E shape) stays within 1e-12.
            let x = 0.734_218;
            assert!((dcsbm_entropy_term_mode(x, mode) - dcsbm_entropy_term(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn log_likelihood_is_nonpositive() {
        // B_rs <= d_out_r and B_rs <= d_in_s, so each ratio <= 1 whenever
        // d_out, d_in >= 1 and the log is <= 0.
        let g = two_cliques();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        assert!(log_likelihood(&bm) <= 0.0);
    }

    #[test]
    fn null_mdl_matches_single_block_model() {
        let g = two_cliques();
        let bm = Blockmodel::from_assignment(&g, vec![0; 6], 1);
        let full = mdl(&bm, g.num_vertices(), g.total_weight());
        let null = null_mdl(g.total_weight());
        assert!(
            (full.total - null).abs() < 1e-9,
            "explicit single-block MDL {} vs closed form {}",
            full.total,
            null
        );
    }

    #[test]
    fn true_partition_beats_null_on_structured_graph() {
        // Two complete directed 10-cliques + one bridge: enough structure
        // that the planted partition's likelihood gain pays for C = 2.
        // (On very small graphs the null can win — the paper's MDL_norm ≈ 1
        // regime — so this needs a reasonably dense graph.)
        let k = 10u32;
        let mut edges = Vec::new();
        for g0 in 0..2u32 {
            for a in 0..k {
                for b in 0..k {
                    if a != b {
                        edges.push((g0 * k + a, g0 * k + b));
                    }
                }
            }
        }
        edges.push((k - 1, k));
        let g = Graph::from_edges(2 * k as usize, &edges);
        let assignment: Vec<u32> = (0..2 * k).map(|v| v / k).collect();
        let bm = Blockmodel::from_assignment(&g, assignment, 2);
        let fitted = mdl(&bm, g.num_vertices(), g.total_weight()).total;
        let null = null_mdl(g.total_weight());
        assert!(fitted < null, "fitted {fitted} should beat null {null}");
    }

    #[test]
    fn singleton_partition_pays_complexity() {
        // With every vertex its own block, V·ln C + E·h(C²/E) explodes; the
        // MDL must exceed that of the planted 2-block partition.
        let g = two_cliques();
        let singleton = Blockmodel::singleton_partition(&g);
        let planted = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let m_singleton = super::mdl(&singleton, g.num_vertices(), g.total_weight()).total;
        let m_planted = super::mdl(&planted, g.num_vertices(), g.total_weight()).total;
        assert!(m_planted < m_singleton);
    }

    #[test]
    fn model_complexity_monotone_in_blocks() {
        let mc: Vec<f64> = (1..10).map(|c| model_complexity(100, 500, c)).collect();
        for w in mc.windows(2) {
            assert!(w[0] < w[1], "complexity should grow with C: {mc:?}");
        }
    }

    #[test]
    fn model_complexity_delta_consistent() {
        let d = model_complexity_delta(100, 500, 8, 7);
        let direct = model_complexity(100, 500, 7) - model_complexity(100, 500, 8);
        assert!((d - direct).abs() < 1e-12);
        assert!(d < 0.0, "merging blocks reduces model complexity");
    }

    #[test]
    fn empty_graph_mdls_are_zero() {
        assert_eq!(null_mdl(0), 0.0);
        assert_eq!(model_complexity(10, 0, 3), 0.0);
    }
}
