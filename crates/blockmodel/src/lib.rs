//! Degree-corrected stochastic blockmodel (DCSBM) state and inference
//! primitives.
//!
//! This crate owns everything the paper's Algorithms 1–4 need per step:
//!
//! * [`model`] — the [`Blockmodel`]: the sparse inter-block edge-count matrix
//!   `B`, per-block degrees, vertex assignment, in-place vertex moves, block
//!   merges, and (parallel) reconstruction from an assignment — the
//!   "rebuild" step at the end of every asynchronous-Gibbs sweep,
//! * [`mdl`] — Eqs. 1 and 2 of the paper: the DCSBM log-likelihood, the
//!   minimum description length, and the structure-less null MDL used for
//!   the paper's normalized-MDL metric,
//! * [`delta`] — O(degree) computation of the MDL change for a proposed
//!   vertex move or block merge, without mutating the model,
//! * [`propose`] — the Metropolis-Hastings proposal distribution over target
//!   blocks and the Hastings correction factor,
//! * [`fastmath`] — [`MathMode`] and the exact/table delta-MDL kernels
//!   (precomputed `ln`/`x·ln x` tables for the integer counts that dominate
//!   the hot path).
//!
//! The key invariant maintained everywhere: `rows[r]` and `cols[s]` are two
//! views of the same matrix (`rows[r][s] == cols[s][r]`), `d_out[r]` is the
//! total of row `r`, and `d_in[s]` the total of column `s`. Tests enforce it
//! via [`Blockmodel::check_consistency`].

// Inference internals may panic deliberately on broken invariants
// (`panic!`/`unreachable!`), but never through a stray `unwrap`/`expect`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod audit;
pub mod delta;
pub mod fastmath;
pub mod mdl;
pub mod model;
pub mod propose;

pub use audit::{audit_blockmodel, repair_blockmodel, DriftReport};
pub use delta::{
    delta_mdl_merge, delta_mdl_merge_with, delta_mdl_merge_with_mode, delta_mdl_move,
    evaluate_move, evaluate_move_with, evaluate_move_with_mode, ArenaLease, ArenaPool, EvalScratch,
    MoveEval, MoveScratch, NeighborCounts, ProposalArena, ProposalBatch,
};
pub use fastmath::{MathMode, HSBP_MATH_ENV};
pub use mdl::{
    dcsbm_entropy_term, dcsbm_entropy_term_mode, log_likelihood_term, log_likelihood_term_mode, Mdl,
};
pub use model::{Block, Blockmodel};
pub use propose::{
    accept_move, hastings_correction, propose_block, propose_block_frozen, propose_merge_target,
    propose_merge_target_frozen, BlockNeighborSampler,
};
