//! The mutable DCSBM state: assignment, sparse `B`, per-block degrees.

use crate::delta::NeighborCounts;
use hsbp_collections::SparseRow;
use hsbp_graph::{Graph, Vertex, Weight};

/// Block (community) identifier.
pub type Block = u32;

/// Label-space size up to which [`Blockmodel::rebuild`] uses the dense
/// accumulator (`C² ≤ 512² = 256 Ki` counters, ~2 MiB — comfortably cached).
pub const DENSE_REBUILD_MAX_BLOCKS: usize = 512;

/// The degree-corrected stochastic blockmodel fitted to a graph.
///
/// `rows[r]` holds `B[r][·]` (edges *from* block `r`), `cols[s]` holds
/// `B[·][s]` (edges *into* block `s`); the two are kept in lock-step. Block
/// degrees are cached: `d_out[r] = Σ_s B[r][s]`, `d_in[s] = Σ_r B[r][s]`.
// `PartialEq` compares the *representation*; because `SparseRow` is
// canonical (sorted, zero-free) this coincides with logical equality, and
// the Verify consolidation mode uses it to cross-check the incremental path
// against a rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blockmodel {
    num_blocks: usize,
    assignment: Vec<Block>,
    rows: Vec<SparseRow>,
    cols: Vec<SparseRow>,
    d_out: Vec<Weight>,
    d_in: Vec<Weight>,
    block_sizes: Vec<u32>,
}

impl Blockmodel {
    /// Build the blockmodel implied by `assignment` (labels `0..num_blocks`).
    ///
    /// # Panics
    /// Panics if `assignment.len() != graph.num_vertices()` or a label is
    /// `>= num_blocks`.
    pub fn from_assignment(graph: &Graph, assignment: Vec<Block>, num_blocks: usize) -> Self {
        assert_eq!(
            assignment.len(),
            graph.num_vertices(),
            "assignment length mismatch"
        );
        let mut model = Self::empty(num_blocks, assignment);
        model.fill_from_graph(graph);
        model
    }

    /// The fully-split starting point of SBP: every vertex its own block.
    pub fn singleton_partition(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let assignment: Vec<Block> = (0..n as Block).collect();
        Self::from_assignment(graph, assignment, n)
    }

    fn empty(num_blocks: usize, assignment: Vec<Block>) -> Self {
        Self {
            num_blocks,
            assignment,
            rows: vec![SparseRow::new(); num_blocks],
            cols: vec![SparseRow::new(); num_blocks],
            d_out: vec![0; num_blocks],
            d_in: vec![0; num_blocks],
            block_sizes: vec![0; num_blocks],
        }
    }

    fn fill_from_graph(&mut self, graph: &Graph) {
        for &b in &self.assignment {
            assert!(
                (b as usize) < self.num_blocks,
                "label {b} >= num_blocks {}",
                self.num_blocks
            );
            self.block_sizes[b as usize] += 1;
        }
        for (u, v, w) in graph.edges() {
            let r = self.assignment[u as usize];
            let s = self.assignment[v as usize];
            self.rows[r as usize].add(s, w);
            self.cols[s as usize].add(r, w);
            self.d_out[r as usize] += w;
            self.d_in[s as usize] += w;
        }
    }

    /// Rebuild `B` in place from a (possibly updated) assignment. This is
    /// the end-of-sweep reconstruction step of A-SBP/H-SBP (Algorithm 3,
    /// line "rebuild B from community_membership").
    ///
    /// Two strategies (the paper's conclusion calls out reconstruction-
    /// friendly data structures as an optimisation):
    /// * **dense** — when the label space is small, accumulate into a flat
    ///   `C×C` array (one cache-friendly pass over the edges, no hashing),
    /// * **sparse partials** — otherwise, scan vertex chunks in parallel
    ///   into sparse partial matrices and merge.
    pub fn rebuild(&mut self, graph: &Graph, assignment: Vec<Block>) {
        if self.num_blocks <= DENSE_REBUILD_MAX_BLOCKS {
            self.rebuild_dense(graph, assignment);
        } else {
            self.rebuild_sparse(graph, assignment);
        }
    }

    /// Dense-accumulator rebuild (small `C`): `O(E + C²)`.
    pub fn rebuild_dense(&mut self, graph: &Graph, assignment: Vec<Block>) {
        assert_eq!(assignment.len(), graph.num_vertices());
        let c = self.num_blocks;
        let mut dense = vec![0 as Weight; c * c];
        let mut d_out = vec![0 as Weight; c];
        let mut d_in = vec![0 as Weight; c];
        let mut sizes = vec![0u32; c];
        for &b in &assignment {
            let b = b as usize;
            assert!(b < c, "label {b} >= num_blocks {c}");
            sizes[b] += 1;
        }
        for (u, v, w) in graph.edges() {
            let r = assignment[u as usize] as usize;
            let s = assignment[v as usize] as usize;
            dense[r * c + s] += w;
            d_out[r] += w;
            d_in[s] += w;
        }
        let mut rows = vec![SparseRow::new(); c];
        let mut cols = vec![SparseRow::new(); c];
        for r in 0..c {
            for s in 0..c {
                let w = dense[r * c + s];
                if w > 0 {
                    rows[r].add(s as Block, w);
                    cols[s].add(r as Block, w);
                }
            }
        }
        self.assignment = assignment;
        self.rows = rows;
        self.cols = cols;
        self.d_out = d_out;
        self.d_in = d_in;
        self.block_sizes = sizes;
    }

    /// Parallel sparse-partials rebuild (any `C`).
    pub fn rebuild_sparse(&mut self, graph: &Graph, assignment: Vec<Block>) {
        assert_eq!(assignment.len(), graph.num_vertices());
        let num_blocks = self.num_blocks;
        let n = graph.num_vertices();
        // Fold vertex chunks into partial (rows, d_out, d_in, sizes); column
        // view is derived afterwards from the merged rows (cheaper than
        // merging two map sets). Chunk boundaries follow the degree
        // prefix-sum so each partial scans a similar number of edges; chunk
        // count stays small because each partial costs O(num_blocks) to
        // allocate and merge.
        let pool = hsbp_parallel::global();
        let target = (n / 1024).clamp(1, pool.num_threads() * 4);
        let plan = hsbp_parallel::ChunkPlan::from_prefix(n, target, |i| {
            (graph.incident_prefix(i) + i) as u64
        });
        struct Partial {
            rows: Vec<SparseRow>,
            d_out: Vec<Weight>,
            d_in: Vec<Weight>,
            sizes: Vec<u32>,
        }
        let assignment_ref = &assignment;
        let ranges: Vec<std::ops::Range<usize>> =
            (0..plan.num_chunks()).map(|c| plan.chunk(c)).collect();
        let mut partials: Vec<Partial> = pool.map_vec(
            ranges,
            || (),
            |(), range| {
                let mut p = Partial {
                    rows: vec![SparseRow::new(); num_blocks],
                    d_out: vec![0; num_blocks],
                    d_in: vec![0; num_blocks],
                    sizes: vec![0; num_blocks],
                };
                for v in range {
                    let r = assignment_ref[v] as usize;
                    assert!(r < num_blocks, "label {r} >= num_blocks {num_blocks}");
                    p.sizes[r] += 1;
                    for (t, w) in graph.out_edges(v as Vertex) {
                        let s = assignment_ref[t as usize];
                        p.rows[r].add(s, w);
                        p.d_out[r] += w;
                        p.d_in[s as usize] += w;
                    }
                }
                p
            },
        );

        let mut merged = partials.pop().unwrap_or_else(|| Partial {
            rows: vec![SparseRow::new(); num_blocks],
            d_out: vec![0; num_blocks],
            d_in: vec![0; num_blocks],
            sizes: vec![0; num_blocks],
        });
        for p in partials {
            for (r, row) in p.rows.iter().enumerate() {
                merged.rows[r].absorb(row);
            }
            for r in 0..num_blocks {
                merged.d_out[r] += p.d_out[r];
                merged.d_in[r] += p.d_in[r];
                merged.sizes[r] += p.sizes[r];
            }
        }
        // Derive the column view.
        let mut cols = vec![SparseRow::new(); num_blocks];
        for (r, row) in merged.rows.iter().enumerate() {
            for (s, w) in row.iter() {
                cols[s as usize].add(r as Block, w);
            }
        }
        self.assignment = assignment;
        self.rows = merged.rows;
        self.cols = cols;
        self.d_out = merged.d_out;
        self.d_in = merged.d_in;
        self.block_sizes = merged.sizes;
    }

    /// Number of block labels (including blocks that may have emptied).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of blocks that currently contain at least one vertex.
    pub fn num_nonempty_blocks(&self) -> usize {
        self.block_sizes.iter().filter(|&&s| s > 0).count()
    }

    /// Current block of vertex `v`.
    #[inline]
    pub fn block_of(&self, v: Vertex) -> Block {
        self.assignment[v as usize]
    }

    /// Full assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[Block] {
        &self.assignment
    }

    /// Clone of the assignment vector (the per-sweep snapshot of A-SBP).
    pub fn assignment_snapshot(&self) -> Vec<Block> {
        self.assignment.clone()
    }

    /// Edge count from block `r` to block `s`.
    #[inline]
    pub fn edge_count(&self, r: Block, s: Block) -> Weight {
        self.rows[r as usize].get(s)
    }

    /// Row `r` of `B` (out-edges of block `r`).
    #[inline]
    pub fn row(&self, r: Block) -> &SparseRow {
        &self.rows[r as usize]
    }

    /// Column `s` of `B` (in-edges of block `s`).
    #[inline]
    pub fn col(&self, s: Block) -> &SparseRow {
        &self.cols[s as usize]
    }

    /// Out-degree of block `r`.
    #[inline]
    pub fn d_out(&self, r: Block) -> Weight {
        self.d_out[r as usize]
    }

    /// In-degree of block `s`.
    #[inline]
    pub fn d_in(&self, s: Block) -> Weight {
        self.d_in[s as usize]
    }

    /// Total degree (in + out) of block `r`.
    #[inline]
    pub fn d_total(&self, r: Block) -> Weight {
        self.d_out[r as usize] + self.d_in[r as usize]
    }

    /// Number of vertices currently assigned to block `r`.
    #[inline]
    pub fn block_size(&self, r: Block) -> u32 {
        self.block_sizes[r as usize]
    }

    /// Apply a vertex move `v: from -> to` in place, updating `B`, the
    /// degree caches, the size counts and the assignment. `counts` must be
    /// the neighbour-block census of `v` gathered *before* the move (i.e.
    /// with `v` still in `from`).
    pub fn apply_move(&mut self, v: Vertex, from: Block, to: Block, counts: &NeighborCounts) {
        debug_assert_eq!(self.assignment[v as usize], from);
        if from == to {
            return;
        }
        let (fr, t) = (from as usize, to as usize);
        // Out-edges of v (excluding self-loops): B[from][b] -> B[to][b].
        for &(b, w) in &counts.out_counts {
            self.rows[fr].sub(b, w);
            self.rows[t].add(b, w);
            self.cols[b as usize].sub(from, w);
            self.cols[b as usize].add(to, w);
        }
        // In-edges of v (excluding self-loops): B[b][from] -> B[b][to].
        for &(b, w) in &counts.in_counts {
            self.rows[b as usize].sub(from, w);
            self.rows[b as usize].add(to, w);
            self.cols[fr].sub(b, w);
            self.cols[t].add(b, w);
        }
        // Self-loops move diagonally: B[from][from] -> B[to][to].
        if counts.self_loops > 0 {
            let w = counts.self_loops;
            self.rows[fr].sub(from, w);
            self.cols[fr].sub(from, w);
            self.rows[t].add(to, w);
            self.cols[t].add(to, w);
        }
        let k_out = counts.k_out();
        let k_in = counts.k_in();
        self.d_out[fr] -= k_out;
        self.d_out[t] += k_out;
        self.d_in[fr] -= k_in;
        self.d_in[t] += k_in;
        self.block_sizes[fr] -= 1;
        self.block_sizes[t] += 1;
        self.assignment[v as usize] = to;
    }

    /// Overwrite the block of `v` in the assignment only (A-SBP accept path:
    /// the matrix is rebuilt later).
    #[inline]
    pub fn set_block_deferred(assignment: &mut [Block], v: Vertex, to: Block) {
        assignment[v as usize] = to;
    }

    /// Apply a batch of block merges `(from, to)` and compact the label
    /// space. Later merges may name blocks that were already absorbed; the
    /// chain is followed union-find style. Returns the new number of blocks.
    ///
    /// The model is rebuilt from the relabelled assignment (exact, and the
    /// merge phase is followed by MCMC anyway, matching Algorithm 1's
    /// "merge c into c'" bookkeeping).
    pub fn apply_merges(&mut self, graph: &Graph, merges: &[(Block, Block)]) -> usize {
        let c = self.num_blocks;
        // Union-find with path compression over block labels.
        let mut parent: Vec<Block> = (0..c as Block).collect();
        fn find(parent: &mut [Block], x: Block) -> Block {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for &(from, to) in merges {
            let rf = find(&mut parent, from);
            let rt = find(&mut parent, to);
            if rf != rt {
                parent[rf as usize] = rt;
            }
        }
        // Compact: map roots to 0..new_count.
        let mut new_label = vec![Block::MAX; c];
        let mut next: Block = 0;
        for b in 0..c as Block {
            let root = find(&mut parent, b);
            if new_label[root as usize] == Block::MAX {
                new_label[root as usize] = next;
                next += 1;
            }
        }
        let new_count = next as usize;
        let assignment: Vec<Block> = self
            .assignment
            .iter()
            .map(|&b| new_label[find(&mut parent, b) as usize])
            .collect();
        self.num_blocks = new_count;
        self.rows = vec![SparseRow::new(); new_count];
        self.cols = vec![SparseRow::new(); new_count];
        self.d_out = vec![0; new_count];
        self.d_in = vec![0; new_count];
        self.block_sizes = vec![0; new_count];
        self.assignment = assignment;
        self.fill_from_graph(graph);
        new_count
    }

    /// Exhaustive consistency check against the graph (test/debug use):
    /// verifies rows, cols, degrees and sizes all agree with a fresh build.
    /// Delegates to [`crate::audit::audit_blockmodel`], the same comparison
    /// the runtime drift auditor runs at its configured cadence.
    pub fn check_consistency(&self, graph: &Graph) -> Result<(), String> {
        match crate::audit::audit_blockmodel(self, graph) {
            None => Ok(()),
            Some(report) => Err(report.summary()),
        }
    }

    /// Test hook: deterministically corrupt the incremental state while
    /// leaving the membership vector intact, emulating a lost or
    /// double-counted delta update. A phantom self-edge of pseudo-random
    /// weight is added to one occupied block's `B[b][b]`, degree caches
    /// included, so the model stays internally coherent (row totals still
    /// match degree caches) but no longer matches what the membership
    /// implies — exactly the class of drift only a rebuild-and-compare
    /// audit can catch. The perturbation is additive, so MDL terms stay
    /// finite. Returns false (no-op) when the model has no occupied block.
    pub fn inject_state_corruption(&mut self, seed: u64) -> bool {
        let occupied: Vec<usize> = (0..self.num_blocks)
            .filter(|&r| self.block_sizes[r] > 0)
            .collect();
        let Some(&target) = occupied.get((splitmix64(seed) as usize) % occupied.len().max(1))
        else {
            return false;
        };
        let bump = 1 + (splitmix64(seed ^ 0x5eed_c0de) % 7) as Weight;
        let b = target as Block;
        self.rows[target].add(b, bump);
        self.cols[target].add(b, bump);
        self.d_out[target] += bump;
        self.d_in[target] += bump;
        true
    }
}

/// splitmix64 finalizer for the deterministic corruption hook.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::delta::NeighborCounts;

    /// Two dense communities {0,1,2} and {3,4,5} plus one bridge.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for group in [[0u32, 1, 2], [3, 4, 5]] {
            for &a in &group {
                for &b in &group {
                    if a != b {
                        edges.push((a, b));
                    }
                }
            }
        }
        edges.push((2, 3));
        Graph::from_edges(6, &edges)
    }

    #[test]
    fn from_assignment_counts_edges() {
        let g = two_cliques();
        let bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(bm.edge_count(0, 0), 6);
        assert_eq!(bm.edge_count(1, 1), 6);
        assert_eq!(bm.edge_count(0, 1), 1);
        assert_eq!(bm.edge_count(1, 0), 0);
        assert_eq!(bm.d_out(0), 7);
        assert_eq!(bm.d_in(0), 6);
        assert_eq!(bm.d_total(1), 13);
        assert_eq!(bm.block_size(0), 3);
        bm.check_consistency(&g).unwrap();
    }

    #[test]
    fn singleton_partition_shape() {
        let g = two_cliques();
        let bm = Blockmodel::singleton_partition(&g);
        assert_eq!(bm.num_blocks(), 6);
        assert_eq!(bm.num_nonempty_blocks(), 6);
        assert_eq!(bm.edge_count(0, 1), 1);
        assert_eq!(bm.edge_count(2, 3), 1);
        bm.check_consistency(&g).unwrap();
    }

    #[test]
    fn apply_move_matches_rebuild() {
        let g = two_cliques();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let counts = NeighborCounts::gather(&g, &bm, 2);
        bm.apply_move(2, 0, 1, &counts);
        assert_eq!(bm.block_of(2), 1);
        bm.check_consistency(&g).unwrap();
        let fresh = Blockmodel::from_assignment(&g, vec![0, 0, 1, 1, 1, 1], 2);
        assert_eq!(bm.edge_count(0, 0), fresh.edge_count(0, 0));
        assert_eq!(bm.edge_count(0, 1), fresh.edge_count(0, 1));
        assert_eq!(bm.edge_count(1, 0), fresh.edge_count(1, 0));
        assert_eq!(bm.edge_count(1, 1), fresh.edge_count(1, 1));
    }

    #[test]
    fn apply_move_with_self_loop() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 2), (2, 0)]);
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 1], 2);
        let counts = NeighborCounts::gather(&g, &bm, 0);
        assert_eq!(counts.self_loops, 1);
        bm.apply_move(0, 0, 1, &counts);
        bm.check_consistency(&g).unwrap();
        assert_eq!(bm.edge_count(1, 1), 2); // self-loop of 0 + edge 2->0
    }

    #[test]
    fn move_to_same_block_is_noop() {
        let g = two_cliques();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let before = bm.clone();
        let counts = NeighborCounts::gather(&g, &bm, 1);
        bm.apply_move(1, 0, 0, &counts);
        assert_eq!(bm.assignment(), before.assignment());
        assert_eq!(bm.edge_count(0, 0), before.edge_count(0, 0));
    }

    #[test]
    fn rebuild_equals_from_assignment() {
        let g = two_cliques();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let new_assignment = vec![0, 1, 0, 1, 0, 1];
        bm.rebuild(&g, new_assignment.clone());
        bm.check_consistency(&g).unwrap();
        let fresh = Blockmodel::from_assignment(&g, new_assignment, 2);
        for r in 0..2u32 {
            for s in 0..2u32 {
                assert_eq!(bm.edge_count(r, s), fresh.edge_count(r, s));
            }
        }
    }

    #[test]
    fn dense_and_sparse_rebuilds_agree() {
        let g = two_cliques();
        let assignment = vec![0, 1, 2, 0, 1, 2];
        let mut dense = Blockmodel::from_assignment(&g, vec![0; 6], 3);
        dense.rebuild_dense(&g, assignment.clone());
        let mut sparse = Blockmodel::from_assignment(&g, vec![0; 6], 3);
        sparse.rebuild_sparse(&g, assignment);
        for r in 0..3u32 {
            assert_eq!(dense.row(r).to_sorted_vec(), sparse.row(r).to_sorted_vec());
            assert_eq!(dense.col(r).to_sorted_vec(), sparse.col(r).to_sorted_vec());
            assert_eq!(dense.d_out(r), sparse.d_out(r));
            assert_eq!(dense.d_in(r), sparse.d_in(r));
            assert_eq!(dense.block_size(r), sparse.block_size(r));
        }
        dense.check_consistency(&g).unwrap();
        sparse.check_consistency(&g).unwrap();
    }

    #[test]
    fn merges_compact_labels() {
        let g = two_cliques();
        let mut bm = Blockmodel::singleton_partition(&g);
        // Merge each clique into one block.
        let n = bm.apply_merges(&g, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert_eq!(n, 2);
        assert_eq!(bm.num_blocks(), 2);
        bm.check_consistency(&g).unwrap();
        // All of {0,1,2} share a label; all of {3,4,5} share the other.
        let a = bm.assignment();
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
        assert_eq!(a[3], a[4]);
        assert_eq!(a[4], a[5]);
        assert_ne!(a[0], a[3]);
    }

    #[test]
    fn chained_merges_follow_union_find() {
        let g = two_cliques();
        let mut bm = Blockmodel::singleton_partition(&g);
        // 0 -> 1, then 1 -> 2: all three end up together even though the
        // second merge names a block that already absorbed 0.
        let n = bm.apply_merges(&g, &[(0, 1), (1, 2)]);
        assert_eq!(n, 4);
        let a = bm.assignment();
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
    }

    #[test]
    fn merge_into_merged_target() {
        let g = two_cliques();
        let mut bm = Blockmodel::singleton_partition(&g);
        // 1 -> 0, then 2 -> 1 (1 is already gone; must land with 0).
        let n = bm.apply_merges(&g, &[(1, 0), (2, 1)]);
        assert_eq!(n, 4);
        let a = bm.assignment();
        assert_eq!(a[0], a[1]);
        assert_eq!(a[1], a[2]);
        bm.check_consistency(&g).unwrap();
    }

    #[test]
    fn empty_blocks_tracked() {
        let g = two_cliques();
        let mut bm = Blockmodel::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 3);
        assert_eq!(bm.num_blocks(), 3);
        assert_eq!(bm.num_nonempty_blocks(), 2);
        // Move everything out of block 1.
        for v in [3u32, 4, 5] {
            let counts = NeighborCounts::gather(&g, &bm, v);
            bm.apply_move(v, 1, 2, &counts);
        }
        assert_eq!(bm.num_nonempty_blocks(), 2);
        assert_eq!(bm.block_size(1), 0);
        assert_eq!(bm.d_total(1), 0);
        bm.check_consistency(&g).unwrap();
    }
}
