//! Shared logarithm helpers and the precomputed `ln`/`x·ln x` tables
//! behind `MathMode::Table`.
//!
//! Delta-MDL evaluation is a sum of `x·ln x`-shaped terms whose arguments
//! are overwhelmingly *small integer counts* (sparse B-matrix cells and
//! block degrees). A table of `ln i` / `i·ln i` for `i` below a cap turns
//! each libm `ln` call in the hot loop into a load — and because every
//! table entry is computed with the very same `f64::ln` the exact path
//! uses, a lookup for an in-range integer argument is *bit-identical* to
//! calling `ln` directly. Non-integer or above-cap arguments fall back to
//! libm, so the table never changes a result, only its cost.
//!
//! The table is built lazily on first use and sized by
//! [`HSBP_MATH_CAP_ENV`] (default [`DEFAULT_TABLE_CAP`] entries, clamped
//! to `[MIN_TABLE_CAP, MAX_TABLE_CAP]`).
//!
//! This module is also the one audited home of the scattered entropy-term
//! math: [`ln`], [`xlnx`] and [`xlny`] are the exact (libm) forms that
//! metrics/generator/graph call instead of open-coding `.ln()`.

use std::sync::OnceLock;

/// Environment variable that sizes the lookup tables (number of integer
/// entries, i.e. the exclusive cap on table-served arguments).
pub const HSBP_MATH_CAP_ENV: &str = "HSBP_MATH_CAP";

/// Default table size: 2^16 entries (two tables × 8 bytes ≈ 1 MiB, of
/// which only the small-count prefix is hot).
pub const DEFAULT_TABLE_CAP: usize = 1 << 16;

/// Smallest accepted table size.
pub const MIN_TABLE_CAP: usize = 1 << 10;

/// Largest accepted table size (2^24 entries ≈ 256 MiB for both tables —
/// already far past any sane configuration).
pub const MAX_TABLE_CAP: usize = 1 << 24;

/// Exact natural logarithm. Passthrough to `f64::ln`, kept so every
/// entropy-term call site routes through one audited module.
#[inline]
pub fn ln(x: f64) -> f64 {
    x.ln()
}

/// Exact `x·ln x` with the entropy convention `0·ln 0 = 0`.
#[inline]
pub fn xlnx(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.ln()
    }
}

/// Exact `x·ln y` (the cross-entropy shape, e.g. `a·ln p` terms).
#[inline]
pub fn xlny(x: f64, y: f64) -> f64 {
    x * y.ln()
}

/// Precomputed `ln i` and `i·ln i` for `0 <= i < cap`.
///
/// `ln[0]` is `-inf` (matching `(0.0).ln()`); `xlnx[0]` is `0.0`
/// (the entropy convention, matching [`xlnx`]).
#[derive(Debug)]
pub struct LnTable {
    ln: Box<[f64]>,
    xlnx: Box<[f64]>,
}

impl LnTable {
    /// Build a table with `cap` integer entries.
    pub fn new(cap: usize) -> Self {
        let mut ln = Vec::with_capacity(cap);
        let mut xlnx = Vec::with_capacity(cap);
        for i in 0..cap {
            let x = i as f64;
            let l = x.ln();
            ln.push(l);
            xlnx.push(if i == 0 { 0.0 } else { x * l });
        }
        Self {
            ln: ln.into_boxed_slice(),
            xlnx: xlnx.into_boxed_slice(),
        }
    }

    /// Number of integer entries (exclusive cap on table-served arguments).
    pub fn cap(&self) -> usize {
        self.ln.len()
    }

    /// `ln x` — table load when `x` is an integer below the cap,
    /// `f64::ln` otherwise. Bit-identical to `x.ln()` in both cases.
    #[inline]
    pub fn ln(&self, x: f64) -> f64 {
        let i = x as usize;
        if i < self.ln.len() && i as f64 == x {
            self.ln[i]
        } else {
            x.ln()
        }
    }

    /// `x·ln x` with `0·ln 0 = 0` — table load when `x` is an integer
    /// below the cap, exact [`xlnx`] otherwise.
    #[inline]
    pub fn xlnx(&self, x: f64) -> f64 {
        let i = x as usize;
        if i < self.xlnx.len() && i as f64 == x {
            self.xlnx[i]
        } else {
            xlnx(x)
        }
    }

    /// Linearly interpolated `x·ln x` between the bracketing integer
    /// entries, falling back to exact above the cap. Exposed for callers
    /// that can trade a bounded relative error (the chord of a convex
    /// function; worst near small `x`) for branch-free throughput on
    /// fractional arguments. The MDL kernels do **not** use this — they
    /// only ever serve exact values.
    #[inline]
    // The negated comparison is deliberate: it routes NaN to the 0 branch.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn xlnx_lerp(&self, x: f64) -> f64 {
        if !(x > 0.0) {
            return 0.0;
        }
        let i = x as usize;
        if i + 1 < self.xlnx.len() {
            let frac = x - i as f64;
            self.xlnx[i] + frac * (self.xlnx[i + 1] - self.xlnx[i])
        } else {
            xlnx(x)
        }
    }
}

fn table_cap_from_env() -> usize {
    std::env::var(HSBP_MATH_CAP_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(DEFAULT_TABLE_CAP, |c| c.clamp(MIN_TABLE_CAP, MAX_TABLE_CAP))
}

static TABLE: OnceLock<LnTable> = OnceLock::new();

/// The process-wide table, built on first use with the cap from
/// [`HSBP_MATH_CAP_ENV`].
pub fn table() -> &'static LnTable {
    TABLE.get_or_init(|| LnTable::new(table_cap_from_env()))
}

/// Cap of the process-wide table (builds it if needed).
pub fn table_cap() -> usize {
    table().cap()
}

/// Table-served `ln x` (see [`LnTable::ln`]).
#[inline]
pub fn ln_lookup(x: f64) -> f64 {
    table().ln(x)
}

/// Table-served `x·ln x` (see [`LnTable::xlnx`]).
#[inline]
pub fn xlnx_lookup(x: f64) -> f64 {
    table().xlnx(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_libm_bitwise_across_integer_domain() {
        let t = LnTable::new(MIN_TABLE_CAP);
        for i in 1..t.cap() {
            let x = i as f64;
            assert_eq!(
                t.ln(x).to_bits(),
                x.ln().to_bits(),
                "ln table diverges at {i}"
            );
            assert_eq!(
                t.xlnx(x).to_bits(),
                (x * x.ln()).to_bits(),
                "xlnx table diverges at {i}"
            );
            // The <1e-12 contract is implied by bit-identity, but assert it
            // in the form the spec states it.
            assert!((t.ln(x) - x.ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_entries_follow_conventions() {
        let t = LnTable::new(MIN_TABLE_CAP);
        assert_eq!(t.ln(0.0), f64::NEG_INFINITY);
        assert_eq!(t.xlnx(0.0), 0.0);
        assert_eq!(xlnx(0.0), 0.0);
        assert_eq!(xlnx(-3.0), 0.0);
    }

    #[test]
    fn non_integer_and_above_cap_fall_back_to_exact() {
        let t = LnTable::new(MIN_TABLE_CAP);
        for &x in &[0.5, 1.75, 3.141_592_653_589_793, 1e7, 1e300] {
            assert_eq!(t.ln(x).to_bits(), x.ln().to_bits());
            assert_eq!(t.xlnx(x).to_bits(), (x * x.ln()).to_bits());
        }
        let above = (MIN_TABLE_CAP + 17) as f64;
        assert_eq!(t.ln(above).to_bits(), above.ln().to_bits());
        assert_eq!(t.xlnx(above).to_bits(), (above * above.ln()).to_bits());
    }

    #[test]
    fn lerp_error_is_bounded() {
        let t = LnTable::new(MIN_TABLE_CAP);
        // Between integer nodes the chord of the convex x·ln x overshoots by
        // at most the second-difference bound: for x in [i, i+1] the error is
        // <= 1/(8·i) in absolute terms (|f''| = 1/x). Check a dense sample.
        let mut worst = 0.0_f64;
        for i in 1..(t.cap() - 1) {
            for step in 1..8 {
                let x = i as f64 + step as f64 / 8.0;
                let err = (t.xlnx_lerp(x) - xlnx(x)).abs();
                let bound = 1.0 / (8.0 * i as f64) + 1e-12;
                assert!(
                    err <= bound,
                    "lerp error {err} exceeds bound {bound} at x={x}"
                );
                worst = worst.max(err);
            }
        }
        assert!(worst > 0.0, "lerp should differ from exact somewhere");
        // Above the cap the lerp path is the exact fallback.
        let above = t.cap() as f64 + 0.5;
        assert_eq!(t.xlnx_lerp(above).to_bits(), xlnx(above).to_bits());
    }

    #[test]
    fn env_cap_is_clamped() {
        // table_cap_from_env reads the live environment; emulate the clamp
        // logic directly on candidate values instead of mutating the env
        // (tests run multi-threaded).
        for (raw, want) in [
            (0_usize, MIN_TABLE_CAP),
            (1, MIN_TABLE_CAP),
            (DEFAULT_TABLE_CAP, DEFAULT_TABLE_CAP),
            (usize::MAX, MAX_TABLE_CAP),
        ] {
            assert_eq!(raw.clamp(MIN_TABLE_CAP, MAX_TABLE_CAP), want);
        }
    }
}
