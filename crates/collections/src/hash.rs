//! An Fx-style hasher and hash-map/set aliases.
//!
//! The hash function is the one used inside rustc (`rustc-hash`): a
//! multiply-rotate mix applied word-at-a-time. It is not HashDoS-resistant,
//! which is fine here — keys are internal block and vertex ids, never
//! attacker-controlled — and it is several times faster than the standard
//! library's SipHash 1-3 for small integer keys, which dominate the
//! blockmodel's sparse rows.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher for small keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash a single `u64` to a well-mixed `u64` (for seeding and tests).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, u64::from(i) * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(u64::from(i) * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn byte_stream_matches_word_writes_are_consistent() {
        // Writing the same logical bytes twice must give identical hashes.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distributes_low_bits() {
        // Sequential keys must not all collide in low bits (bucket index).
        let mut buckets = [0u32; 16];
        for i in 0..1600u64 {
            buckets[(hash_u64(i) & 15) as usize] += 1;
        }
        // With a decent mix every bucket gets something.
        assert!(buckets.iter().all(|&c| c > 0), "buckets: {buckets:?}");
    }
}
