//! Epoch-stamped scratch counters for allocation-free hot loops.
//!
//! The MCMC proposal path needs a handful of tiny `block id → signed count`
//! maps per proposal (neighbour tallies, affected matrix entries, a census of
//! touched blocks). Allocating fresh hash maps per proposal dominated the
//! allocator profile, so this module provides a reusable counter that:
//!
//! * clears in O(1) by bumping an epoch stamp instead of touching memory,
//! * stores keys below [`DENSE_LIMIT`] in dense arrays grown lazily (steady
//!   state performs zero allocations),
//! * spills keys at or above [`DENSE_LIMIT`] into a small sorted side vector
//!   so pathological id ranges stay correct without gigantic dense arrays,
//! * visits entries in ascending key order, making every float summation
//!   driven by a scratch counter a pure function of its logical contents.

/// Keys below this bound live in the dense epoch-stamped arrays; keys at or
/// above it go to the sorted overflow vector. Block ids are bounded by the
/// vertex count, so real workloads stay dense.
pub const DENSE_LIMIT: u32 = 1 << 16;

/// A reusable map from `u32` key to signed count, cleared in O(1).
#[derive(Debug, Default)]
pub struct ScratchCounter {
    stamps: Vec<u32>,
    values: Vec<i64>,
    touched: Vec<u32>,
    overflow: Vec<(u32, i64)>,
    epoch: u32,
}

impl ScratchCounter {
    /// Empty counter. Dense storage grows lazily on first touch of a key.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a fresh accumulation, logically clearing all entries.
    ///
    /// Amortised O(1): bumps the epoch stamp. Only on epoch wrap-around
    /// (once per 2^32 - 1 clears) are the stamps physically reset.
    pub fn begin(&mut self) {
        self.touched.clear();
        self.overflow.clear();
        if self.epoch == u32::MAX {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Add `delta` to the count for `key`.
    #[inline]
    pub fn add(&mut self, key: u32, delta: i64) {
        if key < DENSE_LIMIT {
            let idx = key as usize;
            if idx >= self.stamps.len() {
                self.grow_dense(idx);
            }
            if self.stamps[idx] == self.epoch {
                self.values[idx] += delta;
            } else {
                self.stamps[idx] = self.epoch;
                self.values[idx] = delta;
                self.touched.push(key);
            }
        } else {
            match self.overflow.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(pos) => self.overflow[pos].1 += delta,
                Err(pos) => self.overflow.insert(pos, (key, delta)),
            }
        }
    }

    #[cold]
    fn grow_dense(&mut self, idx: usize) {
        let new_len = (idx + 1).next_power_of_two().min(DENSE_LIMIT as usize);
        self.stamps.resize(new_len, 0);
        self.values.resize(new_len, 0);
    }

    /// Current count for `key` (zero if never touched this epoch).
    #[inline]
    pub fn get(&self, key: u32) -> i64 {
        if key < DENSE_LIMIT {
            let idx = key as usize;
            if idx < self.stamps.len() && self.stamps[idx] == self.epoch {
                self.values[idx]
            } else {
                0
            }
        } else {
            match self.overflow.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(pos) => self.overflow[pos].1,
                Err(_) => 0,
            }
        }
    }

    /// Number of keys touched this epoch (including keys whose deltas
    /// cancelled back to zero).
    #[inline]
    pub fn touched_len(&self) -> usize {
        self.touched.len() + self.overflow.len()
    }

    /// Visit every entry with a non-zero count, in ascending key order.
    ///
    /// Sorts the touched-key list in place (O(t log t) for t touched keys,
    /// no allocation); overflow keys are all ≥ [`DENSE_LIMIT`] and already
    /// sorted, so the concatenation is globally ordered.
    pub fn for_each_sorted(&mut self, mut f: impl FnMut(u32, i64)) {
        self.touched.sort_unstable();
        for &key in &self.touched {
            let v = self.values[key as usize];
            if v != 0 {
                f(key, v);
            }
        }
        for &(key, v) in &self.overflow {
            if v != 0 {
                f(key, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(c: &mut ScratchCounter) -> Vec<(u32, i64)> {
        let mut out = Vec::new();
        c.for_each_sorted(|k, v| out.push((k, v)));
        out
    }

    #[test]
    fn accumulates_and_clears() {
        let mut c = ScratchCounter::new();
        c.begin();
        c.add(5, 3);
        c.add(1, 2);
        c.add(5, -1);
        assert_eq!(c.get(5), 2);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(99), 0);
        assert_eq!(collect(&mut c), vec![(1, 2), (5, 2)]);
        c.begin();
        assert_eq!(c.get(5), 0);
        assert_eq!(collect(&mut c), vec![]);
    }

    #[test]
    fn zero_sum_entries_are_skipped() {
        let mut c = ScratchCounter::new();
        c.begin();
        c.add(7, 4);
        c.add(7, -4);
        c.add(2, 1);
        assert_eq!(c.get(7), 0);
        assert_eq!(c.touched_len(), 2);
        assert_eq!(collect(&mut c), vec![(2, 1)]);
    }

    #[test]
    fn overflow_keys_merge_sorted_after_dense() {
        let mut c = ScratchCounter::new();
        c.begin();
        c.add(DENSE_LIMIT + 7, 1);
        c.add(3, 2);
        c.add(DENSE_LIMIT, 5);
        c.add(DENSE_LIMIT + 7, 2);
        assert_eq!(c.get(DENSE_LIMIT + 7), 3);
        assert_eq!(
            collect(&mut c),
            vec![(3, 2), (DENSE_LIMIT, 5), (DENSE_LIMIT + 7, 3)]
        );
        c.begin();
        assert_eq!(c.get(DENSE_LIMIT), 0);
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut c = ScratchCounter::new();
        c.begin();
        c.add(4, 9);
        c.epoch = u32::MAX; // force the wrap path
        c.begin();
        assert_eq!(c.get(4), 0, "stale stamp must not leak across a wrap");
        c.add(4, 1);
        assert_eq!(collect(&mut c), vec![(4, 1)]);
    }

    #[test]
    fn negative_totals_are_preserved() {
        let mut c = ScratchCounter::new();
        c.begin();
        c.add(10, -5);
        c.add(10, 2);
        assert_eq!(c.get(10), -3);
        assert_eq!(collect(&mut c), vec![(10, -3)]);
    }
}
