//! Sparse integer-count rows for the blockmodel matrix.
//!
//! A blockmodel row `B[r][·]` holds, for each block `s`, the number of edges
//! from block `r` to block `s`. Rows shrink as communities merge and mutate
//! heavily during MCMC, so the representation must support cheap get/add/sub
//! with removal at zero (keeping iteration proportional to the number of
//! *non-zero* entries, which the MDL computation walks every sweep).
//!
//! The row is stored struct-of-arrays: a `keys` vector sorted ascending and
//! a parallel `counts` vector. Blockmodel rows are short (bounded by the
//! current block count, and by a vertex degree during the singleton stage),
//! so binary search plus a small `memmove` beats hashing in practice — and,
//! critically, it makes the representation *canonical*: two rows with the
//! same logical contents are byte-identical, iteration order is the
//! ascending key order, and every float summation over a row is a pure
//! function of the logical state. The incremental-consolidation path relies
//! on this to produce bit-identical models to a full rebuild. The split
//! layout additionally hands the MDL/delta kernels contiguous `counts`
//! slices ([`SparseRow::counts`]) that the compiler can unroll and
//! autovectorize without striding over interleaved keys.

/// A sparse row of non-negative integer counts keyed by block id.
///
/// Keys are kept sorted with all counts strictly positive, so the in-memory
/// representation is canonical and `iter` yields keys in ascending order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseRow {
    keys: Vec<u32>,
    counts: Vec<u64>,
    total: u64,
}

impl SparseRow {
    /// Empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty row with capacity for `cap` non-zero entries.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            keys: Vec::with_capacity(cap),
            counts: Vec::with_capacity(cap),
            total: 0,
        }
    }

    /// Build a row directly from parallel slices that are already sorted by
    /// key, strictly ascending, with every count positive.
    ///
    /// # Panics
    /// Debug-asserts the canonical-form invariants; callers (model rebuild)
    /// are trusted in release builds.
    pub fn from_sorted_parts(keys: Vec<u32>, counts: Vec<u64>) -> Self {
        debug_assert_eq!(keys.len(), counts.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must ascend");
        debug_assert!(counts.iter().all(|&c| c > 0), "counts must be positive");
        let total = counts.iter().sum();
        Self {
            keys,
            counts,
            total,
        }
    }

    #[inline]
    fn position(&self, key: u32) -> Result<usize, usize> {
        self.keys.binary_search(&key)
    }

    /// Count stored for `key` (zero if absent).
    #[inline]
    pub fn get(&self, key: u32) -> u64 {
        match self.position(key) {
            Ok(idx) => self.counts[idx],
            Err(_) => 0,
        }
    }

    /// Add `amount` to `key`'s count.
    #[inline]
    pub fn add(&mut self, key: u32, amount: u64) {
        if amount == 0 {
            return;
        }
        match self.position(key) {
            Ok(idx) => self.counts[idx] += amount,
            Err(idx) => {
                self.keys.insert(idx, key);
                self.counts.insert(idx, amount);
            }
        }
        self.total += amount;
    }

    /// Subtract `amount` from `key`'s count, removing the entry at zero.
    ///
    /// # Panics
    /// Panics (in debug builds) if the entry would go negative — that always
    /// indicates blockmodel bookkeeping corruption.
    #[inline]
    pub fn sub(&mut self, key: u32, amount: u64) {
        if amount == 0 {
            return;
        }
        match self.position(key) {
            Ok(idx) if self.counts[idx] > amount => {
                self.counts[idx] -= amount;
                self.total -= amount;
            }
            Ok(idx) if self.counts[idx] == amount => {
                self.keys.remove(idx);
                self.counts.remove(idx);
                self.total -= amount;
            }
            _ => {
                debug_assert!(false, "SparseRow::sub underflow at key {key} by {amount}");
            }
        }
    }

    /// Number of non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.keys.len()
    }

    /// True if every count is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Sum of all counts in the row.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The sorted key slice (parallel to [`SparseRow::counts`]).
    #[inline]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// The count slice (parallel to [`SparseRow::keys`]). Contiguous, so
    /// count-only reductions vectorize without striding over keys.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Iterate over `(key, count)` pairs in ascending key order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.keys.iter().copied().zip(self.counts.iter().copied())
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.counts.clear();
        self.total = 0;
    }

    /// Fold another row into this one (used when merging blocks).
    pub fn absorb(&mut self, other: &SparseRow) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Move the count stored under `from` (if any) onto `to`.
    ///
    /// Used when a block is relabelled: edges previously pointing at block
    /// `from` now point at block `to`.
    pub fn relabel(&mut self, from: u32, to: u32) {
        if from == to {
            return;
        }
        if let Ok(idx) = self.position(from) {
            self.keys.remove(idx);
            let v = self.counts.remove(idx);
            self.total -= v;
            self.add(to, v);
        }
    }

    /// Collect entries into a sorted vector (stable output for tests/IO).
    pub fn to_sorted_vec(&self) -> Vec<(u32, u64)> {
        self.iter().collect()
    }
}

impl FromIterator<(u32, u64)> for SparseRow {
    fn from_iter<I: IntoIterator<Item = (u32, u64)>>(iter: I) -> Self {
        let mut row = SparseRow::new();
        for (k, v) in iter {
            row.add(k, v);
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_sub_roundtrip() {
        let mut row = SparseRow::new();
        row.add(3, 5);
        row.add(3, 2);
        row.add(7, 1);
        assert_eq!(row.get(3), 7);
        assert_eq!(row.get(7), 1);
        assert_eq!(row.get(99), 0);
        assert_eq!(row.total(), 8);
        row.sub(3, 7);
        assert_eq!(row.get(3), 0);
        assert_eq!(row.nnz(), 1);
        assert_eq!(row.total(), 1);
    }

    #[test]
    fn zero_amount_is_noop() {
        let mut row = SparseRow::new();
        row.add(1, 0);
        row.sub(1, 0);
        assert!(row.is_empty());
        assert_eq!(row.total(), 0);
    }

    #[test]
    fn sub_removes_at_zero() {
        let mut row = SparseRow::new();
        row.add(5, 2);
        row.sub(5, 2);
        assert_eq!(row.nnz(), 0);
        assert!(row.is_empty());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        let mut row = SparseRow::new();
        row.add(5, 1);
        row.sub(5, 2);
    }

    #[test]
    fn absorb_merges_counts() {
        let a: SparseRow = [(1, 2), (2, 3)].into_iter().collect();
        let mut b: SparseRow = [(2, 1), (4, 7)].into_iter().collect();
        b.absorb(&a);
        assert_eq!(b.to_sorted_vec(), vec![(1, 2), (2, 4), (4, 7)]);
        assert_eq!(b.total(), 13);
    }

    #[test]
    fn relabel_moves_mass() {
        let mut row: SparseRow = [(1, 2), (2, 3)].into_iter().collect();
        row.relabel(1, 2);
        assert_eq!(row.to_sorted_vec(), vec![(2, 5)]);
        row.relabel(9, 2); // absent key: noop
        assert_eq!(row.total(), 5);
        row.relabel(2, 2); // self: noop
        assert_eq!(row.to_sorted_vec(), vec![(2, 5)]);
    }

    #[test]
    fn iter_is_sorted_and_canonical() {
        let a: SparseRow = [(9, 1), (2, 3), (5, 4)].into_iter().collect();
        let mut b = SparseRow::new();
        b.add(5, 4);
        b.add(9, 2);
        b.sub(9, 1);
        b.add(2, 3);
        let keys: Vec<u32> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2, 5, 9]);
        assert_eq!(a, b, "same logical contents must be structurally equal");
    }

    #[test]
    fn soa_slices_are_parallel_and_sorted() {
        let row: SparseRow = [(9, 1), (2, 3), (5, 4)].into_iter().collect();
        assert_eq!(row.keys(), &[2, 5, 9]);
        assert_eq!(row.counts(), &[3, 4, 1]);
        let rebuilt = SparseRow::from_sorted_parts(row.keys().to_vec(), row.counts().to_vec());
        assert_eq!(rebuilt, row);
        assert_eq!(rebuilt.total(), 8);
    }

    #[test]
    fn total_tracks_all_mutations() {
        let mut row = SparseRow::new();
        let ops: &[(u32, i64)] = &[(1, 5), (2, 3), (1, -2), (2, -3), (3, 10), (1, -3)];
        let mut expected: i64 = 0;
        for &(k, delta) in ops {
            if delta >= 0 {
                row.add(k, delta as u64);
            } else {
                row.sub(k, (-delta) as u64);
            }
            expected += delta;
        }
        assert_eq!(row.total() as i64, expected);
    }
}
