//! Weighted discrete sampling and deterministic counter-based randomness.
//!
//! Three tools live here:
//!
//! * [`SplitMix64`] — a tiny, fast, seedable generator. Besides being a
//!   general-purpose RNG it doubles as a *counter RNG*: hashing
//!   `(seed, sweep, vertex)` yields per-vertex randomness that is identical
//!   no matter how vertices are distributed over threads, which makes the
//!   parallel MCMC sweeps bit-reproducible.
//! * [`AliasTable`] — Vose's alias method; O(n) build, O(1) sample. Used for
//!   repeated sampling from a fixed distribution (e.g. picking a target
//!   vertex within a block while generating DCSBM graphs).
//! * [`CumulativeSampler`] — prefix sums + binary search; O(log n) sample but
//!   cheap to build, used for one-shot draws from short-lived distributions.

use rand::Rng;

/// splitmix64 step (Vigna). Good avalanche, passes BigCrush as a mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix an arbitrary number of words into one well-distributed `u64`.
///
/// Used to derive independent per-`(seed, sweep, vertex)` streams.
#[inline]
pub fn mix_words(words: &[u64]) -> u64 {
    let mut state = 0x243f_6a88_85a3_08d3; // pi digits, arbitrary non-zero
    for &w in words {
        state ^= w;
        splitmix64(&mut state);
        state = state.rotate_left(17);
    }
    splitmix64(&mut state)
}

/// A small, fast, seedable pseudo-random generator (splitmix64 stream).
///
/// Implements [`rand::RngCore`] so it can drive everything in the `rand`
/// ecosystem while staying trivially reproducible and `Copy`-cheap to fork.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive a generator for a `(sweep, item)` pair: identical output no
    /// matter which thread processes the item.
    #[inline]
    pub fn for_item(seed: u64, sweep: u64, item: u64) -> Self {
        Self::new(mix_words(&[seed, sweep.wrapping_mul(0x9e37), item]))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_raw()) * u128::from(bound)) >> 64) as u64
    }
}

impl rand::RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// O(1) sampling from a fixed discrete distribution (Vose's alias method).
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Probability of keeping the column's own index, scaled to `[0,1]`.
    prob: Vec<f64>,
    /// Fallback index used when the coin flip rejects the column index.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights. Returns `None` for an empty slice or
    /// an all-zero / non-finite weight vector.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !(total.is_finite() && total > 0.0) || weights.iter().any(|w| *w < 0.0) {
            return None;
        }
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        // Partition indices into under- and over-full stacks.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, p) in prob.iter().enumerate() {
            if *p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Donate mass from the large column to fill the small one.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are exactly full (up to rounding).
        for i in large.into_iter().chain(small) {
            prob[i as usize] = 1.0;
        }
        Some(Self { prob, alias })
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw an index distributed according to the build weights.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let col = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// O(log n) sampling via prefix sums; cheap O(n) build.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl CumulativeSampler {
    /// Build from non-negative weights; `None` if all mass is zero.
    pub fn new(weights: impl IntoIterator<Item = f64>) -> Option<Self> {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            if !(w.is_finite() && w >= 0.0) {
                return None;
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() || total <= 0.0 {
            return None;
        }
        Some(Self { cumulative, total })
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no categories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Total weight mass.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Draw an index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen::<f64>() * self.total;
        // partition_point returns the first index with cumulative > x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn for_item_is_thread_layout_independent() {
        // Same (seed, sweep, item) => same stream, regardless of call order.
        let mut x = SplitMix64::for_item(1, 2, 3);
        let _ = SplitMix64::for_item(9, 9, 9).next_raw();
        let mut y = SplitMix64::for_item(1, 2, 3);
        assert_eq!(x.next_raw(), y.next_raw());
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn alias_rejects_degenerate() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn alias_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SplitMix64::new(42);
        let mut counts = [0u64; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0 * draws as f64;
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "category {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn alias_single_category() {
        let table = AliasTable::new(&[3.5]).unwrap();
        let mut rng = SplitMix64::new(0);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn cumulative_matches_weights() {
        let sampler = CumulativeSampler::new([5.0, 0.0, 5.0]).unwrap();
        let mut rng = SplitMix64::new(3);
        let mut counts = [0u64; 3];
        for _ in 0..100_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        let ratio = counts[0] as f64 / counts[2] as f64;
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn cumulative_rejects_degenerate() {
        assert!(CumulativeSampler::new([]).is_none());
        assert!(CumulativeSampler::new([0.0]).is_none());
        assert!(CumulativeSampler::new([-1.0, 2.0]).is_none());
    }

    #[test]
    fn alias_and_cumulative_agree_in_distribution() {
        let weights = [0.5, 1.5, 8.0];
        let alias = AliasTable::new(&weights).unwrap();
        let cum = CumulativeSampler::new(weights).unwrap();
        let mut rng = SplitMix64::new(99);
        let mut ca = [0f64; 3];
        let mut cc = [0f64; 3];
        let n = 100_000;
        for _ in 0..n {
            ca[alias.sample(&mut rng)] += 1.0;
            cc[cum.sample(&mut rng)] += 1.0;
        }
        for i in 0..3 {
            let diff = (ca[i] - cc[i]).abs() / n as f64;
            assert!(diff < 0.02, "category {i}: alias {} cum {}", ca[i], cc[i]);
        }
    }
}
