//! Fast, dependency-light container and sampling primitives used across hsbp.
//!
//! The blockmodel inner loops are dominated by hash-map lookups keyed by small
//! integers (block ids) and by weighted discrete sampling (choosing a
//! neighbour edge or a block proportionally to edge counts). This crate
//! provides:
//!
//! * [`hash`] — an Fx-style hasher (the algorithm used by rustc) plus
//!   `FxHashMap`/`FxHashSet` aliases, much faster than SipHash for integer
//!   keys,
//! * [`sample`] — O(1) alias-table sampling, cumulative (binary-search)
//!   sampling and a tiny splitmix-based counter RNG used for deterministic
//!   per-vertex randomness in parallel sweeps,
//! * [`fastmath`] — the shared `ln`/`x·ln x` helpers and the precomputed
//!   lookup tables behind `MathMode::Table`,
//! * [`sparse`] — the sparse row/column vectors backing the blockmodel
//!   matrix `B` (sorted-vector representation: canonical and deterministic),
//! * [`scratch`] — epoch-stamped reusable counters so the per-proposal hot
//!   path performs zero heap allocations in steady state.

pub mod fastmath;
pub mod hash;
pub mod sample;
pub mod scratch;
pub mod sparse;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use sample::{AliasTable, CumulativeSampler, SplitMix64};
pub use scratch::ScratchCounter;
pub use sparse::SparseRow;
