//! Property-based tests for the collections substrate.

use hsbp_collections::{AliasTable, CumulativeSampler, SparseRow, SplitMix64};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// A SparseRow must behave exactly like a BTreeMap<u32,u64> reference model.
    #[test]
    fn sparse_row_matches_model(ops in proptest::collection::vec((0u32..16, 0u64..100, any::<bool>()), 0..200)) {
        let mut row = SparseRow::new();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        for (key, amount, is_add) in ops {
            if is_add {
                row.add(key, amount);
                if amount > 0 {
                    *model.entry(key).or_insert(0) += amount;
                }
            } else {
                // Only subtract what the model can afford (sub underflow is a
                // contract violation, not a behaviour to test here).
                let available = model.get(&key).copied().unwrap_or(0);
                let amount = amount.min(available);
                row.sub(key, amount);
                if amount > 0 {
                    let v = model.get_mut(&key).unwrap();
                    *v -= amount;
                    if *v == 0 {
                        model.remove(&key);
                    }
                }
            }
        }
        let got = row.to_sorted_vec();
        let want: Vec<(u32, u64)> = model.into_iter().collect();
        prop_assert_eq!(got, want.clone());
        prop_assert_eq!(row.total(), want.iter().map(|&(_, v)| v).sum::<u64>());
        prop_assert_eq!(row.nnz(), want.len());
    }

    /// absorb(a) ≡ adding all of a's entries one by one.
    #[test]
    fn absorb_equals_elementwise_add(
        a in proptest::collection::vec((0u32..8, 1u64..50), 0..20),
        b in proptest::collection::vec((0u32..8, 1u64..50), 0..20),
    ) {
        let row_a: SparseRow = a.iter().copied().collect();
        let mut merged: SparseRow = b.iter().copied().collect();
        merged.absorb(&row_a);
        let mut manual: SparseRow = b.into_iter().collect();
        for (k, v) in a {
            manual.add(k, v);
        }
        prop_assert_eq!(merged.to_sorted_vec(), manual.to_sorted_vec());
    }

    /// Alias table never returns an out-of-range index and never returns a
    /// zero-weight category.
    #[test]
    fn alias_respects_support(weights in proptest::collection::vec(0.0f64..100.0, 1..32), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..200 {
            let idx = table.sample(&mut rng);
            prop_assert!(idx < weights.len());
            // Zero-weight categories may appear as alias *columns* but the
            // residual probability mass stored for them must be ~0, so over a
            // short run they should essentially never be emitted. Check with
            // weight > 0 strictly:
            if weights[idx] == 0.0 {
                // allowed only with negligible probability; fail deterministically
                // because Vose assigns prob 0 to zero-weight columns.
                prop_assert!(false, "sampled zero-weight category {}", idx);
            }
        }
    }

    /// CumulativeSampler returns in-range indices with non-zero weight.
    #[test]
    fn cumulative_respects_support(weights in proptest::collection::vec(0.0f64..100.0, 1..32), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let sampler = CumulativeSampler::new(weights.iter().copied()).unwrap();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..200 {
            let idx = sampler.sample(&mut rng);
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight category {}", idx);
        }
    }

    /// The counter RNG is a pure function of (seed, sweep, item).
    #[test]
    fn counter_rng_pure(seed in any::<u64>(), sweep in any::<u64>(), item in any::<u64>()) {
        let a = SplitMix64::for_item(seed, sweep, item).next_raw();
        let b = SplitMix64::for_item(seed, sweep, item).next_raw();
        prop_assert_eq!(a, b);
    }
}
