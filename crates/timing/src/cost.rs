//! The abstract cost model: how many work units each MCMC operation costs.
//!
//! Units are arbitrary (speedups are ratios); the *relative* weights follow
//! what the operations actually touch:
//!
//! * evaluating a proposal for vertex `v` walks `v`'s incident edges twice
//!   (neighbour census + Hastings sum) and the affected blockmodel rows —
//!   modelled as `propose_fixed + propose_per_edge · incident_arity(v)`,
//! * applying an accepted move *serially* updates O(degree) matrix cells —
//!   `update_per_edge · incident_arity(v)` (the asynchronous path skips
//!   this; it only flips one assignment slot, folded into the fixed cost),
//! * rebuilding `B` after a sweep touches every edge once —
//!   `rebuild_per_edge · E`, parallelisable except for a small merge
//!   fraction,
//! * every parallel section pays one `barrier` synchronisation.

/// Relative costs of the MCMC primitives (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed overhead per proposal (RNG, acceptance test, bookkeeping).
    pub propose_fixed: f64,
    /// Cost per incident edge when evaluating a proposal.
    pub propose_per_edge: f64,
    /// Cost per incident edge when applying an accepted move in place
    /// (serial Metropolis-Hastings path only).
    pub update_per_edge: f64,
    /// Cost per graph edge for the end-of-sweep blockmodel rebuild.
    pub rebuild_per_edge: f64,
    /// Fraction of the rebuild that is inherently serial (partial-result
    /// merging).
    pub rebuild_serial_fraction: f64,
    /// Synchronisation cost charged once per parallel section.
    pub barrier: f64,
    /// Fixed cost of putting one message on the (emulated) network —
    /// serialisation, framing, and per-packet latency.
    pub net_per_message: f64,
    /// Cost per payload byte on the wire (inverse bandwidth).
    pub net_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so simulated A-SBP/H-SBP speedups over serial SBP land
        // in the regime the paper measured on its 128-core EPYC (MCMC-phase
        // speedups of roughly 1.7–7.6× for A-SBP and ≤ ~2.7× for H-SBP on
        // synthetic graphs): the rebuild costs about as much per edge as a
        // proposal evaluation (both walk hash-map cells) and its
        // partial-result merge leaves a noticeable serial tail.
        Self {
            propose_fixed: 4.0,
            propose_per_edge: 1.0,
            update_per_edge: 0.5,
            rebuild_per_edge: 1.0,
            rebuild_serial_fraction: 0.15,
            barrier: 500.0,
            // A message costs about one barrier (kernel round-trip +
            // serialisation); bytes stream much cheaper than work units.
            net_per_message: 500.0,
            net_per_byte: 0.05,
        }
    }
}

impl CostModel {
    /// Cost of evaluating one proposal for a vertex with `incident` incident
    /// edges.
    #[inline]
    pub fn proposal_cost(&self, incident: usize) -> f64 {
        self.propose_fixed + self.propose_per_edge * incident as f64
    }

    /// Extra cost of applying an accepted move in place (serial path).
    #[inline]
    pub fn update_cost(&self, incident: usize) -> f64 {
        self.update_per_edge * incident as f64
    }

    /// Total cost of rebuilding the blockmodel for a graph with `num_edges`
    /// edges.
    #[inline]
    pub fn rebuild_cost(&self, num_edges: usize) -> f64 {
        self.rebuild_per_edge * num_edges as f64
    }

    /// Cost of folding one accepted move into the blockmodel during
    /// incremental end-of-sweep consolidation: re-gather the neighbour
    /// census under the evolving assignment (`propose_per_edge` per
    /// incident edge, plus the fixed bookkeeping) and apply the O(degree)
    /// matrix update (`update_per_edge` per incident edge).
    #[inline]
    pub fn consolidation_move_cost(&self, incident: usize) -> f64 {
        self.propose_fixed + (self.propose_per_edge + self.update_per_edge) * incident as f64
    }

    /// Crossover rule for end-of-sweep consolidation: apply the sweep's
    /// accepted moves incrementally when their summed
    /// [`CostModel::consolidation_move_cost`] undercuts a full O(E)
    /// rebuild, otherwise rebuild. Work units are compared directly (the
    /// incremental path is serial but barrier-free; the rebuild
    /// parallelises but touches every edge).
    #[inline]
    pub fn prefer_incremental_consolidation(
        &self,
        incremental_cost: f64,
        num_edges: usize,
    ) -> bool {
        incremental_cost < self.rebuild_cost(num_edges)
    }

    /// Cost of putting one framed message of `bytes` total size on the
    /// emulated network (fixed per-message overhead plus streaming).
    #[inline]
    pub fn message_cost(&self, bytes: usize) -> f64 {
        self.net_per_message + self.net_per_byte * bytes as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn proposal_cost_grows_with_degree() {
        let m = CostModel::default();
        assert!(m.proposal_cost(10) > m.proposal_cost(1));
        assert_eq!(m.proposal_cost(0), m.propose_fixed);
    }

    #[test]
    fn rebuild_cost_linear_in_edges() {
        let m = CostModel::default();
        assert!((m.rebuild_cost(200) - 2.0 * m.rebuild_cost(100)).abs() < 1e-12);
    }

    #[test]
    fn consolidation_crossover_tracks_move_volume() {
        let m = CostModel::default();
        // A handful of low-degree moves beats rebuilding a 10k-edge graph…
        let few: f64 = (0..20).map(|_| m.consolidation_move_cost(8)).sum();
        assert!(m.prefer_incremental_consolidation(few, 10_000));
        // …while moving nearly every vertex of a dense graph does not.
        let many: f64 = (0..5_000).map(|_| m.consolidation_move_cost(8)).sum();
        assert!(!m.prefer_incremental_consolidation(many, 10_000));
        // The move cost itself charges both the re-gather and the update.
        assert!(
            m.consolidation_move_cost(10)
                > m.proposal_cost(10) - m.propose_fixed + m.update_cost(10)
        );
    }

    #[test]
    fn defaults_positive() {
        let m = CostModel::default();
        assert!(m.propose_fixed > 0.0);
        assert!(m.propose_per_edge > 0.0);
        assert!(m.update_per_edge > 0.0);
        assert!(m.rebuild_per_edge > 0.0);
        assert!((0.0..1.0).contains(&m.rebuild_serial_fraction));
        assert!(m.barrier >= 0.0);
        assert!(m.net_per_message > 0.0);
        assert!(m.net_per_byte > 0.0);
    }

    #[test]
    fn message_cost_linear_in_bytes_plus_fixed() {
        let m = CostModel::default();
        assert_eq!(m.message_cost(0), m.net_per_message);
        let d = m.message_cost(1000) - m.message_cost(0);
        assert!((d - 1000.0 * m.net_per_byte).abs() < 1e-9);
    }
}
