//! Phase timing: wall-clock timers and a deterministic simulated-thread cost
//! model.
//!
//! The paper's speedup numbers (Figs. 4b, 6, 7) were measured on a 128-core
//! AMD EPYC node. This reproduction also runs on single-core containers, so
//! wall-clock alone cannot exhibit parallel speedup. The [`sim`] module
//! substitutes the testbed: every MCMC sweep *accounts* the abstract work
//! each vertex costs (a proposal touches each incident edge once, an
//! accepted serial move updates the blockmodel, a rebuild touches every
//! edge), and schedules parallel sections onto `T` virtual threads the same
//! way OpenMP's default static schedule would — contiguous chunks, makespan
//! = the slowest thread, plus a barrier. Simulated speedups therefore show
//! the same *shape* (who wins, where scaling tapers) as the paper's
//! hardware, deterministically, on any host.
//!
//! The [`timer`] module is a plain wall-clock phase accumulator used for the
//! execution-time-breakdown experiment (Fig. 2), which is a ratio and thus
//! meaningful on any machine.

// Accounting code may panic deliberately on broken invariants, never via a
// stray `unwrap`/`expect`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cost;
pub mod sim;
pub mod timer;

pub use cost::CostModel;
pub use sim::{Chunking, SimAccumulator, DEFAULT_THREAD_COUNTS};
pub use timer::{Phase, PhaseTimer};
