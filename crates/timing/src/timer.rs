//! Wall-clock phase accumulation (Fig. 2 measures the fraction of execution
//! time the MCMC phase takes versus the rest of the algorithm).

use std::time::{Duration, Instant};

/// The phases SBP spends time in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The (parallelisable) agglomerative block-merge phase (Algorithm 1).
    BlockMerge,
    /// The MCMC phase (Algorithms 2–4) — the paper's target of attack.
    Mcmc,
    /// Everything else: initialisation, bookkeeping, the outer search.
    Other,
}

const PHASES: [Phase; 3] = [Phase::BlockMerge, Phase::Mcmc, Phase::Other];

fn index(phase: Phase) -> usize {
    match phase {
        Phase::BlockMerge => 0,
        Phase::Mcmc => 1,
        Phase::Other => 2,
    }
}

/// Accumulates wall-clock time per [`Phase`].
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    totals: [Duration; 3],
}

impl PhaseTimer {
    /// Fresh timer with all phases at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f`, attributing its duration to `phase`.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = f();
        self.totals[index(phase)] += start.elapsed();
        result
    }

    /// Add an externally measured duration to `phase`.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        self.totals[index(phase)] += d;
    }

    /// Accumulated time in `phase`.
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[index(phase)]
    }

    /// Sum over all phases.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Fraction of total time spent in `phase` (0 if nothing recorded).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.grand_total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.total(phase).as_secs_f64() / total
        }
    }

    /// Merge another timer's totals into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for phase in PHASES {
            self.totals[index(phase)] += other.totals[index(phase)];
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn time_attributes_duration() {
        let mut timer = PhaseTimer::new();
        let out = timer.time(Phase::Mcmc, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(timer.total(Phase::Mcmc) >= Duration::from_millis(4));
        assert_eq!(timer.total(Phase::BlockMerge), Duration::ZERO);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut timer = PhaseTimer::new();
        timer.add(Phase::Mcmc, Duration::from_millis(30));
        timer.add(Phase::BlockMerge, Duration::from_millis(10));
        timer.add(Phase::Other, Duration::from_millis(10));
        let sum: f64 = [Phase::Mcmc, Phase::BlockMerge, Phase::Other]
            .iter()
            .map(|&p| timer.fraction(p))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((timer.fraction(Phase::Mcmc) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_timer_fraction_zero() {
        let timer = PhaseTimer::new();
        assert_eq!(timer.fraction(Phase::Mcmc), 0.0);
    }

    #[test]
    fn merge_adds_totals() {
        let mut a = PhaseTimer::new();
        a.add(Phase::Mcmc, Duration::from_secs(1));
        let mut b = PhaseTimer::new();
        b.add(Phase::Mcmc, Duration::from_secs(2));
        b.add(Phase::Other, Duration::from_secs(1));
        a.merge(&b);
        assert_eq!(a.total(Phase::Mcmc), Duration::from_secs(3));
        assert_eq!(a.total(Phase::Other), Duration::from_secs(1));
    }
}
