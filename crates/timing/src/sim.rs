//! Deterministic simulated-thread scheduler.
//!
//! Parallel loop sections are scheduled onto `T` virtual threads; the
//! section's simulated time is the *makespan* (the busiest thread's load)
//! plus a barrier. Two schedules are modelled:
//!
//! * [`Chunking::Static`] — OpenMP's default: the iteration space is split
//!   into `T` contiguous, equal-count chunks. On power-law graphs the chunk
//!   containing the hub vertices dominates, which is exactly the load
//!   imbalance the paper blames for the scaling taper past 8–16 threads
//!   (§5.5).
//! * [`Chunking::Dynamic`] — work-queue scheduling with a fixed chunk size:
//!   chunks are handed to the least-loaded thread in order. Used by the
//!   load-balancing ablation.

/// Thread counts used by the strong-scaling experiment (paper Fig. 7 sweeps
/// 1..128 on a 128-core EPYC).
pub const DEFAULT_THREAD_COUNTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Parallel-loop scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chunking {
    /// `T` contiguous equal-count chunks (OpenMP `schedule(static)`).
    Static,
    /// Work queue of fixed-size chunks, greedily assigned to the
    /// least-loaded thread (OpenMP `schedule(dynamic, chunk)`).
    Dynamic {
        /// Iterations per work-queue chunk.
        chunk_size: usize,
    },
}

/// Makespan of scheduling `costs` (one entry per loop iteration, in
/// iteration order) onto `threads` virtual threads.
pub fn makespan(costs: &[f64], threads: usize, chunking: Chunking) -> f64 {
    if costs.is_empty() {
        return 0.0;
    }
    let threads = threads.max(1);
    if threads == 1 {
        return costs.iter().sum();
    }
    match chunking {
        Chunking::Static => {
            let n = costs.len();
            let per = n.div_ceil(threads);
            costs
                .chunks(per.max(1))
                .map(|chunk| chunk.iter().sum::<f64>())
                .fold(0.0f64, f64::max)
        }
        Chunking::Dynamic { chunk_size } => {
            let chunk_size = chunk_size.max(1);
            // Greedy: each chunk (in order) goes to the least-loaded thread.
            // A binary heap of (load, thread) would be O(n log T); T <= 128
            // so a linear scan is fine and avoids float-ordering pitfalls.
            let mut loads = vec![0.0f64; threads];
            for chunk in costs.chunks(chunk_size) {
                let mut idx = 0;
                for (i, load) in loads.iter().enumerate() {
                    if *load < loads[idx] {
                        idx = i;
                    }
                }
                loads[idx] += chunk.iter().sum::<f64>();
            }
            loads.into_iter().fold(0.0f64, f64::max)
        }
    }
}

/// Accumulates simulated time for a whole phase, tracked simultaneously for
/// several thread counts (so one instrumented run yields a full scaling
/// curve).
#[derive(Debug, Clone)]
pub struct SimAccumulator {
    thread_counts: Vec<usize>,
    totals: Vec<f64>,
    chunking: Chunking,
    barrier: f64,
}

impl SimAccumulator {
    /// Accumulator for the given thread counts.
    pub fn new(thread_counts: &[usize], chunking: Chunking, barrier: f64) -> Self {
        assert!(!thread_counts.is_empty());
        Self {
            thread_counts: thread_counts.to_vec(),
            totals: vec![0.0; thread_counts.len()],
            chunking,
            barrier,
        }
    }

    /// Accumulator over [`DEFAULT_THREAD_COUNTS`] with static chunking.
    pub fn with_defaults(barrier: f64) -> Self {
        Self::new(DEFAULT_THREAD_COUNTS, Chunking::Static, barrier)
    }

    /// The tracked thread counts.
    pub fn thread_counts(&self) -> &[usize] {
        &self.thread_counts
    }

    /// Serial section: costs the same at every thread count.
    pub fn add_serial(&mut self, cost: f64) {
        for t in &mut self.totals {
            *t += cost;
        }
    }

    /// Parallel loop section with per-iteration `costs` (in iteration
    /// order); adds the schedule's makespan plus one barrier per thread
    /// count.
    pub fn add_parallel(&mut self, costs: &[f64]) {
        if costs.is_empty() {
            return;
        }
        for (i, &threads) in self.thread_counts.iter().enumerate() {
            let span = makespan(costs, threads, self.chunking);
            self.totals[i] += span + if threads > 1 { self.barrier } else { 0.0 };
        }
    }

    /// Perfectly divisible parallel work of `total` units with a serial
    /// fraction (Amdahl): `total·f + total·(1−f)/T` plus a barrier.
    pub fn add_parallel_uniform(&mut self, total: f64, serial_fraction: f64) {
        let f = serial_fraction.clamp(0.0, 1.0);
        for (i, &threads) in self.thread_counts.iter().enumerate() {
            let t = threads.max(1) as f64;
            let time = total * f + total * (1.0 - f) / t;
            self.totals[i] += time + if threads > 1 { self.barrier } else { 0.0 };
        }
    }

    /// Simulated total at `threads` (must be one of the tracked counts).
    pub fn total_for(&self, threads: usize) -> Option<f64> {
        self.thread_counts
            .iter()
            .position(|&t| t == threads)
            .map(|i| self.totals[i])
    }

    /// `(threads, simulated_total)` pairs.
    pub fn curve(&self) -> Vec<(usize, f64)> {
        self.thread_counts
            .iter()
            .copied()
            .zip(self.totals.iter().copied())
            .collect()
    }

    /// Fold another accumulator (same configuration) into this one.
    pub fn merge(&mut self, other: &SimAccumulator) {
        assert_eq!(
            self.thread_counts, other.thread_counts,
            "mismatched accumulators"
        );
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += b;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn makespan_single_thread_is_sum() {
        let costs = [1.0, 2.0, 3.0];
        assert_eq!(makespan(&costs, 1, Chunking::Static), 6.0);
    }

    #[test]
    fn makespan_uniform_static_scales_linearly() {
        let costs = vec![1.0; 128];
        let m4 = makespan(&costs, 4, Chunking::Static);
        assert!((m4 - 32.0).abs() < 1e-12);
        let m128 = makespan(&costs, 128, Chunking::Static);
        assert!((m128 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_static_skew_hurts() {
        // One heavy iteration at the front: the first chunk dominates.
        let mut costs = vec![1.0; 64];
        costs[0] = 100.0;
        let m = makespan(&costs, 8, Chunking::Static);
        // chunk 0 = 100 + 7 = 107.
        assert!((m - 107.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_beats_static_on_skew() {
        let mut costs = vec![1.0; 256];
        costs[0] = 200.0;
        let s = makespan(&costs, 8, Chunking::Static);
        let d = makespan(&costs, 8, Chunking::Dynamic { chunk_size: 4 });
        assert!(d < s, "dynamic {d} should beat static {s}");
    }

    #[test]
    fn makespan_never_below_critical_path() {
        let costs = [5.0, 1.0, 1.0, 1.0];
        for t in [1, 2, 4, 8] {
            for chunking in [Chunking::Static, Chunking::Dynamic { chunk_size: 1 }] {
                assert!(makespan(&costs, t, chunking) >= 5.0);
            }
        }
    }

    #[test]
    fn makespan_monotone_in_threads() {
        let costs: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut prev = f64::INFINITY;
        for t in [1, 2, 4, 8, 16] {
            let m = makespan(&costs, t, Chunking::Static);
            assert!(
                m <= prev + 1e-9,
                "makespan grew from {prev} to {m} at T={t}"
            );
            prev = m;
        }
    }

    #[test]
    fn empty_costs_cost_nothing() {
        assert_eq!(makespan(&[], 8, Chunking::Static), 0.0);
        let mut acc = SimAccumulator::with_defaults(10.0);
        acc.add_parallel(&[]);
        assert_eq!(acc.total_for(1), Some(0.0));
    }

    #[test]
    fn accumulator_serial_equal_everywhere() {
        let mut acc = SimAccumulator::with_defaults(0.0);
        acc.add_serial(42.0);
        for &(_, total) in &acc.curve() {
            assert_eq!(total, 42.0);
        }
    }

    #[test]
    fn accumulator_parallel_improves_with_threads() {
        let mut acc = SimAccumulator::with_defaults(1.0);
        let costs = vec![1.0; 4096];
        acc.add_parallel(&costs);
        let t1 = acc.total_for(1).unwrap();
        let t128 = acc.total_for(128).unwrap();
        assert!(t128 < t1 / 50.0, "t1 {t1} vs t128 {t128}");
    }

    #[test]
    fn accumulator_uniform_amdahl() {
        let mut acc = SimAccumulator::new(&[1, 10], Chunking::Static, 0.0);
        acc.add_parallel_uniform(100.0, 0.5);
        assert_eq!(acc.total_for(1), Some(100.0));
        assert_eq!(acc.total_for(10), Some(55.0));
    }

    #[test]
    fn accumulator_merge_adds() {
        let mut a = SimAccumulator::with_defaults(0.0);
        a.add_serial(5.0);
        let mut b = SimAccumulator::with_defaults(0.0);
        b.add_serial(7.0);
        a.merge(&b);
        assert_eq!(a.total_for(1), Some(12.0));
    }

    #[test]
    fn barrier_charged_only_when_parallel() {
        let mut acc = SimAccumulator::new(&[1, 2], Chunking::Static, 100.0);
        acc.add_parallel(&[1.0, 1.0]);
        assert_eq!(acc.total_for(1), Some(2.0)); // no barrier at T=1
        assert_eq!(acc.total_for(2), Some(101.0));
    }
}
