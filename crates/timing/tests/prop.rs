//! Property tests for the simulated-thread scheduler: makespan bounds that
//! must hold for every schedule.

use hsbp_timing::{sim::makespan, Chunking, SimAccumulator};
use proptest::prelude::*;

fn arb_costs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 0..200)
}

proptest! {
    /// Lower/upper bounds: max(critical path, total/T) <= makespan <= total.
    #[test]
    fn makespan_bounds(costs in arb_costs(), threads in 1usize..64, chunk in 1usize..16) {
        let total: f64 = costs.iter().sum();
        let critical = costs.iter().copied().fold(0.0, f64::max);
        for chunking in [Chunking::Static, Chunking::Dynamic { chunk_size: chunk }] {
            let m = makespan(&costs, threads, chunking);
            prop_assert!(m <= total + 1e-9, "makespan {} > total {}", m, total);
            prop_assert!(m + 1e-9 >= total / threads as f64, "makespan {} below perfect split", m);
            if !costs.is_empty() {
                prop_assert!(m + 1e-9 >= critical, "makespan {} below critical path {}", m, critical);
            }
        }
    }

    /// One thread always equals the serial sum; `threads >= n` with chunk 1
    /// dynamic equals the critical path.
    #[test]
    fn makespan_degenerate_cases(costs in arb_costs()) {
        let total: f64 = costs.iter().sum();
        prop_assert!((makespan(&costs, 1, Chunking::Static) - total).abs() < 1e-9);
        let many = costs.len().max(1) * 2;
        let m = makespan(&costs, many, Chunking::Dynamic { chunk_size: 1 });
        let critical = costs.iter().copied().fold(0.0, f64::max);
        prop_assert!((m - critical).abs() < 1e-9);
    }

    /// Dynamic scheduling with chunk 1 never loses to static by more than
    /// numerical noise on uniform workloads, and the accumulator's serial
    /// sections are thread-count-independent.
    #[test]
    fn accumulator_invariants(costs in arb_costs(), serial in 0.0f64..1000.0) {
        let mut acc = SimAccumulator::new(&[1, 4, 16], Chunking::Static, 0.0);
        acc.add_serial(serial);
        acc.add_parallel(&costs);
        let t1 = acc.total_for(1).unwrap();
        let t4 = acc.total_for(4).unwrap();
        let t16 = acc.total_for(16).unwrap();
        // More threads never hurt (barrier is zero here).
        prop_assert!(t4 <= t1 + 1e-9);
        prop_assert!(t16 <= t4 + 1e-9);
        // Serial floor.
        prop_assert!(t16 + 1e-9 >= serial);
    }

    /// Merging accumulators equals accumulating jointly.
    #[test]
    fn accumulator_merge_linear(a in arb_costs(), b in arb_costs()) {
        let mut separate_a = SimAccumulator::new(&[1, 8], Chunking::Static, 3.0);
        separate_a.add_parallel(&a);
        let mut separate_b = SimAccumulator::new(&[1, 8], Chunking::Static, 3.0);
        separate_b.add_parallel(&b);
        separate_a.merge(&separate_b);

        let mut joint = SimAccumulator::new(&[1, 8], Chunking::Static, 3.0);
        joint.add_parallel(&a);
        joint.add_parallel(&b);

        for t in [1usize, 8] {
            prop_assert!((separate_a.total_for(t).unwrap() - joint.total_for(t).unwrap()).abs() < 1e-9);
        }
    }
}
