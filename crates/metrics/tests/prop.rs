//! Property tests for the metrics: invariances and bounds that must hold
//! for arbitrary assignments.

use hsbp_graph::Graph;
use hsbp_metrics::{
    adjusted_rand_index, directed_modularity, entropy, mutual_information, nmi, pairwise_scores,
    pearson,
};
use proptest::prelude::*;

fn arb_assignment(n: usize, labels: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..labels, n)
}

proptest! {
    /// NMI is symmetric, bounded in [0,1], and 1 on identical inputs.
    #[test]
    fn nmi_properties(x in arb_assignment(30, 5), y in arb_assignment(30, 5)) {
        let v = nmi(&x, &y);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((nmi(&y, &x) - v).abs() < 1e-9);
        prop_assert!((nmi(&x, &x) - 1.0).abs() < 1e-9);
    }

    /// NMI is invariant under relabelling either side.
    #[test]
    fn nmi_relabel_invariant(x in arb_assignment(30, 5), y in arb_assignment(30, 5), offset in 1u32..100) {
        let y2: Vec<u32> = y.iter().map(|&b| b.wrapping_mul(3).wrapping_add(offset)).collect();
        // wrapping_mul(3) is injective on u32 (3 is odd), so y2 is a relabelling.
        prop_assert!((nmi(&x, &y) - nmi(&x, &y2)).abs() < 1e-9);
    }

    /// I(X;Y) <= min(H(X), H(Y)).
    #[test]
    fn mutual_information_bounded(x in arb_assignment(40, 6), y in arb_assignment(40, 6)) {
        let i = mutual_information(&x, &y);
        prop_assert!(i >= -1e-12);
        prop_assert!(i <= entropy(&x) + 1e-9);
        prop_assert!(i <= entropy(&y) + 1e-9);
    }

    /// ARI is 1 on identical partitions and <= 1 always.
    #[test]
    fn ari_bounds(x in arb_assignment(30, 4), y in arb_assignment(30, 4)) {
        let v = adjusted_rand_index(&x, &y);
        prop_assert!(v <= 1.0 + 1e-12);
        prop_assert!((adjusted_rand_index(&x, &x) - 1.0).abs() < 1e-9);
        // Symmetry.
        prop_assert!((adjusted_rand_index(&y, &x) - v).abs() < 1e-9);
    }

    /// Pairwise precision/recall/F1 live in [0,1]; F1 = 1 iff both are 1.
    #[test]
    fn pairwise_bounds(x in arb_assignment(25, 4), y in arb_assignment(25, 4)) {
        let s = pairwise_scores(&x, &y);
        for v in [s.precision, s.recall, s.f1] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
        let perfect = pairwise_scores(&x, &x);
        prop_assert!((perfect.f1 - 1.0).abs() < 1e-12);
    }

    /// Precision(x, y) == Recall(y, x): the definitions are transposes.
    #[test]
    fn pairwise_transpose(x in arb_assignment(25, 4), y in arb_assignment(25, 4)) {
        let a = pairwise_scores(&x, &y);
        let b = pairwise_scores(&y, &x);
        prop_assert!((a.precision - b.recall).abs() < 1e-12);
        prop_assert!((a.recall - b.precision).abs() < 1e-12);
    }

    /// Modularity is invariant under community relabelling and bounded by 1.
    #[test]
    fn modularity_relabel_invariant(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..60),
        assignment in arb_assignment(20, 4),
    ) {
        let g = Graph::from_edges(20, &edges);
        let q = directed_modularity(&g, &assignment);
        prop_assert!(q <= 1.0 + 1e-12);
        let relabeled: Vec<u32> = assignment.iter().map(|&b| b + 17).collect();
        prop_assert!((directed_modularity(&g, &relabeled) - q).abs() < 1e-9);
    }

    /// Pearson r is symmetric, bounded, and scale-invariant.
    #[test]
    fn pearson_properties(pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 4..40)) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let c = pearson(&x, &y);
        if c.r.is_finite() {
            prop_assert!((-1.0..=1.0).contains(&c.r));
            prop_assert!((pearson(&y, &x).r - c.r).abs() < 1e-9);
            let x_scaled: Vec<f64> = x.iter().map(|v| 3.0 * v + 5.0).collect();
            let c2 = pearson(&x_scaled, &y);
            prop_assert!((c2.r - c.r).abs() < 1e-6);
            if c.p_value.is_finite() {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&c.p_value));
            }
        }
    }
}
