//! Pearson correlation with significance (for Fig. 3's `r²` / `p`
//! annotations).
//!
//! The p-value is the standard two-sided t-test on
//! `t = r·√((n−2)/(1−r²))` with `ν = n−2` degrees of freedom, evaluated via
//! `p = I_{ν/(ν+t²)}(ν/2, 1/2)` — the regularized incomplete beta function,
//! implemented from scratch (Lanczos log-gamma + Lentz's continued
//! fraction), since no statistics crate is available offline.

use hsbp_collections::fastmath;

/// Result of a Pearson correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlation {
    /// Pearson correlation coefficient `r ∈ [−1, 1]`.
    pub r: f64,
    /// Coefficient of determination `r²`.
    pub r_squared: f64,
    /// Two-sided p-value of `H₀: r = 0` (NaN when `n < 3` or either input
    /// is constant).
    pub p_value: f64,
    /// Sample count.
    pub n: usize,
}

/// Pearson correlation between paired samples.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(x: &[f64], y: &[f64]) -> Correlation {
    assert_eq!(x.len(), y.len(), "paired samples required");
    let n = x.len();
    if n < 2 {
        return Correlation {
            r: f64::NAN,
            r_squared: f64::NAN,
            p_value: f64::NAN,
            n,
        };
    }
    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mean_x;
        let dy = b - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Correlation {
            r: f64::NAN,
            r_squared: f64::NAN,
            p_value: f64::NAN,
            n,
        };
    }
    let r = (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0);
    let r_squared = r * r;
    let p_value = if n < 3 {
        f64::NAN
    } else if (1.0 - r_squared) < 1e-15 {
        0.0
    } else {
        let df = nf - 2.0;
        let t = r * (df / (1.0 - r_squared)).sqrt();
        regularized_incomplete_beta(df / (df + t * t), df / 2.0, 0.5)
    };
    Correlation {
        r,
        r_squared,
        p_value,
        n,
    }
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 coefficients (Numerical Recipes / Boost parametrisation).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return fastmath::ln(pi / (pi * x).sin()) - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * fastmath::ln(2.0 * std::f64::consts::PI) + (x + 0.5) * fastmath::ln(t) - t
        + fastmath::ln(acc)
}

/// Regularized incomplete beta `I_x(a, b)` for `x ∈ [0,1]`, `a, b > 0`
/// (Lentz's modified continued fraction, as in Numerical Recipes §6.4).
pub fn regularized_incomplete_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x out of range: {x}");
    assert!(a > 0.0 && b > 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front = (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b)
        + fastmath::xlny(a, x)
        + fastmath::xlny(b, 1.0 - x))
    .exp();
    // Use the symmetry that keeps the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(x, a, b) / a
    } else {
        1.0 - front * beta_cf(1.0 - x, b, a) / b
    }
}

fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-30;
    let mut c = 1.0;
    let mut d = 1.0 - (a + b) * x / (a + 1.0);
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        // Even step.
        let numerator = m_f * (b - m_f) * x / ((a + 2.0 * m_f - 1.0) * (a + 2.0 * m_f));
        d = 1.0 + numerator * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + numerator / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let numerator = -(a + m_f) * (a + b + m_f) * x / ((a + 2.0 * m_f) * (a + 2.0 * m_f + 1.0));
        d = 1.0 + numerator * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + numerator / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(0.0, 2.0, 3.0), 0.0);
        assert_eq!(regularized_incomplete_beta(1.0, 2.0, 3.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetric_case() {
        // I_{0.5}(a, a) = 0.5.
        for a in [0.5, 1.0, 3.0, 10.0] {
            let v = regularized_incomplete_beta(0.5, a, a);
            assert!((v - 0.5).abs() < 1e-10, "a = {a}: {v}");
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.7, 0.95] {
            let v = regularized_incomplete_beta(x, 1.0, 1.0);
            assert!((v - x).abs() < 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_monotone() {
        let mut prev = 0.0;
        for i in 1..10 {
            let v = regularized_incomplete_beta(i as f64 / 10.0, 2.5, 4.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn perfect_correlation() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v + 1.0).collect();
        let c = pearson(&x, &y);
        assert!((c.r - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| -v).collect();
        let c = pearson(&x, &y);
        assert!((c.r + 1.0).abs() < 1e-12);
        assert_eq!(c.r_squared, c.r * c.r);
    }

    #[test]
    fn no_correlation_high_p() {
        // Orthogonal-ish pattern.
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let c = pearson(&x, &y);
        assert!(c.r.abs() < 0.5);
        assert!(c.p_value > 0.2, "p = {}", c.p_value);
    }

    #[test]
    fn known_p_value_spot_check() {
        // r = 0.8, n = 10 ⇒ t = 0.8·sqrt(8/0.36) = 3.771, ν = 8.
        // Two-sided p ≈ 0.0055 (standard tables).
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        // Construct y with r ≈ 0.8 exactly via regression residue pattern is
        // fiddly; instead verify the t->p mapping directly.
        let df = 8.0f64;
        let t = 0.8 * (df / (1.0 - 0.64)).sqrt();
        let p = regularized_incomplete_beta(df / (df + t * t), df / 2.0, 0.5);
        assert!((p - 0.0055).abs() < 0.001, "p = {p}");
        let _ = x;
    }

    #[test]
    fn degenerate_inputs() {
        let c = pearson(&[1.0], &[2.0]);
        assert!(c.r.is_nan());
        let c = pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
        assert!(c.r.is_nan(), "constant input has undefined correlation");
    }

    #[test]
    fn strong_noisy_correlation_detected() {
        // y = x + small deterministic perturbation.
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v + ((i % 5) as f64 - 2.0))
            .collect();
        let c = pearson(&x, &y);
        assert!(c.r > 0.95);
        assert!(c.p_value < 1e-10);
    }
}
