//! Pairwise-counting agreement metrics: precision, recall and F1 over
//! vertex pairs.
//!
//! The Graph Challenge (Kao et al., HPEC 2017) — the benchmark the paper's
//! SBP baseline comes from — scores partitions by treating every vertex
//! pair as a binary classification: *positive* if the pair shares a
//! community in the ground truth. Precision/recall of the detected
//! partition against that labelling complements NMI (which can look
//! forgiving on very unbalanced community sizes).

use hsbp_collections::FxHashMap;

/// Pairwise precision/recall/F1 of `detected` against `truth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseScores {
    /// Of the pairs the detection put together, the fraction that belong
    /// together.
    pub precision: f64,
    /// Of the pairs that belong together, the fraction the detection put
    /// together.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

fn choose2(k: u64) -> f64 {
    (k as f64) * (k as f64 - 1.0) / 2.0
}

/// Compute pairwise scores from two assignments over the same vertices.
///
/// Degenerate conventions: with no same-community pairs in the truth,
/// recall is 1; with none in the detection, precision is 1 (nothing was
/// asserted, so nothing was asserted wrongly).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pairwise_scores(truth: &[u32], detected: &[u32]) -> PairwiseScores {
    assert_eq!(
        truth.len(),
        detected.len(),
        "assignments must cover the same vertices"
    );
    let mut joint: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    let mut truth_sizes: FxHashMap<u32, u64> = FxHashMap::default();
    let mut detected_sizes: FxHashMap<u32, u64> = FxHashMap::default();
    for (&t, &d) in truth.iter().zip(detected) {
        *joint.entry((t, d)).or_insert(0) += 1;
        *truth_sizes.entry(t).or_insert(0) += 1;
        *detected_sizes.entry(d).or_insert(0) += 1;
    }
    // True positives: pairs together in both.
    let tp: f64 = joint.values().map(|&c| choose2(c)).sum();
    let truth_pairs: f64 = truth_sizes.values().map(|&c| choose2(c)).sum();
    let detected_pairs: f64 = detected_sizes.values().map(|&c| choose2(c)).sum();
    let precision = if detected_pairs == 0.0 {
        1.0
    } else {
        tp / detected_pairs
    };
    let recall = if truth_pairs == 0.0 {
        1.0
    } else {
        tp / truth_pairs
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairwiseScores {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_perfect() {
        let x = vec![0, 0, 1, 1, 2, 2];
        let s = pairwise_scores(&x, &x);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn relabeling_is_free() {
        let x = vec![0, 0, 1, 1];
        let y = vec![9, 9, 3, 3];
        let s = pairwise_scores(&x, &y);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn over_merging_hurts_precision_not_recall() {
        let truth = vec![0, 0, 1, 1];
        let merged = vec![0, 0, 0, 0];
        let s = pairwise_scores(&truth, &merged);
        assert_eq!(s.recall, 1.0);
        // truth pairs: 2; detected pairs: 6; tp: 2.
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn over_splitting_hurts_recall_not_precision() {
        let truth = vec![0, 0, 0, 0];
        let split = vec![0, 0, 1, 1];
        let s = pairwise_scores(&truth, &split);
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn singletons_vs_structure() {
        let truth = vec![0, 0, 1, 1];
        let singles = vec![0, 1, 2, 3];
        let s = pairwise_scores(&truth, &singles);
        assert_eq!(s.precision, 1.0, "no asserted pairs, vacuous precision");
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn all_singletons_both_sides() {
        let x = vec![0, 1, 2];
        let s = pairwise_scores(&x, &x);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let detected = vec![0, 0, 1, 1, 1, 0];
        let s = pairwise_scores(&truth, &detected);
        let expected = 2.0 * s.precision * s.recall / (s.precision + s.recall);
        assert!((s.f1 - expected).abs() < 1e-12);
        assert!(s.f1 > 0.0 && s.f1 < 1.0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        pairwise_scores(&[0, 1], &[0]);
    }
}
