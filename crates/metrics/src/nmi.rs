//! Normalized mutual information (and friends) between two community
//! assignments.
//!
//! The paper (§4.2) computes `NMI = I(X;Y) / √(H(X)·H(Y))` between ground
//! truth and inferred memberships. Labels need not be aligned or contiguous;
//! everything is computed from the contingency table.

use hsbp_collections::fastmath;
use hsbp_collections::FxHashMap;

/// Sparse contingency table between two assignments of the same length.
struct Contingency {
    /// `(label_x, label_y) -> count`.
    joint: FxHashMap<(u32, u32), u64>,
    /// Marginal counts of X's labels.
    marginal_x: FxHashMap<u32, u64>,
    /// Marginal counts of Y's labels.
    marginal_y: FxHashMap<u32, u64>,
    n: u64,
}

impl Contingency {
    fn build(x: &[u32], y: &[u32]) -> Self {
        assert_eq!(x.len(), y.len(), "assignments must cover the same vertices");
        let mut joint: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        let mut marginal_x: FxHashMap<u32, u64> = FxHashMap::default();
        let mut marginal_y: FxHashMap<u32, u64> = FxHashMap::default();
        for (&a, &b) in x.iter().zip(y) {
            *joint.entry((a, b)).or_insert(0) += 1;
            *marginal_x.entry(a).or_insert(0) += 1;
            *marginal_y.entry(b).or_insert(0) += 1;
        }
        Self {
            joint,
            marginal_x,
            marginal_y,
            n: x.len() as u64,
        }
    }
}

fn entropy_of_counts(counts: impl Iterator<Item = u64>, n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .filter(|&c| c > 0)
        .map(|c| {
            let p = c as f64 / n;
            -fastmath::xlnx(p)
        })
        .sum()
}

/// Shannon entropy `H(X)` (nats) of an assignment's label distribution.
pub fn entropy(x: &[u32]) -> f64 {
    let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
    for &a in x {
        *counts.entry(a).or_insert(0) += 1;
    }
    entropy_of_counts(counts.into_values(), x.len() as u64)
}

/// Mutual information `I(X;Y)` (nats) between two assignments.
pub fn mutual_information(x: &[u32], y: &[u32]) -> f64 {
    let table = Contingency::build(x, y);
    if table.n == 0 {
        return 0.0;
    }
    let n = table.n as f64;
    let mut info = 0.0;
    for (&(a, b), &c) in &table.joint {
        let p_xy = c as f64 / n;
        let p_x = table.marginal_x[&a] as f64 / n;
        let p_y = table.marginal_y[&b] as f64 / n;
        info += fastmath::xlny(p_xy, p_xy / (p_x * p_y));
    }
    info.max(0.0) // guard tiny negative rounding
}

/// `NMI = I(X;Y) / √(H(X)·H(Y))`, in `[0, 1]`.
///
/// Convention for degenerate cases: if both assignments are constant the
/// partitions are identical up to relabelling, NMI = 1; if exactly one is
/// constant there is no shared information to normalise, NMI = 0.
pub fn nmi(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len(), "assignments must cover the same vertices");
    let hx = entropy(x);
    let hy = entropy(y);
    if hx == 0.0 && hy == 0.0 {
        return 1.0;
    }
    if hx == 0.0 || hy == 0.0 {
        return 0.0;
    }
    (mutual_information(x, y) / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

/// Adjusted Rand index between two assignments (chance-corrected pair
/// agreement; extension beyond the paper's metrics).
pub fn adjusted_rand_index(x: &[u32], y: &[u32]) -> f64 {
    let table = Contingency::build(x, y);
    let n = table.n;
    if n < 2 {
        return 1.0;
    }
    fn choose2(k: u64) -> f64 {
        (k as f64) * (k as f64 - 1.0) / 2.0
    }
    let sum_joint: f64 = table.joint.values().map(|&c| choose2(c)).sum();
    let sum_x: f64 = table.marginal_x.values().map(|&c| choose2(c)).sum();
    let sum_y: f64 = table.marginal_y.values().map(|&c| choose2(c)).sum();
    let total = choose2(n);
    let expected = sum_x * sum_y / total;
    let max_index = 0.5 * (sum_x + sum_y);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_joint - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_assignments_nmi_one() {
        let x = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&x, &x) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeled_assignments_nmi_one() {
        let x = vec![0, 0, 1, 1, 2, 2];
        let y = vec![5, 5, 9, 9, 7, 7];
        assert!((nmi(&x, &y) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_assignments_nmi_zero() {
        // y splits each x-class evenly: I(X;Y) = 0.
        let x = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&x, &y) < 1e-12);
        assert!(adjusted_rand_index(&x, &y).abs() < 0.2);
    }

    #[test]
    fn constant_vs_structured() {
        let x = vec![0; 6];
        let y = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(nmi(&x, &y), 0.0);
        assert_eq!(nmi(&y, &x), 0.0);
        assert_eq!(nmi(&x, &x), 1.0);
    }

    #[test]
    fn entropy_values() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[3, 3, 3]), 0.0);
        let h = entropy(&[0, 1]);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
        // Uniform over 4 labels: ln 4.
        let h4 = entropy(&[0, 1, 2, 3]);
        assert!((h4 - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_bounds() {
        let x = vec![0, 0, 1, 1];
        let y = vec![0, 1, 1, 0];
        let i = mutual_information(&x, &y);
        assert!(i >= 0.0);
        assert!(i <= entropy(&x) + 1e-12);
    }

    #[test]
    fn partial_overlap_between_zero_and_one() {
        let x = vec![0, 0, 0, 1, 1, 1];
        let y = vec![0, 0, 1, 1, 1, 0]; // 4/6 agree
        let v = nmi(&x, &y);
        assert!(v > 0.0 && v < 1.0, "nmi = {v}");
    }

    #[test]
    fn nmi_symmetric() {
        let x = vec![0, 1, 0, 2, 1, 2, 0];
        let y = vec![1, 1, 0, 0, 2, 2, 1];
        assert!((nmi(&x, &y) - nmi(&y, &x)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        nmi(&[0, 1], &[0]);
    }

    #[test]
    fn ari_penalises_chance() {
        // Random-looking disagreement should sit near 0, well below NMI=1.
        let x = vec![0, 0, 1, 1, 0, 1, 0, 1, 1, 0];
        let y = vec![1, 0, 1, 0, 0, 1, 1, 0, 1, 0];
        let ari = adjusted_rand_index(&x, &y);
        assert!(ari.abs() < 0.5, "ari = {ari}");
    }
}
