//! Community-detection quality metrics (paper §4.2).
//!
//! * [`nmi`] — normalized mutual information between two assignments,
//!   `NMI = I(X;Y) / √(H(X)·H(Y))`, the accuracy measure on synthetic
//!   graphs with known ground truth; plus entropy, mutual information and
//!   the adjusted Rand index (extension),
//! * [`modularity`] — Newman's modularity, directed form, reported for
//!   completeness on real-world graphs,
//! * [`mdl_norm`] — the paper's normalized MDL: the fitted model's MDL
//!   divided by the MDL of the single-community null blockmodel; values
//!   near (or above) 1 mean the fit found no structure beyond the null,
//! * [`correlation`] — Pearson correlation with a two-sided p-value (used
//!   to reproduce Fig. 3's `r²`/`p` annotations), built on a from-scratch
//!   regularized incomplete beta function,
//! * [`pairwise`] — Graph-Challenge-style pairwise precision/recall/F1
//!   (extension; the challenge is where the paper's SBP baseline originates).

pub mod correlation;
pub mod mdl_norm;
pub mod modularity;
pub mod nmi;
pub mod pairwise;

pub use correlation::{pearson, Correlation};
pub use mdl_norm::normalized_mdl;
pub use modularity::directed_modularity;
pub use nmi::{adjusted_rand_index, entropy, mutual_information, nmi};
pub use pairwise::{pairwise_scores, PairwiseScores};
