//! Newman's modularity, directed form.
//!
//! `Q = Σ_c [ e_cc/E − (d_out_c/E)·(d_in_c/E) ]` where `e_cc` is the weight
//! of edges inside community `c` and `d_out_c`, `d_in_c` its out-/in-degree
//! mass. Reduces to the classic definition on symmetrised graphs. The paper
//! reports modularity for completeness but shows it correlates with NMI
//! less strongly than normalized MDL (Fig. 3).

use hsbp_collections::FxHashMap;
use hsbp_graph::Graph;

/// Directed modularity of `assignment` on `graph`. Returns 0 for an
/// edgeless graph.
pub fn directed_modularity(graph: &Graph, assignment: &[u32]) -> f64 {
    assert_eq!(
        assignment.len(),
        graph.num_vertices(),
        "assignment length mismatch"
    );
    let e = graph.total_weight() as f64;
    if e == 0.0 {
        return 0.0;
    }
    let mut within: FxHashMap<u32, u64> = FxHashMap::default();
    let mut d_out: FxHashMap<u32, u64> = FxHashMap::default();
    let mut d_in: FxHashMap<u32, u64> = FxHashMap::default();
    for (u, v, w) in graph.edges() {
        let cu = assignment[u as usize];
        let cv = assignment[v as usize];
        *d_out.entry(cu).or_insert(0) += w;
        *d_in.entry(cv).or_insert(0) += w;
        if cu == cv {
            *within.entry(cu).or_insert(0) += w;
        }
    }
    let mut q = 0.0;
    for (&c, &dout) in &d_out {
        let e_cc = within.get(&c).copied().unwrap_or(0) as f64;
        let din = d_in.get(&c).copied().unwrap_or(0) as f64;
        q += e_cc / e - (dout as f64 / e) * (din / e);
    }
    // Communities with in-mass but no out-mass still owe their null term.
    for (&c, &din) in &d_in {
        if !d_out.contains_key(&c) {
            let e_cc = within.get(&c).copied().unwrap_or(0) as f64;
            q += e_cc / e - 0.0 * (din as f64 / e);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for group in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
            for &a in &group {
                for &b in &group {
                    if a != b {
                        edges.push((a, b));
                    }
                }
            }
        }
        edges.push((3, 4));
        edges.push((7, 0));
        Graph::from_edges(8, &edges)
    }

    #[test]
    fn planted_partition_has_high_modularity() {
        let g = two_cliques();
        let q = directed_modularity(&g, &[0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(q > 0.35, "q = {q}");
    }

    #[test]
    fn single_community_zero_modularity() {
        let g = two_cliques();
        let q = directed_modularity(&g, &[0; 8]);
        // e_cc/E = 1, (dout/E)(din/E) = 1 ⇒ Q = 0.
        assert!(q.abs() < 1e-12, "q = {q}");
    }

    #[test]
    fn anti_community_negative() {
        // Bipartite-ish: all edges cross the partition.
        let g = Graph::from_edges(4, &[(0, 2), (2, 0), (1, 3), (3, 1), (0, 3), (1, 2)]);
        let q = directed_modularity(&g, &[0, 0, 1, 1]);
        assert!(q < 0.0, "q = {q}");
    }

    #[test]
    fn planted_beats_random_split() {
        let g = two_cliques();
        let planted = directed_modularity(&g, &[0, 0, 0, 0, 1, 1, 1, 1]);
        let random = directed_modularity(&g, &[0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(planted > random);
    }

    #[test]
    fn empty_graph_zero() {
        let g = Graph::from_edges(3, &[]);
        assert_eq!(directed_modularity(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn modularity_bounded_above_by_one() {
        // Perfectly separated communities: Q < 1 always.
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let q = directed_modularity(&g, &[0, 0, 1, 1]);
        assert!(q > 0.0 && q < 1.0, "q = {q}");
        assert!((q - 0.5).abs() < 1e-12); // 2 communities, e_cc/E = .5 each, null .25 each
    }
}
