//! The paper's normalized MDL: `MDL_norm = MDL / MDL_null` where the null
//! blockmodel places every vertex in a single community.
//!
//! `MDL_norm < 1` means the fitted partition describes the graph better
//! than "no structure"; values at or above 1 flag graphs where the
//! algorithm found no real community structure (the paper's
//! `p2p-Gnutella31` case). Unlike raw MDL it is comparable across graphs of
//! different sizes and, per Fig. 3, correlates with NMI more strongly than
//! modularity does.

use hsbp_blockmodel::{mdl, Blockmodel};
use hsbp_graph::Graph;

/// Normalized MDL of an assignment on `graph`.
///
/// Returns `f64::NAN` for an edgeless graph (both numerator and denominator
/// degenerate to the label-cost-only regime).
pub fn normalized_mdl(graph: &Graph, assignment: &[u32]) -> f64 {
    let num_blocks = assignment
        .iter()
        .copied()
        .max()
        .map_or(1, |m| m as usize + 1);
    let bm = Blockmodel::from_assignment(graph, assignment.to_vec(), num_blocks);
    normalized_mdl_of(graph, &bm)
}

/// Normalized MDL of an already-built blockmodel.
pub fn normalized_mdl_of(graph: &Graph, bm: &Blockmodel) -> f64 {
    let null = mdl::null_mdl(graph.total_weight());
    if null == 0.0 {
        return f64::NAN;
    }
    mdl::mdl(bm, graph.num_vertices(), graph.total_weight()).total / null
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsbp_graph::Graph;

    fn strong_two_community_graph() -> (Graph, Vec<u32>) {
        let k = 12u32;
        let mut edges = Vec::new();
        for g0 in 0..2u32 {
            for a in 0..k {
                for b in 0..k {
                    if a != b {
                        edges.push((g0 * k + a, g0 * k + b));
                    }
                }
            }
        }
        edges.push((k - 1, k));
        let assignment: Vec<u32> = (0..2 * k).map(|v| v / k).collect();
        (Graph::from_edges(2 * k as usize, &edges), assignment)
    }

    #[test]
    fn null_partition_scores_one() {
        let (g, _) = strong_two_community_graph();
        let norm = normalized_mdl(&g, &vec![0; g.num_vertices()]);
        assert!((norm - 1.0).abs() < 1e-9, "norm = {norm}");
    }

    #[test]
    fn good_partition_below_one() {
        let (g, truth) = strong_two_community_graph();
        let norm = normalized_mdl(&g, &truth);
        assert!(norm < 1.0, "norm = {norm}");
    }

    #[test]
    fn good_partition_beats_bad_partition() {
        let (g, truth) = strong_two_community_graph();
        let good = normalized_mdl(&g, &truth);
        let bad: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 2).collect();
        let bad_score = normalized_mdl(&g, &bad);
        assert!(good < bad_score, "good {good} vs bad {bad_score}");
    }

    #[test]
    fn singleton_partition_above_one() {
        // Paying V·ln V of label cost on a small graph: worse than null.
        let (g, _) = strong_two_community_graph();
        let singleton: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let norm = normalized_mdl(&g, &singleton);
        assert!(norm > 1.0, "norm = {norm}");
    }

    #[test]
    fn edgeless_graph_is_nan() {
        let g = Graph::from_edges(4, &[]);
        assert!(normalized_mdl(&g, &[0, 0, 1, 1]).is_nan());
    }
}
