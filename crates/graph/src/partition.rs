//! METIS partition-file (`.part.K`) support.
//!
//! `gpmetis graph.metis K` writes `graph.metis.part.K`: one line per vertex,
//! line `i` holding the 0-based part id of vertex `i-1`. This is the
//! interchange format for handing an externally computed vertex partition to
//! the sharded SBP pipeline, and the writer lets partitions computed here be
//! fed back to METIS tooling.
//!
//! Reader paths must surface malformed input as [`IoError`], never panic.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::io::IoError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a METIS `.part.K` file: one part id per line, vertex `i` on line
/// `i + 1`. Blank lines and `%` comments are skipped (parse errors report
/// 1-based line numbers, like [`crate::metis::read_metis`]).
///
/// Returns the per-vertex part assignment. Part ids may be sparse; callers
/// that need dense shard indices should compact them (the shard layer does).
pub fn read_partition<R: Read>(reader: R) -> Result<Vec<u32>, IoError> {
    let mut parts = Vec::new();
    let mut lineno = 0usize;
    for line in BufReader::new(reader).lines() {
        lineno += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        // METIS writes exactly one id per line; accept (and reject with a
        // clear message) anything else on the line.
        let mut tokens = trimmed.split_whitespace();
        let token = tokens
            .next()
            .ok_or_else(|| parse_err(lineno, "missing part id"))?;
        if tokens.next().is_some() {
            return Err(parse_err(lineno, "expected one part id per line"));
        }
        let part: u32 = token
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad part id {token:?}: {e}")))?;
        parts.push(part);
    }
    if parts.is_empty() {
        return Err(parse_err(lineno, "empty partition file"));
    }
    Ok(parts)
}

/// Read a `.part.K` file from disk; see [`read_partition`].
pub fn read_partition_file(path: impl AsRef<Path>) -> Result<Vec<u32>, IoError> {
    read_partition(std::fs::File::open(path)?)
}

/// Write a vertex partition in METIS `.part.K` layout (one part id per
/// line, vertex order).
pub fn write_partition<W: Write>(parts: &[u32], mut writer: W) -> std::io::Result<()> {
    for &part in parts {
        writeln!(writer, "{part}")?;
    }
    Ok(())
}

/// Write a `.part.K` file to disk; see [`write_partition`].
pub fn write_partition_file(parts: &[u32], path: impl AsRef<Path>) -> std::io::Result<()> {
    write_partition(parts, std::fs::File::create(path)?)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn reads_plain_file() {
        let input = "0\n1\n0\n2\n";
        assert_eq!(read_partition(input.as_bytes()).unwrap(), vec![0, 1, 0, 2]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let input = "% produced by gpmetis\n1\n\n 0 \n";
        assert_eq!(read_partition(input.as_bytes()).unwrap(), vec![1, 0]);
    }

    #[test]
    fn roundtrip() {
        let parts = vec![3, 0, 0, 1, 2, 1];
        let mut buf = Vec::new();
        write_partition(&parts, &mut buf).unwrap();
        assert_eq!(read_partition(buf.as_slice()).unwrap(), parts);
    }

    #[test]
    fn error_reports_one_based_line() {
        let input = "0\n1\nfrog\n";
        match read_partition(input.as_bytes()) {
            Err(IoError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("frog"), "message: {message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_multiple_ids_per_line() {
        let input = "0 1\n";
        match read_partition(input.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_empty_file() {
        assert!(read_partition("".as_bytes()).is_err());
        assert!(read_partition("% only a comment\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hsbp-partition-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.metis.part.4");
        let parts = vec![0, 3, 1, 2, 2, 0];
        write_partition_file(&parts, &path).unwrap();
        assert_eq!(read_partition_file(&path).unwrap(), parts);
    }
}
