//! Compressed-sparse-row directed multigraph.
//!
//! Both directions of adjacency are materialised: the DCSBM proposal step
//! draws a uniformly random *incident* edge of a vertex (in- or out-), and
//! the delta-MDL computation needs the blocks of all in- and out-neighbours.
//! Parallel sweeps read the structure concurrently, so everything here is
//! immutable after construction (`&Graph` is `Sync`).

use crate::{Vertex, Weight};

/// Immutable directed multigraph in CSR form (out- and in-adjacency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    num_edges: usize,
    total_weight: Weight,
    // Out-adjacency.
    out_offsets: Vec<usize>,
    out_targets: Vec<Vertex>,
    out_weights: Vec<Weight>,
    // In-adjacency (transpose).
    in_offsets: Vec<usize>,
    in_sources: Vec<Vertex>,
    in_weights: Vec<Weight>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of stored (directed) edges. Parallel edges are collapsed at
    /// build time, so this counts distinct `(u, v)` pairs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all edge weights (equals `num_edges` for unweighted graphs).
    #[inline]
    pub fn total_weight(&self) -> Weight {
        self.total_weight
    }

    /// Out-neighbours of `v` with weights.
    #[inline]
    pub fn out_edges(&self, v: Vertex) -> impl Iterator<Item = (Vertex, Weight)> + '_ {
        let range = self.out_offsets[v as usize]..self.out_offsets[v as usize + 1];
        self.out_targets[range.clone()]
            .iter()
            .copied()
            .zip(self.out_weights[range].iter().copied())
    }

    /// In-neighbours of `v` with weights.
    #[inline]
    pub fn in_edges(&self, v: Vertex) -> impl Iterator<Item = (Vertex, Weight)> + '_ {
        let range = self.in_offsets[v as usize]..self.in_offsets[v as usize + 1];
        self.in_sources[range.clone()]
            .iter()
            .copied()
            .zip(self.in_weights[range].iter().copied())
    }

    /// Out-neighbour vertex ids only.
    #[inline]
    pub fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.out_targets[self.out_offsets[v as usize]..self.out_offsets[v as usize + 1]]
    }

    /// In-neighbour vertex ids only.
    #[inline]
    pub fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.in_sources[self.in_offsets[v as usize]..self.in_offsets[v as usize + 1]]
    }

    /// Weighted out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: Vertex) -> Weight {
        let range = self.out_offsets[v as usize]..self.out_offsets[v as usize + 1];
        self.out_weights[range].iter().sum()
    }

    /// Weighted in-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: Vertex) -> Weight {
        let range = self.in_offsets[v as usize]..self.in_offsets[v as usize + 1];
        self.in_weights[range].iter().sum()
    }

    /// Total (in + out) weighted degree of `v`. Self-loops count once in
    /// each direction, matching the blockmodel's degree bookkeeping.
    #[inline]
    pub fn degree(&self, v: Vertex) -> Weight {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Number of distinct out-edges of `v` (unweighted out-degree).
    #[inline]
    pub fn out_arity(&self, v: Vertex) -> usize {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// Number of distinct in-edges of `v` (unweighted in-degree).
    #[inline]
    pub fn in_arity(&self, v: Vertex) -> usize {
        self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]
    }

    /// Iterate over every stored edge as `(source, target, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex, Weight)> + '_ {
        (0..self.num_vertices as Vertex)
            .flat_map(move |u| self.out_edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// The `k`-th incident edge of `v`, counting out-edges first then
    /// in-edges. Returns `(neighbor, weight, is_out_edge)`.
    ///
    /// This underlies the MCMC proposal: draw `k` uniformly from
    /// `0..(out_arity + in_arity)` to get a uniformly random incident edge.
    #[inline]
    pub fn incident_edge(&self, v: Vertex, k: usize) -> (Vertex, Weight, bool) {
        let out_n = self.out_arity(v);
        if k < out_n {
            let idx = self.out_offsets[v as usize] + k;
            (self.out_targets[idx], self.out_weights[idx], true)
        } else {
            let idx = self.in_offsets[v as usize] + (k - out_n);
            (self.in_sources[idx], self.in_weights[idx], false)
        }
    }

    /// Total number of incident edge slots of `v` (`out_arity + in_arity`).
    #[inline]
    pub fn incident_arity(&self, v: Vertex) -> usize {
        self.out_arity(v) + self.in_arity(v)
    }

    /// Prefix sum of incident arity: total incident edge slots of all
    /// vertices `< i`, with `incident_prefix(num_vertices)` the grand total.
    /// O(1) — read straight off the CSR offset arrays. This is the monotone
    /// cost function degree-aware chunk scheduling uses: per-vertex proposal
    /// cost is proportional to degree, and the offsets give its prefix sum
    /// for free.
    #[inline]
    pub fn incident_prefix(&self, i: usize) -> usize {
        self.out_offsets[i] + self.in_offsets[i]
    }

    /// Self-loop weight of `v` (0 if none).
    pub fn self_loop(&self, v: Vertex) -> Weight {
        self.out_edges(v)
            .filter(|&(t, _)| t == v)
            .map(|(_, w)| w)
            .sum()
    }

    /// Symmetrised copy: every directed edge `(u,v,w)` also contributes
    /// `(v,u,w)`; duplicate pairs collapse by weight addition. Self-loops are
    /// kept once. (Paper §6 lists undirected support as future work; this is
    /// the entry point for it.)
    pub fn to_undirected(&self) -> Graph {
        let mut builder = GraphBuilder::new(self.num_vertices);
        for (u, v, w) in self.edges() {
            builder.add_edge_weighted(u, v, w);
            if u != v {
                builder.add_edge_weighted(v, u, w);
            }
        }
        builder.build()
    }

    /// Internal consistency check (used by tests and debug assertions):
    /// offsets monotone, in/out views describe the same edge multiset.
    pub fn validate(&self) -> Result<(), String> {
        if self.out_offsets.len() != self.num_vertices + 1
            || self.in_offsets.len() != self.num_vertices + 1
        {
            return Err("offset array length mismatch".into());
        }
        if self.out_offsets.windows(2).any(|w| w[0] > w[1])
            || self.in_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("offsets not monotone".into());
        }
        if *self.out_offsets.last().unwrap() != self.out_targets.len() {
            return Err("out offsets do not cover targets".into());
        }
        if *self.in_offsets.last().unwrap() != self.in_sources.len() {
            return Err("in offsets do not cover sources".into());
        }
        let mut fwd: Vec<(Vertex, Vertex, Weight)> = self.edges().collect();
        let mut bwd: Vec<(Vertex, Vertex, Weight)> = (0..self.num_vertices as Vertex)
            .flat_map(|v| self.in_edges(v).map(move |(u, w)| (u, v, w)))
            .collect();
        fwd.sort_unstable();
        bwd.sort_unstable();
        if fwd != bwd {
            return Err("in-adjacency is not the transpose of out-adjacency".into());
        }
        let wsum: Weight = self.out_weights.iter().sum();
        if wsum != self.total_weight {
            return Err("total weight mismatch".into());
        }
        Ok(())
    }
}

/// Accumulates edges and produces an immutable [`Graph`].
///
/// Duplicate `(u, v)` pairs are collapsed into a single edge whose weight is
/// the sum — the DCSBM treats parallel edges as weight, and collapsing keeps
/// adjacency scans proportional to distinct neighbours.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(Vertex, Vertex, Weight)>,
}

impl GraphBuilder {
    /// Builder for a graph with `num_vertices` vertices (ids `0..n`).
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Builder with capacity for `num_edges` edge insertions.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Number of raw (pre-collapse) edge insertions so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add an unweighted directed edge `u -> v`.
    #[inline]
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) {
        self.add_edge_weighted(u, v, 1);
    }

    /// Add a weighted directed edge `u -> v`.
    #[inline]
    pub fn add_edge_weighted(&mut self, u: Vertex, v: Vertex, w: Weight) {
        debug_assert!((u as usize) < self.num_vertices, "source {u} out of range");
        debug_assert!((v as usize) < self.num_vertices, "target {v} out of range");
        self.num_vertices = self.num_vertices.max(u as usize + 1).max(v as usize + 1);
        self.edges.push((u, v, w));
    }

    /// Finalise into an immutable CSR graph.
    pub fn build(mut self) -> Graph {
        let n = self.num_vertices;
        // Sort + collapse duplicates.
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut collapsed: Vec<(Vertex, Vertex, Weight)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            match collapsed.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => collapsed.push((u, v, w)),
            }
        }
        let m = collapsed.len();

        // Out-CSR straight from the sorted list.
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _, _) in &collapsed {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        let mut total_weight: Weight = 0;
        for &(_, v, w) in &collapsed {
            out_targets.push(v);
            out_weights.push(w);
            total_weight += w;
        }

        // In-CSR by counting sort on target.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v, _) in &collapsed {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as Vertex; m];
        let mut in_weights = vec![0 as Weight; m];
        for &(u, v, w) in &collapsed {
            let slot = cursor[v as usize];
            in_sources[slot] = u;
            in_weights[slot] = w;
            cursor[v as usize] += 1;
        }

        Graph {
            num_vertices: n,
            num_edges: m,
            total_weight,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }
}

impl Graph {
    /// Build directly from an edge list (convenience for tests/examples).
    pub fn from_edges(num_vertices: usize, edges: &[(Vertex, Vertex)]) -> Graph {
        let mut b = GraphBuilder::with_capacity(num_vertices, edges.len());
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0 (cycle back), 1 -> 1 (loop)
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0), (1, 1)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.total_weight(), 6);
        g.validate().unwrap();
    }

    #[test]
    fn adjacency_is_correct() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(1), &[1, 3]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.degree(0), 3);
        // vertex 1: out = {1,3} (2), in = {0,1} (2)
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.self_loop(1), 1);
        assert_eq!(g.self_loop(0), 0);
    }

    #[test]
    fn duplicate_edges_collapse_to_weight() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_weight(), 3);
        assert_eq!(g.out_edges(0).collect::<Vec<_>>(), vec![(1, 3)]);
        assert_eq!(g.in_edges(1).collect::<Vec<_>>(), vec![(0, 3)]);
    }

    #[test]
    fn incident_edges_cover_both_directions() {
        let g = diamond();
        // vertex 3: out {0}, in {1, 2}
        assert_eq!(g.incident_arity(3), 3);
        let incidents: Vec<_> = (0..3).map(|k| g.incident_edge(3, k)).collect();
        assert_eq!(incidents[0], (0, 1, true));
        assert!(incidents[1..].iter().all(|&(_, _, is_out)| !is_out));
        let mut in_nbrs: Vec<_> = incidents[1..].iter().map(|&(n, _, _)| n).collect();
        in_nbrs.sort_unstable();
        assert_eq!(in_nbrs, vec![1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(3, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.incident_arity(2), 0);
        g.validate().unwrap();
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
        g.validate().unwrap();
    }

    #[test]
    fn edges_iterator_matches_input() {
        let edges = [(0, 1), (2, 0), (1, 2)];
        let g = Graph::from_edges(3, &edges);
        let mut got: Vec<_> = g.edges().map(|(u, v, _)| (u, v)).collect();
        got.sort_unstable();
        let mut want = edges.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn undirected_symmetrises() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 2)]);
        let u = g.to_undirected();
        assert_eq!(u.out_neighbors(1), &[0, 2]);
        assert_eq!(u.out_neighbors(0), &[1]);
        assert_eq!(u.self_loop(2), 1);
        u.validate().unwrap();
    }

    #[test]
    fn weighted_builder() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_weighted(0, 1, 5);
        b.add_edge_weighted(1, 0, 2);
        let g = b.build();
        assert_eq!(g.total_weight(), 7);
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(g.in_degree(0), 2);
    }
}
