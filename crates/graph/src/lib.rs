//! Directed multigraph substrate for hsbp.
//!
//! Stochastic block partitioning operates on directed, optionally weighted
//! graphs; the paper evaluates on directed, unweighted datasets. This crate
//! provides:
//!
//! * [`csr`] — the [`Graph`] type: a compressed-sparse-row representation
//!   with both out- and in-adjacency (the MCMC proposal machinery walks both
//!   directions of every vertex), plus a flexible [`GraphBuilder`],
//! * [`io`] — Matrix Market (SuiteSparse's native format) and TSV edge-list
//!   readers/writers,
//! * [`stats`] — degree distributions, density, power-law exponent
//!   estimation, and the within/between community edge ratio `r` used when
//!   characterising the paper's synthetic graphs,
//! * [`metis`] — METIS graph-file reader/writer (the HPC partitioning
//!   ecosystem's interchange format),
//! * [`partition`] — METIS `.part.K` partition-file reader/writer, feeding
//!   externally computed vertex partitions to the sharded SBP pipeline,
//! * [`algo`] — weak components and induced subgraphs for preprocessing,
//! * [`dot`] — GraphViz export with community colouring.

pub mod algo;
pub mod csr;
pub mod dot;
pub mod io;
pub mod metis;
pub mod partition;
pub mod stats;

pub use algo::{
    induced_subgraph, largest_component_subgraph, num_weak_components, weakly_connected_components,
};
pub use csr::{Graph, GraphBuilder};
pub use stats::GraphStats;

/// Vertex identifier. `u32` keeps hot arrays compact; graphs beyond 4 B
/// vertices are out of scope (the paper's largest has ~0.8 M).
pub type Vertex = u32;

/// Integer edge weight (1 for the paper's unweighted datasets).
pub type Weight = u64;
