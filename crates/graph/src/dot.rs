//! GraphViz DOT export with optional community colouring — handy for eyeballing
//! small graphs and detected partitions (Fig. 1 of the paper is exactly such
//! a picture).

use crate::{Graph, Vertex};
use std::io::Write;

/// A palette of visually distinct fill colours; communities beyond its
/// length wrap around.
const PALETTE: [&str; 12] = [
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462", "#b3de69", "#fccde5",
    "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
];

/// Write `graph` as a DOT digraph. When `communities` is given (one label
/// per vertex) vertices are filled by community colour and grouped into
/// clusters, which makes the block structure visible in most DOT layouts.
pub fn write_dot<W: Write>(
    graph: &Graph,
    communities: Option<&[u32]>,
    mut writer: W,
) -> std::io::Result<()> {
    if let Some(c) = communities {
        assert_eq!(
            c.len(),
            graph.num_vertices(),
            "community labels must cover all vertices"
        );
    }
    writeln!(writer, "digraph hsbp {{")?;
    writeln!(writer, "  node [style=filled, shape=circle, fontsize=10];")?;
    match communities {
        Some(labels) => {
            // Group vertices per community into subgraph clusters.
            let max_label = labels.iter().copied().max().unwrap_or(0);
            for community in 0..=max_label {
                let members: Vec<Vertex> = (0..graph.num_vertices() as Vertex)
                    .filter(|&v| labels[v as usize] == community)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let color = PALETTE[community as usize % PALETTE.len()];
                writeln!(writer, "  subgraph cluster_{community} {{")?;
                writeln!(writer, "    label=\"community {community}\";")?;
                for v in members {
                    writeln!(writer, "    v{v} [fillcolor=\"{color}\"];")?;
                }
                writeln!(writer, "  }}")?;
            }
        }
        None => {
            for v in 0..graph.num_vertices() {
                writeln!(writer, "  v{v};")?;
            }
        }
    }
    for (u, v, w) in graph.edges() {
        if w > 1 {
            writeln!(writer, "  v{u} -> v{v} [label=\"{w}\"];")?;
        } else {
            writeln!(writer, "  v{u} -> v{v};")?;
        }
    }
    writeln!(writer, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(graph: &Graph, communities: Option<&[u32]>) -> String {
        let mut buf = Vec::new();
        write_dot(graph, communities, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn plain_export_lists_all_vertices_and_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let dot = render(&g, None);
        assert!(dot.starts_with("digraph"));
        for v in 0..3 {
            assert!(dot.contains(&format!("v{v}")));
        }
        assert!(dot.contains("v0 -> v1;"));
        assert!(dot.contains("v1 -> v2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn communities_become_clusters() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let dot = render(&g, Some(&[0, 0, 1, 1]));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.contains("fillcolor"));
    }

    #[test]
    fn weighted_edges_labelled() {
        let mut b = crate::GraphBuilder::new(2);
        b.add_edge_weighted(0, 1, 5);
        let g = b.build();
        let dot = render(&g, None);
        assert!(dot.contains("label=\"5\""));
    }

    #[test]
    fn empty_communities_skipped() {
        // Label space {0, 2}: cluster_1 must not appear.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let dot = render(&g, Some(&[0, 2]));
        assert!(dot.contains("cluster_0"));
        assert!(!dot.contains("cluster_1 "));
        assert!(dot.contains("cluster_2"));
    }

    #[test]
    #[should_panic]
    fn wrong_label_count_panics() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        render(&g, Some(&[0]));
    }
}
