//! Descriptive statistics used to characterise datasets (Tables 1 and 2) and
//! to sanity-check generated DCSBM graphs against their target parameters.

use crate::{Graph, Vertex};
use hsbp_collections::fastmath;
use hsbp_parallel::ChunkPlan;

/// Summary statistics of a directed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: usize,
    /// Distinct directed edge count.
    pub num_edges: usize,
    /// Sum of edge weights.
    pub total_weight: u64,
    /// Minimum total (in+out) degree.
    pub min_degree: u64,
    /// Maximum total degree.
    pub max_degree: u64,
    /// Mean total degree (`2E/V` for a directed graph counted both ways).
    pub mean_degree: f64,
    /// Edge density `E / (V·(V−1))`.
    pub density: f64,
    /// Number of self loops.
    pub self_loops: usize,
    /// Continuous-approximation MLE of the power-law exponent of the total
    /// degree distribution (Clauset–Shalizi–Newman, with `x_min` = smallest
    /// positive degree).
    pub power_law_exponent: f64,
}

impl GraphStats {
    /// Compute statistics; degree scans run on the persistent worker pool
    /// with degree-weighted chunks (hubs cost more to scan than leaves).
    pub fn compute(graph: &Graph) -> GraphStats {
        let n = graph.num_vertices();
        let pool = hsbp_parallel::global();
        let plan = ChunkPlan::from_prefix(n, pool.chunk_target(), |i| {
            (graph.incident_prefix(i) + i) as u64
        });
        let degrees: Vec<u64> = pool.map_indexed(&plan, || (), |(), i| graph.degree(i as Vertex));
        let self_loops = pool
            .map_indexed(&plan, || (), |(), i| graph.self_loop(i as Vertex) > 0)
            .into_iter()
            .filter(|&l| l)
            .count();
        let min_degree = degrees.iter().copied().min().unwrap_or(0);
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let total: u64 = degrees.iter().sum();
        let mean_degree = if n == 0 { 0.0 } else { total as f64 / n as f64 };
        let density = if n > 1 {
            graph.num_edges() as f64 / (n as f64 * (n as f64 - 1.0))
        } else {
            0.0
        };
        GraphStats {
            num_vertices: n,
            num_edges: graph.num_edges(),
            total_weight: graph.total_weight(),
            min_degree,
            max_degree,
            mean_degree,
            density,
            self_loops,
            power_law_exponent: power_law_mle(&degrees),
        }
    }
}

/// Histogram of total degrees: `histogram[d]` = number of vertices with
/// total degree `d` (capped at `max_bin`, the last bin absorbs the tail).
pub fn degree_histogram(graph: &Graph, max_bin: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bin + 1];
    for v in 0..graph.num_vertices() as Vertex {
        let d = (graph.degree(v) as usize).min(max_bin);
        hist[d] += 1;
    }
    hist
}

/// Continuous MLE for the exponent of `p(d) ∝ d^−α`:
/// `α = 1 + n / Σ ln(d_i / (d_min − 0.5))`, over positive degrees.
pub fn power_law_mle(degrees: &[u64]) -> f64 {
    let positive: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d > 0)
        .map(|&d| d as f64)
        .collect();
    if positive.len() < 2 {
        return f64::NAN;
    }
    let d_min = positive.iter().copied().fold(f64::INFINITY, f64::min);
    let denom: f64 = positive
        .iter()
        .map(|&d| fastmath::ln(d / (d_min - 0.5)))
        .sum();
    if denom <= 0.0 {
        return f64::NAN;
    }
    1.0 + positive.len() as f64 / denom
}

/// Within/between community edge ratio `r` for a given assignment:
/// `r = (# within-community edges) / (# between-community edges)`.
///
/// This is the knob the paper's generator varies; computing it on generated
/// graphs closes the loop on Table 1.
pub fn within_between_ratio(graph: &Graph, assignment: &[u32]) -> f64 {
    assert_eq!(assignment.len(), graph.num_vertices());
    let (within, between) = graph
        .edges()
        .map(|(u, v, w)| {
            if assignment[u as usize] == assignment[v as usize] {
                (w, 0)
            } else {
                (0, w)
            }
        })
        .fold((0u64, 0u64), |(aw, ab), (w, b)| (aw + w, ab + b));
    if between == 0 {
        f64::INFINITY
    } else {
        within as f64 / between as f64
    }
}

/// Vertices sorted by total degree, descending (ties by id for determinism).
/// This is the ordering H-SBP uses to pick its influential set `V*`.
pub fn vertices_by_degree_desc(graph: &Graph) -> Vec<Vertex> {
    let mut order: Vec<Vertex> = (0..graph.num_vertices() as Vertex).collect();
    let degrees: Vec<u64> = (0..graph.num_vertices() as Vertex)
        .map(|v| graph.degree(v))
        .collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(degrees[v as usize]), v));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn star(n: usize) -> Graph {
        // hub 0 -> each spoke
        let edges: Vec<(Vertex, Vertex)> = (1..n as Vertex).map(|v| (0, v)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn stats_on_star() {
        let g = star(11);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.min_degree, 1);
        assert!((s.mean_degree - 20.0 / 11.0).abs() < 1e-12);
        assert_eq!(s.self_loops, 0);
    }

    #[test]
    fn self_loops_counted() {
        let g = Graph::from_edges(3, &[(0, 0), (1, 1), (1, 2)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.self_loops, 2);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = star(8);
        let hist = degree_histogram(&g, 16);
        assert_eq!(hist.iter().sum::<usize>(), 8);
        assert_eq!(hist[1], 7); // spokes
        assert_eq!(hist[7], 1); // hub
    }

    #[test]
    fn histogram_tail_bin_absorbs() {
        let g = star(100);
        let hist = degree_histogram(&g, 4);
        assert_eq!(hist[4], 1); // hub degree 99 lands in last bin
    }

    #[test]
    fn power_law_mle_recovers_exponent_roughly() {
        // Sample from a power law with alpha = 2.5 by inverse CDF. Use a
        // larger x_min so integer rounding doesn't bias the continuous MLE.
        let mut degrees = Vec::new();
        let mut state = 12345u64;
        for _ in 0..20000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            // Continuous power law x_min = 10, alpha = 2.5.
            let x = 10.0 * (1.0 - u).powf(-1.0 / 1.5);
            degrees.push(x.round() as u64);
        }
        let alpha = power_law_mle(&degrees);
        assert!((2.2..2.8).contains(&alpha), "alpha = {alpha}");
    }

    #[test]
    fn power_law_mle_degenerate_inputs() {
        assert!(power_law_mle(&[]).is_nan());
        assert!(power_law_mle(&[5]).is_nan());
        assert!(power_law_mle(&[3, 3, 3]).is_finite()); // identical degrees: finite (large) alpha
    }

    #[test]
    fn ratio_r() {
        // 2 communities {0,1} and {2,3}; 3 within, 1 between.
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (0, 2)]);
        let assignment = vec![0, 0, 1, 1];
        let r = within_between_ratio(&g, &assignment);
        assert!((r - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_r_no_between_edges() {
        let g = Graph::from_edges(2, &[(0, 0), (1, 1)]);
        assert!(within_between_ratio(&g, &[0, 1]).is_infinite());
    }

    #[test]
    fn degree_order_desc() {
        let g = star(5);
        let order = vertices_by_degree_desc(&g);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
        // spokes tie: sorted by id.
        assert_eq!(&order[1..], &[1, 2, 3, 4]);
    }
}
