//! METIS graph-file support.
//!
//! METIS is the lingua franca of HPC graph partitioning tools, so an HPC
//! community-detection library should read and write it. The format is
//! undirected: line 1 is `n m [fmt [ncon]]` (`m` = number of *undirected*
//! edges), then line `i` lists the 1-based neighbours of vertex `i`
//! (each undirected edge appears in both endpoint lines). `fmt` is a
//! three-digit flag string `[vertex-sizes][vertex-weights][edge-weights]`;
//! only edge weights (`fmt % 10 == 1`) affect the topology and are
//! supported here (vertex weights are parsed and skipped).
//!
//! Reader paths must surface malformed input as [`IoError`], never panic.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::io::IoError;
use crate::{Graph, GraphBuilder, Vertex, Weight};
use std::io::{BufRead, BufReader, Read, Write};

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a METIS graph file. Each undirected edge `{u, v}` becomes the two
/// directed edges `u -> v` and `v -> u`.
pub fn read_metis<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;
    // Header (comments start with '%').
    let header = loop {
        match lines.next() {
            Some(line) => {
                lineno += 1;
                let line = line?;
                let trimmed = line.trim().to_string();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break trimmed;
            }
            None => return Err(parse_err(lineno, "empty file")),
        }
    };
    let head: Vec<u64> = header
        .split_whitespace()
        .map(|t| t.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(lineno, format!("bad header: {e}")))?;
    if head.len() < 2 || head.len() > 4 {
        return Err(parse_err(lineno, "header must be `n m [fmt [ncon]]`"));
    }
    let n = head[0] as usize;
    let m = head[1] as usize;
    let fmt = head.get(2).copied().unwrap_or(0);
    let has_edge_weights = fmt % 10 == 1;
    let has_vertex_weights = (fmt / 10) % 10 == 1;
    let ncon = head
        .get(3)
        .copied()
        .unwrap_or(u64::from(has_vertex_weights)) as usize;
    if (fmt / 100) % 10 == 1 {
        return Err(parse_err(
            lineno,
            "vertex sizes (fmt=1xx) are not supported",
        ));
    }

    let mut builder = GraphBuilder::with_capacity(n, 2 * m);
    let mut vertex = 0usize;
    let mut directed_edges = 0usize;
    for line in lines {
        lineno += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('%') {
            continue;
        }
        if vertex >= n {
            if trimmed.is_empty() {
                continue;
            }
            return Err(parse_err(lineno, "more adjacency lines than vertices"));
        }
        let mut tokens = trimmed.split_whitespace().map(|t| {
            t.parse::<u64>()
                .map_err(|e| parse_err(lineno, format!("bad token: {e}")))
        });
        // Skip vertex weights.
        for _ in 0..ncon {
            if tokens.next().transpose()?.is_none() {
                return Err(parse_err(lineno, "missing vertex weight"));
            }
        }
        while let Some(nbr) = tokens.next().transpose()? {
            if nbr == 0 || nbr as usize > n {
                return Err(parse_err(
                    lineno,
                    format!("neighbour {nbr} outside 1..={n}"),
                ));
            }
            let weight: Weight = if has_edge_weights {
                tokens
                    .next()
                    .transpose()?
                    .ok_or_else(|| parse_err(lineno, "missing edge weight"))?
                    .max(1)
            } else {
                1
            };
            builder.add_edge_weighted(vertex as Vertex, (nbr - 1) as Vertex, weight);
            directed_edges += 1;
        }
        vertex += 1;
    }
    if vertex != n {
        return Err(parse_err(
            lineno,
            format!("expected {n} adjacency lines, got {vertex}"),
        ));
    }
    if directed_edges != 2 * m {
        return Err(parse_err(
            lineno,
            format!("header promises {m} undirected edges but lists {directed_edges} endpoints"),
        ));
    }
    Ok(builder.build())
}

/// Write a graph as a METIS file. METIS is undirected, so each vertex pair
/// `{u, v}` becomes one undirected edge whose weight is the *maximum* of
/// the two directed weights (a symmetric graph therefore round-trips
/// exactly). Self-loops are dropped — METIS forbids them. Edge weights are
/// emitted when any merged weight exceeds 1.
pub fn write_metis<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    let n = graph.num_vertices();
    // Merge directions: pair (min, max) -> weight.
    let mut builder = GraphBuilder::new(n);
    for (u, v, w) in graph.edges() {
        if u != v {
            builder.add_edge_weighted(u.min(v), u.max(v), w);
        }
    }
    // Collapse duplicates via the builder, then take the max against the
    // reverse direction by re-walking the original graph.
    let merged = builder.build();
    let pair_weight = |u: Vertex, v: Vertex| -> Weight {
        let fwd = graph
            .out_edges(u)
            .find(|&(t, _)| t == v)
            .map_or(0, |(_, w)| w);
        let bwd = graph
            .out_edges(v)
            .find(|&(t, _)| t == u)
            .map_or(0, |(_, w)| w);
        fwd.max(bwd)
    };
    let mut m = 0usize;
    let mut weighted = false;
    let mut pairs: Vec<Vec<(Vertex, Weight)>> = vec![Vec::new(); n];
    for (u, v, _) in merged.edges() {
        let w = pair_weight(u, v);
        m += 1;
        weighted |= w > 1;
        pairs[u as usize].push((v, w));
        pairs[v as usize].push((u, w));
    }
    if weighted {
        writeln!(writer, "{n} {m} 001")?;
    } else {
        writeln!(writer, "{n} {m}")?;
    }
    for adjacency in &pairs {
        let mut first = true;
        for &(v, w) in adjacency {
            if !first {
                write!(writer, " ")?;
            }
            first = false;
            if weighted {
                write!(writer, "{} {}", v + 1, w)?;
            } else {
                write!(writer, "{}", v + 1)?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn reads_classic_example() {
        // The 7-vertex example from the METIS manual (unweighted).
        let input = "%% comment\n7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n";
        let g = read_metis(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 22); // 11 undirected = 22 directed
                                       // Symmetry: u->v implies v->u.
        for (u, v, _) in g.edges() {
            assert!(
                g.out_neighbors(v).contains(&u),
                "missing reverse of {u}->{v}"
            );
        }
    }

    #[test]
    fn reads_edge_weights() {
        let input = "3 3 001\n2 5 3 1\n1 5 3 2\n1 1 2 2\n";
        let g = read_metis(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_edges(0).find(|&(v, _)| v == 1).unwrap().1, 5);
    }

    #[test]
    fn skips_vertex_weights() {
        // fmt=010, ncon=1: first token of each line is a vertex weight.
        let input = "2 1 010 1\n9 2\n4 1\n";
        let g = read_metis(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn isolated_vertices_have_empty_lines() {
        let input = "3 1\n2\n1\n\n";
        let g = read_metis(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn rejects_inconsistent_edge_count() {
        let input = "2 5\n2\n1\n";
        assert!(read_metis(input.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        let input = "2 1\n7\n\n";
        assert!(read_metis(input.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_undirected() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn write_symmetrises_and_drops_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 2)]);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g2.num_edges(), 4); // {0,1} and {1,2}, both directions
        assert_eq!(g2.self_loop(2), 0);
    }

    #[test]
    fn weighted_header_and_max_merge() {
        // Asymmetric weights: the writer keeps the max per pair and must
        // flag edge weights in the header (fmt ending in 1).
        let mut b = GraphBuilder::new(3);
        b.add_edge_weighted(0, 1, 2);
        b.add_edge_weighted(1, 0, 9);
        b.add_edge_weighted(1, 2, 1);
        let g = b.build();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(
            text.lines().next().unwrap().ends_with("001"),
            "header: {text}"
        );
        let g2 = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g2.out_edges(0).find(|&(v, _)| v == 1).unwrap().1, 9);
        assert_eq!(g2.out_edges(1).find(|&(v, _)| v == 0).unwrap().1, 9);
        assert_eq!(g2.out_edges(2).find(|&(v, _)| v == 1).unwrap().1, 1);
    }

    #[test]
    fn weighted_roundtrip() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_weighted(0, 1, 7);
        b.add_edge_weighted(1, 0, 7);
        let g = b.build();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g2.total_weight(), 14);
    }
}
