//! Graph I/O: Matrix Market (the SuiteSparse interchange format) and TSV
//! edge lists.
//!
//! The paper's real-world datasets ship from the SuiteSparse Matrix
//! Collection as `.mtx` coordinate files; the reader here accepts the
//! `matrix coordinate {pattern|integer|real} general` headers those use.
//! Vertices in Matrix Market are 1-based; [`Graph`] ids are 0-based.
//!
//! Reader paths must surface malformed input as [`IoError`], never panic.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::{Graph, GraphBuilder, Vertex, Weight};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Error raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying stream failure.
    Io(std::io::Error),
    /// Structured parse failure with a 1-based line number.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a Matrix Market coordinate file as a directed graph.
///
/// Supports `pattern` (unweighted), `integer` and `real` value types with
/// `general` symmetry; `symmetric` inputs are expanded to both directions.
/// Real weights are rounded to the nearest positive integer (the DCSBM works
/// on integer edge counts).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // Header line: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = loop {
        match lines.next() {
            Some(line) => {
                lineno += 1;
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(parse_err(lineno, "empty file")),
        }
    };
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") {
        return Err(parse_err(lineno, "missing %%MatrixMarket header"));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(parse_err(
            lineno,
            "only `matrix coordinate` files are supported",
        ));
    }
    let field = tokens[3].clone();
    if !matches!(field.as_str(), "pattern" | "integer" | "real") {
        return Err(parse_err(
            lineno,
            format!("unsupported field type `{field}`"),
        ));
    }
    let symmetry = tokens[4].clone();
    if !matches!(symmetry.as_str(), "general" | "symmetric") {
        return Err(parse_err(
            lineno,
            format!("unsupported symmetry `{symmetry}`"),
        ));
    }

    // Size line (after comments).
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                lineno += 1;
                let line = line?;
                let trimmed = line.trim().to_string();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break trimmed;
            }
            None => return Err(parse_err(lineno, "missing size line")),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(lineno, format!("bad size line: {e}")))?;
    if dims.len() != 3 {
        return Err(parse_err(lineno, "size line must be `rows cols nnz`"));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    let n = rows.max(cols);

    let mut builder = GraphBuilder::with_capacity(n, nnz);
    let mut seen = 0usize;
    for line in lines {
        lineno += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing row index"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad row index: {e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing column index"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad column index: {e}")))?;
        if u == 0 || v == 0 || u > n || v > n {
            return Err(parse_err(
                lineno,
                format!("index ({u}, {v}) outside 1..={n}"),
            ));
        }
        let w: Weight = match field.as_str() {
            "pattern" => 1,
            "integer" => {
                let raw: i64 = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing integer value"))?
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad integer value: {e}")))?;
                raw.unsigned_abs().max(1)
            }
            _ => {
                let raw: f64 = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing real value"))?
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad real value: {e}")))?;
                (raw.abs().round() as Weight).max(1)
            }
        };
        let (u, v) = ((u - 1) as Vertex, (v - 1) as Vertex);
        builder.add_edge_weighted(u, v, w);
        if symmetry == "symmetric" && u != v {
            builder.add_edge_weighted(v, u, w);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            lineno,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(builder.build())
}

/// Write a graph as a Matrix Market `coordinate integer general` file.
pub fn write_matrix_market<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate integer general")?;
    writeln!(writer, "% written by hsbp-graph")?;
    writeln!(
        writer,
        "{} {} {}",
        graph.num_vertices(),
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v, w) in graph.edges() {
        writeln!(writer, "{} {} {}", u + 1, v + 1, w)?;
    }
    Ok(())
}

/// Read a whitespace-separated 0-based edge list: `src dst [weight]` per
/// line; `#`-prefixed lines are comments. The vertex count is
/// `max id + 1` unless `num_vertices` is given.
pub fn read_edge_list<R: Read>(reader: R, num_vertices: Option<usize>) -> Result<Graph, IoError> {
    let mut edges: Vec<(Vertex, Vertex, Weight)> = Vec::new();
    let mut max_id: usize = 0;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: Vertex = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing source"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad source: {e}")))?;
        let v: Vertex = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing target"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad target: {e}")))?;
        let w: Weight = match parts.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| parse_err(lineno, format!("bad weight: {e}")))?,
            None => 1,
        };
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v, w));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    if n <= max_id && !edges.is_empty() {
        return Err(parse_err(
            0,
            format!("num_vertices {n} too small for max id {max_id}"),
        ));
    }
    let mut builder = GraphBuilder::with_capacity(n, edges.len());
    for (u, v, w) in edges {
        builder.add_edge_weighted(u, v, w);
    }
    Ok(builder.build())
}

/// Write a graph as a 0-based TSV edge list (`src\tdst\tweight`).
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    for (u, v, w) in graph.edges() {
        writeln!(writer, "{u}\t{v}\t{w}")?;
    }
    Ok(())
}

/// Load a graph from a path, dispatching on extension: `.mtx` (Matrix
/// Market), `.graph`/`.metis` (METIS), anything else as an edge list.
pub fn load_path(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let ext = path
        .extension()
        .map(|e| e.to_string_lossy().to_ascii_lowercase());
    match ext.as_deref() {
        Some("mtx") => read_matrix_market(file),
        Some("graph" | "metis") => crate::metis::read_metis(file),
        _ => read_edge_list(file, None),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn matrix_market_pattern_roundtrip() {
        let input = "%%MatrixMarket matrix coordinate pattern general\n\
                     % a comment\n\
                     3 3 4\n\
                     1 2\n\
                     2 3\n\
                     3 1\n\
                     1 3\n";
        let g = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);

        let mut out = Vec::new();
        write_matrix_market(&g, &mut out).unwrap();
        let g2 = read_matrix_market(out.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn matrix_market_symmetric_expands() {
        let input = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                     2 2 1\n\
                     1 2\n";
        let g = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn matrix_market_integer_weights() {
        let input = "%%MatrixMarket matrix coordinate integer general\n\
                     2 2 1\n\
                     1 2 7\n";
        let g = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.total_weight(), 7);
    }

    #[test]
    fn matrix_market_real_weights_round() {
        let input = "%%MatrixMarket matrix coordinate real general\n\
                     2 2 2\n\
                     1 2 2.6\n\
                     2 1 0.2\n";
        let g = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.out_degree(0), 3); // 2.6 -> 3
        assert_eq!(g.out_degree(1), 1); // 0.2 -> clamped to 1
    }

    #[test]
    fn matrix_market_rejects_bad_header() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn matrix_market_rejects_out_of_range() {
        let input = "%%MatrixMarket matrix coordinate pattern general\n\
                     2 2 1\n\
                     1 5\n";
        assert!(read_matrix_market(input.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_wrong_count() {
        let input = "%%MatrixMarket matrix coordinate pattern general\n\
                     2 2 3\n\
                     1 2\n";
        assert!(read_matrix_market(input.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_roundtrip() {
        let input = "# comment\n0 1\n1 2 4\n2 0\n";
        let g = read_edge_list(input.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.total_weight(), 6);

        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice(), None).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_respects_explicit_vertex_count() {
        let g = read_edge_list("0 1\n".as_bytes(), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert!(read_edge_list("0 5\n".as_bytes(), Some(3)).is_err());
    }

    #[test]
    fn empty_edge_list() {
        let g = read_edge_list("".as_bytes(), Some(4)).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
