//! Basic graph algorithms: weakly connected components and induced
//! subgraphs.
//!
//! Community detection treats edge direction statistically, but
//! *reachability* ignoring direction still matters operationally: vertices
//! in different weak components share no evidence, so SBP will never merge
//! them for likelihood reasons (see the `disconnected_components` test in
//! the workspace integration suite), and preprocessing pipelines routinely
//! run detection per-component.

use crate::{Graph, GraphBuilder, Vertex};

/// Label every vertex with its weakly-connected-component id (ids are
/// compact, `0..num_components`, assigned in order of first discovery).
pub fn weakly_connected_components(graph: &Graph) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut component = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<Vertex> = Vec::new();
    for start in 0..n as Vertex {
        if component[start as usize] != u32::MAX {
            continue;
        }
        component[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for u in graph
                .out_neighbors(v)
                .iter()
                .chain(graph.in_neighbors(v))
                .copied()
            {
                if component[u as usize] == u32::MAX {
                    component[u as usize] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    component
}

/// Number of weakly connected components.
pub fn num_weak_components(graph: &Graph) -> usize {
    weakly_connected_components(graph)
        .into_iter()
        .max()
        .map_or(0, |m| m as usize + 1)
}

/// Extract the subgraph induced by `keep` (vertices where `keep[v]`),
/// relabelling retained vertices compactly. Returns the subgraph and the
/// mapping `old id -> new id` (`None` for dropped vertices).
pub fn induced_subgraph(graph: &Graph, keep: &[bool]) -> (Graph, Vec<Option<Vertex>>) {
    assert_eq!(keep.len(), graph.num_vertices(), "mask length mismatch");
    let mut mapping: Vec<Option<Vertex>> = vec![None; keep.len()];
    let mut next: Vertex = 0;
    for (v, &k) in keep.iter().enumerate() {
        if k {
            mapping[v] = Some(next);
            next += 1;
        }
    }
    let mut builder = GraphBuilder::new(next as usize);
    for (u, v, w) in graph.edges() {
        if let (Some(nu), Some(nv)) = (mapping[u as usize], mapping[v as usize]) {
            builder.add_edge_weighted(nu, nv, w);
        }
    }
    (builder.build(), mapping)
}

/// The subgraph of the largest weak component (with its id mapping). For a
/// graph with no vertices, returns an empty graph.
pub fn largest_component_subgraph(graph: &Graph) -> (Graph, Vec<Option<Vertex>>) {
    let components = weakly_connected_components(graph);
    let num = components
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    if num == 0 {
        return (GraphBuilder::new(0).build(), Vec::new());
    }
    let mut sizes = vec![0usize; num];
    for &c in &components {
        sizes[c as usize] += 1;
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .unwrap();
    let keep: Vec<bool> = components.iter().map(|&c| c == largest).collect();
    induced_subgraph(graph, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component_ring() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let c = weakly_connected_components(&g);
        assert!(c.iter().all(|&x| x == 0));
        assert_eq!(num_weak_components(&g), 1);
    }

    #[test]
    fn direction_ignored() {
        // 0 -> 1, 2 -> 1: all weakly connected despite no directed path
        // from 0 to 2.
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)]);
        assert_eq!(num_weak_components(&g), 1);
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let c = weakly_connected_components(&g);
        assert_eq!(c[0], c[1]);
        assert_ne!(c[2], c[0]);
        assert_ne!(c[3], c[2]);
        assert_eq!(num_weak_components(&g), 3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(num_weak_components(&g), 0);
        let (sub, map) = largest_component_subgraph(&g);
        assert_eq!(sub.num_vertices(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (sub, map) = induced_subgraph(&g, &[true, true, false, true]);
        assert_eq!(sub.num_vertices(), 3);
        // Surviving edges: 0->1 and 3->0 (relabelled).
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map[2], None);
        let n0 = map[0].unwrap();
        let n1 = map[1].unwrap();
        let n3 = map[3].unwrap();
        assert_eq!(sub.out_neighbors(n0), &[n1]);
        assert_eq!(sub.out_neighbors(n3), &[n0]);
        sub.validate().unwrap();
    }

    #[test]
    fn largest_component_extracted() {
        // Component A: 0-1-2 triangle; component B: 3-4 edge; isolate: 5.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let (sub, map) = largest_component_subgraph(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert!(map[3].is_none() && map[4].is_none() && map[5].is_none());
    }

    #[test]
    fn weighted_edges_survive_extraction() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_weighted(0, 1, 7);
        b.add_edge_weighted(1, 2, 3);
        let g = b.build();
        let (sub, _) = induced_subgraph(&g, &[true, true, false]);
        assert_eq!(sub.total_weight(), 7);
    }
}
