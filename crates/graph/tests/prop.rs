//! Property-based tests for the graph substrate.

use hsbp_graph::io::{read_edge_list, read_matrix_market, write_edge_list, write_matrix_market};
use hsbp_graph::metis::{read_metis, write_metis};
use hsbp_graph::partition::{read_partition, write_partition};
use hsbp_graph::{Graph, GraphBuilder, Vertex};
use proptest::prelude::*;

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(Vertex, Vertex)>)> {
    (2..max_n).prop_flat_map(move |n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..max_m)))
}

proptest! {
    /// A built graph always passes internal validation.
    #[test]
    fn built_graphs_validate((n, edges) in arb_edges(40, 200)) {
        let g = Graph::from_edges(n as usize, &edges);
        prop_assert!(g.validate().is_ok());
    }

    /// Sum of out-degrees = sum of in-degrees = total weight.
    #[test]
    fn degree_sums_balance((n, edges) in arb_edges(40, 200)) {
        let g = Graph::from_edges(n as usize, &edges);
        let out_sum: u64 = (0..n).map(|v| g.out_degree(v)).sum();
        let in_sum: u64 = (0..n).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.total_weight());
        prop_assert_eq!(in_sum, g.total_weight());
        prop_assert_eq!(out_sum, edges.len() as u64);
    }

    /// incident_edge enumerates exactly the multiset of in- and out-edges.
    #[test]
    fn incident_edges_enumerate_all((n, edges) in arb_edges(25, 80)) {
        let g = Graph::from_edges(n as usize, &edges);
        for v in 0..n {
            let mut listed: Vec<(Vertex, bool)> = (0..g.incident_arity(v))
                .map(|k| {
                    let (nbr, _, is_out) = g.incident_edge(v, k);
                    (nbr, is_out)
                })
                .collect();
            listed.sort_unstable();
            let mut expected: Vec<(Vertex, bool)> = g
                .out_neighbors(v).iter().map(|&t| (t, true))
                .chain(g.in_neighbors(v).iter().map(|&s| (s, false)))
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(listed, expected);
        }
    }

    /// Matrix Market writer/reader roundtrip is the identity.
    #[test]
    fn matrix_market_roundtrip((n, edges) in arb_edges(30, 120)) {
        let g = Graph::from_edges(n as usize, &edges);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(buf.as_slice()).unwrap();
        // Vertex count can only shrink if trailing vertices are isolated and
        // the original n was larger than any edge endpoint; the writer
        // records n explicitly, so equality must hold.
        prop_assert_eq!(g, g2);
    }

    /// Edge-list writer/reader roundtrip preserves edges and weights.
    #[test]
    fn edge_list_roundtrip((n, edges) in arb_edges(30, 120)) {
        let g = Graph::from_edges(n as usize, &edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), Some(n as usize)).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Symmetrisation makes in- and out-degree equal everywhere.
    #[test]
    fn undirected_balances_degrees((n, edges) in arb_edges(25, 80)) {
        let g = Graph::from_edges(n as usize, &edges);
        let u = g.to_undirected();
        for v in 0..n {
            prop_assert_eq!(u.out_degree(v), u.in_degree(v));
        }
        prop_assert!(u.validate().is_ok());
    }

    /// METIS writer/reader round-trips symmetric weighted graphs exactly
    /// (the writer emits `fmt = 001` whenever a merged weight exceeds 1).
    #[test]
    fn metis_weighted_roundtrip(
        (n, edges) in arb_edges(20, 60),
        weights in proptest::collection::vec(1u64..50, 60),
    ) {
        // METIS is undirected and loop-free, so build a symmetric loop-free
        // weighted graph: same weight in both directions, no self-loops.
        let mut b = GraphBuilder::new(n as usize);
        for (i, &(u, v)) in edges.iter().enumerate() {
            if u != v {
                let w = weights[i % weights.len()];
                b.add_edge_weighted(u, v, w);
                b.add_edge_weighted(v, u, w);
            }
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// `.part.K` writer/reader round-trip is the identity.
    #[test]
    fn partition_roundtrip(parts in proptest::collection::vec(0u32..8, 1..300)) {
        let mut buf = Vec::new();
        write_partition(&parts, &mut buf).unwrap();
        prop_assert_eq!(read_partition(buf.as_slice()).unwrap(), parts);
    }

    /// Weighted duplicate insertion behaves additively.
    #[test]
    fn duplicates_add_weight(w1 in 1u64..100, w2 in 1u64..100) {
        let mut b = GraphBuilder::new(2);
        b.add_edge_weighted(0, 1, w1);
        b.add_edge_weighted(0, 1, w2);
        let g = b.build();
        prop_assert_eq!(g.num_edges(), 1);
        prop_assert_eq!(g.total_weight(), w1 + w2);
    }
}
