//! One function per paper artifact. Each consumes the shared suite results
//! (so `repro all` runs every graph exactly once) and emits an aligned table
//! plus a CSV under the output directory.

use crate::plot::{scaling_curve, BarChart};
use crate::report::{fmt, Table};
use crate::runner::{
    run_realworld_suite, run_synthetic_suite, ExperimentContext, RealRun, SyntheticRun,
};
use hsbp_core::{run_sbp, RunStats, SbpConfig, Variant};
use hsbp_generator::{generate, table1, table2, table2_by_id, SyntheticSpec};
use hsbp_graph::stats::within_between_ratio;
use hsbp_graph::GraphStats;
use hsbp_metrics::pearson;
use std::path::Path;

/// Catalog lookups and sim-time curve reads in this harness only fail on
/// programmer error (a renamed id, an untracked thread count); fail loudly
/// with the offending key rather than unwrap.
fn table2_entry(id: &str) -> SyntheticSpec {
    table2_by_id(id).unwrap_or_else(|| panic!("{id} missing from the Table 2 catalog"))
}

fn table1_entry(id: &str) -> SyntheticSpec {
    table1()
        .into_iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("{id} missing from the Table 1 catalog"))
}

fn sim_mcmc_at(stats: &RunStats, threads: usize) -> f64 {
    stats
        .sim_mcmc_time(threads)
        .unwrap_or_else(|| panic!("thread count {threads} not tracked by the sim accumulator"))
}

/// Table 1: the synthetic graph catalog — paper sizes vs realised surrogate
/// sizes and community strength at the chosen scale.
pub fn table1_report(ctx: &ExperimentContext, out: &Path) {
    let mut t = Table::new(&[
        "ID",
        "paper V",
        "paper E",
        "gen V",
        "gen E",
        "target r",
        "realised r",
        "gamma_hat",
    ]);
    for spec in table1() {
        if ctx.verbose {
            eprintln!("table1 {}", spec.id);
        }
        let data = generate(spec.config(ctx.scale));
        let stats = GraphStats::compute(&data.graph);
        t.row(vec![
            spec.id.into(),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            data.graph.num_vertices().to_string(),
            data.graph.num_edges().to_string(),
            fmt(spec.ratio, 2),
            fmt(within_between_ratio(&data.graph, &data.ground_truth), 2),
            fmt(stats.power_law_exponent, 2),
        ]);
    }
    t.emit(
        &format!("Table 1: synthetic graphs (scale {:.5})", ctx.scale),
        out,
        "table1",
    );
}

/// Table 2: the real-world surrogate catalog.
pub fn table2_report(ctx: &ExperimentContext, out: &Path) {
    let mut t = Table::new(&[
        "ID",
        "domain",
        "paper V",
        "paper E",
        "gen V",
        "gen E",
        "max deg",
        "gamma_hat",
    ]);
    for spec in table2() {
        if ctx.verbose {
            eprintln!("table2 {}", spec.id);
        }
        let data = generate(spec.config(ctx.scale));
        let stats = GraphStats::compute(&data.graph);
        t.row(vec![
            spec.id.into(),
            spec.note.into(),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            data.graph.num_vertices().to_string(),
            data.graph.num_edges().to_string(),
            stats.max_degree.to_string(),
            fmt(stats.power_law_exponent, 2),
        ]);
    }
    t.emit(
        &format!("Table 2: real-world surrogates (scale {:.5})", ctx.scale),
        out,
        "table2",
    );
}

/// Fig. 2: percentage of wall-clock execution time spent in the MCMC phase
/// (serial SBP runs, as in the paper).
pub fn fig2_report(synth: &[SyntheticRun], out: &Path) {
    let mut t = Table::new(&["ID", "MCMC %", "merge+other %"]);
    let mut total = 0.0;
    for s in synth {
        let sbp = &s.runs[0];
        let pct = 100.0 * sbp.mcmc_wall_fraction;
        total += pct;
        t.row(vec![s.id.clone(), fmt(pct, 1), fmt(100.0 - pct, 1)]);
    }
    if !synth.is_empty() {
        t.row(vec![
            "mean".into(),
            fmt(total / synth.len() as f64, 1),
            "".into(),
        ]);
    }
    t.emit(
        "Fig 2: SBP execution-time breakdown (MCMC vs rest)",
        out,
        "fig2",
    );
}

/// Fig. 3: correlation of NMI with modularity and with normalized MDL
/// across all synthetic runs.
pub fn fig3_report(synth: &[SyntheticRun], out: &Path) {
    let mut scatter = Table::new(&["ID", "variant", "NMI", "modularity", "MDL_norm"]);
    let (mut nmis, mut mods, mut norms) = (Vec::new(), Vec::new(), Vec::new());
    for s in synth {
        for run in &s.runs {
            if run.nmi.is_finite() && run.mdl_norm.is_finite() {
                nmis.push(run.nmi);
                mods.push(run.modularity);
                norms.push(run.mdl_norm);
                scatter.row(vec![
                    s.id.clone(),
                    run.variant.name().into(),
                    fmt(run.nmi, 4),
                    fmt(run.modularity, 4),
                    fmt(run.mdl_norm, 4),
                ]);
            }
        }
    }
    scatter.emit(
        "Fig 3 (scatter data): NMI vs modularity vs MDL_norm",
        out,
        "fig3_scatter",
    );

    let c_mod = pearson(&nmis, &mods);
    let c_norm = pearson(&nmis, &norms);
    let mut t = Table::new(&["pair", "r", "r^2", "p-value", "n"]);
    t.row(vec![
        "NMI ~ modularity".into(),
        fmt(c_mod.r, 3),
        fmt(c_mod.r_squared, 3),
        format!("{:.2e}", c_mod.p_value),
        c_mod.n.to_string(),
    ]);
    t.row(vec![
        "NMI ~ MDL_norm".into(),
        fmt(c_norm.r, 3),
        fmt(c_norm.r_squared, 3),
        format!("{:.2e}", c_norm.p_value),
        c_norm.n.to_string(),
    ]);
    t.emit(
        "Fig 3: correlation strength (paper: MDL_norm r^2=0.85 > modularity r^2=0.75)",
        out,
        "fig3",
    );
}

/// Fig. 4a: NMI of SBP / H-SBP / A-SBP on the synthetic graphs.
pub fn fig4a_report(synth: &[SyntheticRun], out: &Path) {
    let mut t = Table::new(&["ID", "SBP", "H-SBP", "A-SBP"]);
    for s in synth {
        t.row(vec![
            s.id.clone(),
            fmt(s.runs[0].nmi, 3),
            fmt(s.runs[1].nmi, 3),
            fmt(s.runs[2].nmi, 3),
        ]);
    }
    t.emit("Fig 4a: NMI on synthetic graphs", out, "fig4a");
    let mut chart = BarChart::new("Fig 4a (chart): NMI", &["SBP", "H-SBP", "A-SBP"]);
    for s in synth {
        chart.item(&s.id, &[s.runs[0].nmi, s.runs[1].nmi, s.runs[2].nmi]);
    }
    println!("{}", chart.render());
}

/// Fig. 4b: simulated MCMC-phase speedup over SBP at 128 threads, plus the
/// Amdahl-limited overall speedup.
pub fn fig4b_report(synth: &[SyntheticRun], out: &Path) {
    let mut t = Table::new(&[
        "ID",
        "H-SBP mcmc",
        "A-SBP mcmc",
        "H-SBP overall",
        "A-SBP overall",
    ]);
    for s in synth {
        let base_mcmc = s.runs[0].sim_mcmc_128;
        let base_total = s.runs[0].sim_total_128;
        t.row(vec![
            s.id.clone(),
            fmt(base_mcmc / s.runs[1].sim_mcmc_128, 2),
            fmt(base_mcmc / s.runs[2].sim_mcmc_128, 2),
            fmt(base_total / s.runs[1].sim_total_128, 2),
            fmt(base_total / s.runs[2].sim_total_128, 2),
        ]);
    }
    t.emit(
        "Fig 4b: speedup over SBP on synthetic graphs (128 simulated threads)",
        out,
        "fig4b",
    );
    let mut chart = BarChart::new(
        "Fig 4b (chart): MCMC-phase speedup over SBP",
        &["H-SBP", "A-SBP"],
    );
    for s in synth {
        let base = s.runs[0].sim_mcmc_128;
        chart.item(
            &s.id,
            &[base / s.runs[1].sim_mcmc_128, base / s.runs[2].sim_mcmc_128],
        );
    }
    println!("{}", chart.render());
}

/// Fig. 8a: MCMC iterations to convergence on synthetic graphs.
pub fn fig8a_report(synth: &[SyntheticRun], out: &Path) {
    let mut t = Table::new(&["ID", "SBP", "H-SBP", "A-SBP"]);
    for s in synth {
        t.row(vec![
            s.id.clone(),
            s.runs[0].mcmc_sweeps.to_string(),
            s.runs[1].mcmc_sweeps.to_string(),
            s.runs[2].mcmc_sweeps.to_string(),
        ]);
    }
    t.emit("Fig 8a: MCMC iterations on synthetic graphs", out, "fig8a");
    let mut chart = BarChart::new(
        "Fig 8a (chart): MCMC iterations",
        &["SBP", "H-SBP", "A-SBP"],
    );
    for s in synth {
        chart.item(
            &s.id,
            &[
                s.runs[0].mcmc_sweeps as f64,
                s.runs[1].mcmc_sweeps as f64,
                s.runs[2].mcmc_sweeps as f64,
            ],
        );
    }
    println!("{}", chart.render());
}

/// Fig. 5a: normalized MDL of SBP vs H-SBP on the real-world surrogates.
pub fn fig5a_report(real: &[RealRun], out: &Path) {
    let mut t = Table::new(&["ID", "SBP", "H-SBP"]);
    for r in real {
        t.row(vec![
            r.id.clone(),
            fmt(r.runs[0].mdl_norm, 4),
            fmt(r.runs[1].mdl_norm, 4),
        ]);
    }
    t.emit("Fig 5a: normalized MDL on real-world graphs", out, "fig5a");
    let mut chart = BarChart::new("Fig 5a (chart): normalized MDL", &["SBP", "H-SBP"]);
    for r in real {
        chart.item(&r.id, &[r.runs[0].mdl_norm, r.runs[1].mdl_norm]);
    }
    println!("{}", chart.render());
}

/// Fig. 5b: modularity of SBP vs H-SBP on the real-world surrogates.
pub fn fig5b_report(real: &[RealRun], out: &Path) {
    let mut t = Table::new(&["ID", "SBP", "H-SBP"]);
    for r in real {
        t.row(vec![
            r.id.clone(),
            fmt(r.runs[0].modularity, 4),
            fmt(r.runs[1].modularity, 4),
        ]);
    }
    t.emit("Fig 5b: modularity on real-world graphs", out, "fig5b");
    let mut chart = BarChart::new("Fig 5b (chart): modularity", &["SBP", "H-SBP"]);
    for r in real {
        chart.item(&r.id, &[r.runs[0].modularity, r.runs[1].modularity]);
    }
    println!("{}", chart.render());
}

/// Fig. 6: H-SBP's simulated MCMC-phase speedup over SBP on the real-world
/// surrogates (plus overall speedup, §5.4).
pub fn fig6_report(real: &[RealRun], out: &Path) {
    let mut t = Table::new(&["ID", "mcmc speedup", "overall speedup"]);
    for r in real {
        t.row(vec![
            r.id.clone(),
            fmt(r.runs[0].sim_mcmc_128 / r.runs[1].sim_mcmc_128, 2),
            fmt(r.runs[0].sim_total_128 / r.runs[1].sim_total_128, 2),
        ]);
    }
    t.emit(
        "Fig 6: H-SBP speedup over SBP on real-world graphs (128 simulated threads)",
        out,
        "fig6",
    );
    let mut chart = BarChart::new("Fig 6 (chart): H-SBP MCMC speedup", &["H-SBP"]);
    for r in real {
        chart.item(&r.id, &[r.runs[0].sim_mcmc_128 / r.runs[1].sim_mcmc_128]);
    }
    println!("{}", chart.render());
}

/// Fig. 8b: MCMC iterations on the real-world surrogates.
pub fn fig8b_report(real: &[RealRun], out: &Path) {
    let mut t = Table::new(&["ID", "SBP", "H-SBP"]);
    for r in real {
        t.row(vec![
            r.id.clone(),
            r.runs[0].mcmc_sweeps.to_string(),
            r.runs[1].mcmc_sweeps.to_string(),
        ]);
    }
    t.emit("Fig 8b: MCMC iterations on real-world graphs", out, "fig8b");
    let mut chart = BarChart::new("Fig 8b (chart): MCMC iterations", &["SBP", "H-SBP"]);
    for r in real {
        chart.item(
            &r.id,
            &[r.runs[0].mcmc_sweeps as f64, r.runs[1].mcmc_sweeps as f64],
        );
    }
    println!("{}", chart.render());
}

/// Fig. 7: strong scaling of H-SBP's MCMC phase on the `soc-Slashdot0902`
/// surrogate, threads 1..128.
pub fn fig7_report(ctx: &ExperimentContext, out: &Path) {
    let spec = table2_entry("soc-Slashdot0902");
    if ctx.verbose {
        eprintln!("fig7: strong scaling on {}", spec.id);
    }
    let data = generate(spec.config(ctx.scale));
    let result = run_sbp(&data.graph, &SbpConfig::new(Variant::Hybrid, ctx.seed));
    let mut t = Table::new(&["threads", "sim MCMC time", "speedup", "efficiency %"]);
    let base = sim_mcmc_at(&result.stats, 1);
    for (threads, time) in result.stats.sim_mcmc.curve() {
        let speedup = base / time;
        t.row(vec![
            threads.to_string(),
            fmt(time, 0),
            fmt(speedup, 2),
            fmt(100.0 * speedup / threads as f64, 1),
        ]);
    }
    t.emit(
        "Fig 7: H-SBP strong scaling on soc-Slashdot0902",
        out,
        "fig7",
    );
    println!(
        "{}",
        scaling_curve(
            "Fig 7 (chart): simulated MCMC runtime vs threads",
            &result.stats.sim_mcmc.curve(),
            46,
        )
    );
}

/// Ablation (beyond the paper): H-SBP accuracy/speedup across serial
/// fractions, on one synthetic graph.
pub fn ablation_serial_fraction(ctx: &ExperimentContext, out: &Path) {
    let spec = table1_entry("S5");
    let data = generate(spec.config(ctx.scale));
    let base = run_sbp(&data.graph, &SbpConfig::new(Variant::Metropolis, ctx.seed));
    let base_mcmc = sim_mcmc_at(&base.stats, 128);
    let mut t = Table::new(&["serial fraction", "NMI", "sweeps", "mcmc speedup"]);
    for fraction in [0.0, 0.05, 0.15, 0.3, 0.5, 1.0] {
        if ctx.verbose {
            eprintln!("ablation f={fraction}");
        }
        let cfg = SbpConfig {
            variant: Variant::Hybrid,
            hybrid_serial_fraction: fraction,
            seed: ctx.seed,
            ..Default::default()
        };
        let result = run_sbp(&data.graph, &cfg);
        t.row(vec![
            fmt(fraction, 2),
            fmt(hsbp_metrics::nmi(&data.ground_truth, &result.assignment), 3),
            result.stats.mcmc_sweeps.to_string(),
            fmt(base_mcmc / sim_mcmc_at(&result.stats, 128), 2),
        ]);
    }
    t.emit(
        "Ablation: H-SBP serial fraction (paper fixes 15%)",
        out,
        "ablation_fraction",
    );
}

/// Ablation (beyond the paper): static vs dynamic chunking in the simulated
/// scheduler — the load-balancing headroom §5.5 speculates about.
pub fn ablation_chunking(ctx: &ExperimentContext, out: &Path) {
    use hsbp_timing::Chunking;
    let spec = table2_entry("soc-Slashdot0902");
    let data = generate(spec.config(ctx.scale));
    let mut t = Table::new(&["schedule", "sim MCMC @16", "sim MCMC @128", "speedup @128"]);
    let mut base128 = None;
    for (name, chunking) in [
        ("static", Chunking::Static),
        ("dynamic(16)", Chunking::Dynamic { chunk_size: 16 }),
    ] {
        let cfg = SbpConfig {
            variant: Variant::Hybrid,
            sim_chunking: chunking,
            seed: ctx.seed,
            ..Default::default()
        };
        let result = run_sbp(&data.graph, &cfg);
        let t16 = sim_mcmc_at(&result.stats, 16);
        let t128 = sim_mcmc_at(&result.stats, 128);
        let t1 = sim_mcmc_at(&result.stats, 1);
        base128.get_or_insert(t1);
        t.row(vec![
            name.into(),
            fmt(t16, 0),
            fmt(t128, 0),
            fmt(t1 / t128, 2),
        ]);
    }
    t.emit(
        "Ablation: static vs dynamic scheduling of the parallel sweep",
        out,
        "ablation_chunking",
    );
}

/// Ablation (beyond the paper): distributed-A-SBP staleness — how result
/// quality and iteration count degrade when workers evaluate against a
/// model `d` sweeps old (paper §6's "how best to distribute A-SBP").
pub fn ablation_staleness(ctx: &ExperimentContext, out: &Path) {
    let spec = table1_entry("S6");
    let data = generate(spec.config(ctx.scale));
    let mut t = Table::new(&["staleness", "NMI", "MDL_norm", "sweeps"]);
    for staleness in [1usize, 2, 4, 8] {
        if ctx.verbose {
            eprintln!("ablation staleness={staleness}");
        }
        let cfg = SbpConfig {
            variant: Variant::AsyncGibbs,
            asbp_staleness: staleness,
            seed: ctx.seed,
            ..Default::default()
        };
        let result = run_sbp(&data.graph, &cfg);
        t.row(vec![
            staleness.to_string(),
            fmt(hsbp_metrics::nmi(&data.ground_truth, &result.assignment), 3),
            fmt(result.normalized_mdl, 4),
            result.stats.mcmc_sweeps.to_string(),
        ]);
    }
    t.emit(
        "Ablation: A-SBP staleness (distributed emulation)",
        out,
        "ablation_staleness",
    );
}

/// Ablation (beyond the paper): batched A-SBP — the paper's conclusion
/// suggests rebuilding in batches to shrink staleness without a serial set.
pub fn ablation_batches(ctx: &ExperimentContext, out: &Path) {
    let spec = table1_entry("S6");
    let data = generate(spec.config(ctx.scale));
    let mut t = Table::new(&["batches", "NMI", "MDL_norm", "sweeps", "sim mcmc @128"]);
    for batches in [1usize, 2, 4, 8] {
        if ctx.verbose {
            eprintln!("ablation batches={batches}");
        }
        let cfg = SbpConfig {
            variant: Variant::AsyncGibbs,
            asbp_batches: batches,
            seed: ctx.seed,
            ..Default::default()
        };
        let result = run_sbp(&data.graph, &cfg);
        t.row(vec![
            batches.to_string(),
            fmt(hsbp_metrics::nmi(&data.ground_truth, &result.assignment), 3),
            fmt(result.normalized_mdl, 4),
            result.stats.mcmc_sweeps.to_string(),
            fmt(result.stats.sim_mcmc_time(128).unwrap_or(f64::NAN), 0),
        ]);
    }
    t.emit(
        "Ablation: batched A-SBP (paper conclusion)",
        out,
        "ablation_batches",
    );
}

/// Ablation (beyond the paper): the paper's snapshot A-SBP vs Terenin-style
/// exact asynchronous Gibbs with per-worker model replicas (§3.1's rejected
/// design) — accuracy is comparable, but the replication cost shows up in
/// the simulated time.
pub fn ablation_exact_async(ctx: &ExperimentContext, out: &Path) {
    let spec = table1_entry("S6");
    let data = generate(spec.config(ctx.scale));
    let mut t = Table::new(&["algorithm", "NMI", "MDL_norm", "sweeps", "sim mcmc @128"]);
    let configs = [
        (
            "A-SBP (paper)",
            SbpConfig {
                variant: Variant::AsyncGibbs,
                seed: ctx.seed,
                ..Default::default()
            },
        ),
        (
            "EA-SBP w=8",
            SbpConfig {
                variant: Variant::ExactAsync,
                exact_async_workers: 8,
                seed: ctx.seed,
                ..Default::default()
            },
        ),
        (
            "EA-SBP w=32",
            SbpConfig {
                variant: Variant::ExactAsync,
                exact_async_workers: 32,
                seed: ctx.seed,
                ..Default::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        if ctx.verbose {
            eprintln!("ablation exact: {name}");
        }
        let result = run_sbp(&data.graph, &cfg);
        t.row(vec![
            name.into(),
            fmt(hsbp_metrics::nmi(&data.ground_truth, &result.assignment), 3),
            fmt(result.normalized_mdl, 4),
            result.stats.mcmc_sweeps.to_string(),
            fmt(result.stats.sim_mcmc_time(128).unwrap_or(f64::NAN), 0),
        ]);
    }
    t.emit(
        "Ablation: snapshot A-SBP vs replica-based exact async Gibbs (paper \u{a7}3.1)",
        out,
        "ablation_exact",
    );
}

/// Run everything in paper order.
pub fn run_all(ctx: &ExperimentContext, out: &Path) {
    table1_report(ctx, out);
    table2_report(ctx, out);
    eprintln!(
        "running synthetic suite (18 graphs x 3 variants x {} restarts)…",
        ctx.restarts
    );
    let synth = run_synthetic_suite(ctx);
    fig2_report(&synth, out);
    fig3_report(&synth, out);
    fig4a_report(&synth, out);
    fig4b_report(&synth, out);
    fig8a_report(&synth, out);
    eprintln!(
        "running real-world suite (14 graphs x 2 variants x {} restarts)…",
        ctx.restarts
    );
    let real = run_realworld_suite(ctx);
    fig5a_report(&real, out);
    fig5b_report(&real, out);
    fig6_report(&real, out);
    fig8b_report(&real, out);
    fig7_report(ctx, out);
    ablation_serial_fraction(ctx, out);
    ablation_chunking(ctx, out);
    ablation_staleness(ctx, out);
    ablation_batches(ctx, out);
    ablation_exact_async(ctx, out);
}
