//! The bench-gated hot-path baseline: measured sweep throughput of the four
//! MCMC variants on synthetic DCSBM graphs, written as machine-readable
//! `BENCH_mcmc.json` and compared against the committed baseline in CI.
//!
//! Three modes (see the `bench_hotpath` binary):
//!
//! * `full`  — smoke + 5k + 20k graphs; produces the committed baseline,
//! * `smoke` — the smoke graph only (seconds; what CI runs),
//! * `check` — run smoke and fail on a >threshold throughput regression
//!   against a baseline file.
//!
//! CI machines differ from the machine that produced the committed
//! baseline, so `check` never compares raw sweeps/sec. Every report embeds
//! `calibration_ops_per_s` — the throughput of a fixed splitmix64 loop on
//! the reporting machine — and regressions are judged on
//! *calibration-normalised* throughput (sweeps/sec ÷ calibration), which
//! cancels first-order machine-speed differences while staying sensitive to
//! real hot-path regressions.

use hsbp_blockmodel::Blockmodel;
use hsbp_collections::SplitMix64;
use hsbp_core::{run_mcmc_phase, MathMode, RunStats, SbpConfig, Variant};
use hsbp_generator::{generate, DcsbmConfig};
use std::time::Instant;

/// Schema version of `BENCH_mcmc.json`. Bumped on any incompatible change
/// to the report shape; reported by `hsbp version` so replay tooling can
/// detect mismatched baselines. Schema 3 added the per-measurement
/// `math_mode` field; check mode reads schema-2 baselines by treating every
/// baseline line as `exact` (see [`compare_reports`]).
pub const BENCH_MCMC_SCHEMA_VERSION: u32 = 3;

/// One benchmark graph + sweep protocol.
#[derive(Debug, Clone, Copy)]
pub struct HotpathSpec {
    /// Stable name used as the JSON key and in check-mode matching.
    pub name: &'static str,
    pub vertices: usize,
    pub communities: usize,
    pub edges: usize,
    /// Untimed sweeps run first to settle the chain.
    pub warmup_sweeps: usize,
    /// Timed sweeps per repeat.
    pub sweeps: usize,
    /// Timed repeats; the fastest is reported (least scheduler noise).
    pub repeats: usize,
}

/// Seconds-scale config CI can afford on every push. The timed section has
/// to be long enough for the 15% check-mode threshold to clear scheduler
/// noise: at 4 sweeps per repeat a repeat is ~5 ms and run-to-run jitter
/// alone exceeded the threshold, hence 20 sweeps × 5 repeats (best-of).
pub const SMOKE: HotpathSpec = HotpathSpec {
    name: "dcsbm_smoke",
    vertices: 1200,
    communities: 8,
    edges: 12_000,
    warmup_sweeps: 2,
    sweeps: 20,
    repeats: 5,
};

/// The 5k-vertex DCSBM of the acceptance criterion.
pub const FIVE_K: HotpathSpec = HotpathSpec {
    name: "dcsbm_5k",
    vertices: 5_000,
    communities: 32,
    edges: 50_000,
    warmup_sweeps: 2,
    sweeps: 8,
    repeats: 3,
};

/// The larger sanity point.
pub const TWENTY_K: HotpathSpec = HotpathSpec {
    name: "dcsbm_20k",
    vertices: 20_000,
    communities: 64,
    edges: 200_000,
    warmup_sweeps: 1,
    sweeps: 4,
    repeats: 2,
};

/// All four MCMC variants, in report order.
pub const VARIANTS: [Variant; 4] = [
    Variant::Metropolis,
    Variant::AsyncGibbs,
    Variant::Hybrid,
    Variant::ExactAsync,
];

/// Thread counts a report sweeps. `full` covers the scaling curve; the
/// seconds-scale smoke/check modes keep CI cost down with the two endpoints
/// that matter (serial parity and the parallel path). When `HSBP_THREADS`
/// is pinned in the environment the sweep honours it: `{1, pinned}`,
/// deduped — CI's matrix legs run exactly the configured width plus the
/// serial anchor the efficiency column needs.
pub fn threads_for_mode(mode: &str) -> Vec<usize> {
    if let Ok(raw) = std::env::var("HSBP_THREADS") {
        if let Ok(t) = raw.trim().parse::<usize>() {
            let t = t.max(1);
            return if t == 1 { vec![1] } else { vec![1, t] };
        }
    }
    match mode {
        "full" => vec![1, 2, 4, 8],
        _ => vec![1, 4],
    }
}

/// Math modes a report sweeps. `full` (the committed baseline) measures
/// both so check mode always has a same-mode line to compare against; the
/// seconds-scale smoke/check modes measure only the active mode — the
/// `HSBP_MATH` env var, which is how CI's math-mode matrix legs pin a leg
/// to one mode. Pinning `HSBP_MATH` narrows `full` too.
pub fn math_modes_for_mode(mode: &str) -> Vec<MathMode> {
    if std::env::var(hsbp_core::HSBP_MATH_ENV).is_ok() {
        return vec![MathMode::from_env()];
    }
    match mode {
        "full" => vec![MathMode::Exact, MathMode::Table],
        _ => vec![MathMode::from_env()],
    }
}

/// Measured throughput of one variant on one graph at one thread count.
#[derive(Debug, Clone)]
pub struct VariantMeasurement {
    /// Paper-style variant name (`SBP`, `A-SBP`, `H-SBP`, `EA-SBP`).
    pub variant: String,
    /// Delta-MDL math mode of the measured sweeps (`exact` or `table`;
    /// results are bit-identical, only the cost differs).
    pub math_mode: String,
    /// Worker threads the parallel sections ran with (`SbpConfig::threads`).
    /// The serial SBP variant is only measured at 1.
    pub threads: usize,
    /// Timed sweeps per repeat.
    pub sweeps: usize,
    /// Wall-clock seconds of the fastest repeat.
    pub elapsed_s: f64,
    /// Sweeps per second (fastest repeat).
    pub sweeps_per_s: f64,
    /// Proposals evaluated per second (fastest repeat).
    pub proposals_per_s: f64,
    /// Fraction of proposals accepted during the timed sweeps.
    pub acceptance_rate: f64,
    /// End-of-sweep consolidations resolved by incremental move replay
    /// (fastest repeat; 0 for the serial SBP variant, which never
    /// consolidates).
    pub consolidations_incremental: u64,
    /// Consolidations resolved by a full O(E) rebuild (fastest repeat).
    pub consolidations_rebuild: u64,
    /// Accepted moves replayed through the incremental path (fastest repeat).
    pub consolidated_moves: u64,
    /// `(sweeps_per_s at this thread count / sweeps_per_s at 1 thread) /
    /// threads` — 1.0 is perfect scaling. Anchored on the same-variant
    /// 1-thread run of the same sweep (always measured first).
    pub parallel_efficiency: f64,
    /// Pool sections executed during the timed repeats (all repeats, not
    /// just the fastest — scheduling stats accumulate per measurement).
    pub pool_sections: u64,
    /// Chunks executed by a worker other than their home worker.
    pub pool_steals: u64,
    /// Worst per-section imbalance: max worker busy-weight / mean.
    pub pool_max_imbalance: f64,
    /// Mean per-section imbalance across the timed sections.
    pub pool_mean_imbalance: f64,
}

/// All variant measurements for one benchmark graph.
#[derive(Debug, Clone)]
pub struct GraphMeasurement {
    pub name: String,
    pub vertices: usize,
    pub edges: u64,
    pub variants: Vec<VariantMeasurement>,
}

/// A full hot-path benchmark report (the content of `BENCH_mcmc.json`).
#[derive(Debug, Clone)]
pub struct HotpathReport {
    pub mode: String,
    pub calibration_ops_per_s: f64,
    /// Hardware threads the reporting host advertises. Parallel-efficiency
    /// figures measured with more pool threads than this are exercising the
    /// scheduler, not the silicon — read them as correctness, not speedup.
    pub host_parallelism: usize,
    /// Value of `HSBP_THREADS` in the benchmarking environment, if set.
    pub hsbp_threads_env: Option<usize>,
    /// Thread counts this report swept (see [`threads_for_mode`]).
    pub threads_swept: Vec<usize>,
    pub graphs: Vec<GraphMeasurement>,
}

/// Machine-speed proxy: throughput of a fixed splitmix64 loop. Pure
/// integer-ALU work that any machine runs at a stable rate, used to
/// normalise sweep throughput across machines in check mode. Best of three
/// passes: scheduler preemption and frequency ramp-up only ever make a pass
/// *slower*, so the max is the stable estimate of the machine's speed.
pub fn calibration_ops_per_s() -> f64 {
    let iters: u64 = 20_000_000;
    let mut best = 0.0f64;
    for pass in 0..3 {
        let mut rng = SplitMix64::new(0x0bad_5eed ^ pass);
        let start = Instant::now();
        let mut acc: u64 = 0;
        for _ in 0..iters {
            acc ^= rng.next_raw();
        }
        std::hint::black_box(acc);
        best = best.max(iters as f64 / start.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

fn bench_config(variant: Variant, threads: usize, math_mode: MathMode) -> SbpConfig {
    SbpConfig {
        variant,
        seed: 7,
        threads,
        math_mode,
        mcmc_threshold: 0.0, // never converge early: fixed sweep counts
        audit_cadence: 0,    // audits are not part of the hot path
        ..Default::default()
    }
}

/// Run `sweeps` sweeps of `variant` on a clone of `settled`, returning the
/// elapsed seconds plus the run's counters.
fn timed_sweeps(
    graph: &hsbp_graph::Graph,
    settled: &Blockmodel,
    variant: Variant,
    sweeps: usize,
    threads: usize,
    math_mode: MathMode,
) -> (f64, RunStats) {
    let cfg = SbpConfig {
        max_sweeps: sweeps,
        ..bench_config(variant, threads, math_mode)
    };
    let mut bm = settled.clone();
    let mut stats = RunStats::new(&cfg);
    let start = Instant::now();
    run_mcmc_phase(graph, &mut bm, &cfg, 1, &mut stats);
    let elapsed = start.elapsed().as_secs_f64();
    (elapsed, stats)
}

/// Measure every variant on one spec'd graph, sweeping `threads` and
/// `math_modes`.
pub fn measure_graph(
    spec: &HotpathSpec,
    threads: &[usize],
    math_modes: &[MathMode],
) -> GraphMeasurement {
    let generated = generate(DcsbmConfig {
        num_vertices: spec.vertices,
        num_communities: spec.communities,
        target_num_edges: spec.edges,
        seed: 0xbe_ef ^ spec.vertices as u64,
        ..Default::default()
    });
    let graph = &generated.graph;
    let mut variants = Vec::new();
    for variant in VARIANTS {
        // Settle the chain from the planted truth so the timed sweeps see
        // the steady-state (low-acceptance) regime that dominates long runs.
        // One settle per variant: sweeps are bit-identical across thread
        // counts *and* math modes, so every measurement starts from the
        // same state.
        let mut settled =
            Blockmodel::from_assignment(graph, generated.ground_truth.clone(), spec.communities);
        if spec.warmup_sweeps > 0 {
            let cfg = SbpConfig {
                max_sweeps: spec.warmup_sweeps,
                ..bench_config(variant, 1, MathMode::Exact)
            };
            let mut stats = RunStats::new(&cfg);
            run_mcmc_phase(graph, &mut settled, &cfg, 0, &mut stats);
        }
        // The serial SBP variant has no parallel section; sweep it at 1 only.
        let thread_points: &[usize] = if variant == Variant::Metropolis {
            &[1]
        } else {
            threads
        };
        for &math_mode in math_modes {
            if math_mode == MathMode::Table {
                // Force the one-time process-wide table build outside the
                // timed windows.
                std::hint::black_box(hsbp_blockmodel::fastmath::table_cap());
            }
            // Parallel efficiency is anchored on the same (variant, mode)
            // 1-thread run, always measured first.
            let mut one_thread_tp: Option<f64> = None;
            for &t in thread_points {
                let pool = hsbp_parallel::pool_for(t);
                pool.reset_stats();
                let mut best: Option<(f64, RunStats)> = None;
                for _ in 0..spec.repeats.max(1) {
                    let run = timed_sweeps(graph, &settled, variant, spec.sweeps, t, math_mode);
                    if best.as_ref().is_none_or(|b| run.0 < b.0) {
                        best = Some(run);
                    }
                }
                let pool_stats = pool.stats();
                let Some((elapsed, stats)) = best else {
                    continue;
                };
                let elapsed = elapsed.max(1e-9);
                let sweeps_per_s = spec.sweeps as f64 / elapsed;
                if t == 1 {
                    one_thread_tp = Some(sweeps_per_s);
                }
                let parallel_efficiency = match one_thread_tp {
                    Some(base) if base > 0.0 => (sweeps_per_s / base) / t as f64,
                    _ => 0.0,
                };
                let (proposals, accepted) = (stats.proposals, stats.accepted);
                variants.push(VariantMeasurement {
                    variant: variant.name().to_string(),
                    math_mode: math_mode.name().to_string(),
                    threads: t,
                    sweeps: spec.sweeps,
                    elapsed_s: elapsed,
                    sweeps_per_s,
                    proposals_per_s: proposals as f64 / elapsed,
                    acceptance_rate: if proposals == 0 {
                        0.0
                    } else {
                        accepted as f64 / proposals as f64
                    },
                    consolidations_incremental: stats.consolidations_incremental as u64,
                    consolidations_rebuild: stats.consolidations_rebuild as u64,
                    consolidated_moves: stats.consolidated_moves,
                    parallel_efficiency,
                    pool_sections: pool_stats.sections,
                    pool_steals: pool_stats.steals,
                    pool_max_imbalance: pool_stats.max_imbalance,
                    pool_mean_imbalance: pool_stats.mean_imbalance,
                });
            }
        }
    }
    GraphMeasurement {
        name: spec.name.to_string(),
        vertices: spec.vertices,
        edges: graph.num_edges() as u64,
        variants,
    }
}

/// Run the given specs and assemble a report.
pub fn run_report(mode: &str, specs: &[HotpathSpec]) -> HotpathReport {
    let threads = threads_for_mode(mode);
    let math_modes = math_modes_for_mode(mode);
    HotpathReport {
        mode: mode.to_string(),
        calibration_ops_per_s: calibration_ops_per_s(),
        host_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        hsbp_threads_env: std::env::var("HSBP_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok()),
        graphs: specs
            .iter()
            .map(|s| measure_graph(s, &threads, &math_modes))
            .collect(),
        threads_swept: threads,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

impl HotpathReport {
    /// Serialise to pretty-printed JSON (hand-rolled; the build is
    /// dependency-free by policy).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema_version\": {BENCH_MCMC_SCHEMA_VERSION},\n"
        ));
        s.push_str(&format!("  \"mode\": \"{}\",\n", json_escape(&self.mode)));
        s.push_str(&format!(
            "  \"calibration_ops_per_s\": {},\n",
            json_num(self.calibration_ops_per_s)
        ));
        s.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        s.push_str(&format!(
            "  \"hsbp_threads_env\": {},\n",
            self.hsbp_threads_env
                .map_or_else(|| "null".to_string(), |t| t.to_string())
        ));
        s.push_str(&format!(
            "  \"threads_swept\": [{}],\n",
            self.threads_swept
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"graphs\": [\n");
        for (gi, g) in self.graphs.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&g.name)));
            s.push_str(&format!("      \"vertices\": {},\n", g.vertices));
            s.push_str(&format!("      \"edges\": {},\n", g.edges));
            s.push_str("      \"variants\": [\n");
            for (vi, v) in g.variants.iter().enumerate() {
                s.push_str("        {\n");
                s.push_str(&format!(
                    "          \"variant\": \"{}\",\n",
                    json_escape(&v.variant)
                ));
                s.push_str(&format!(
                    "          \"math_mode\": \"{}\",\n",
                    json_escape(&v.math_mode)
                ));
                s.push_str(&format!("          \"threads\": {},\n", v.threads));
                s.push_str(&format!("          \"sweeps\": {},\n", v.sweeps));
                s.push_str(&format!(
                    "          \"elapsed_s\": {},\n",
                    json_num(v.elapsed_s)
                ));
                s.push_str(&format!(
                    "          \"sweeps_per_s\": {},\n",
                    json_num(v.sweeps_per_s)
                ));
                s.push_str(&format!(
                    "          \"proposals_per_s\": {},\n",
                    json_num(v.proposals_per_s)
                ));
                s.push_str(&format!(
                    "          \"acceptance_rate\": {},\n",
                    json_num(v.acceptance_rate)
                ));
                s.push_str(&format!(
                    "          \"consolidations_incremental\": {},\n",
                    v.consolidations_incremental
                ));
                s.push_str(&format!(
                    "          \"consolidations_rebuild\": {},\n",
                    v.consolidations_rebuild
                ));
                s.push_str(&format!(
                    "          \"consolidated_moves\": {},\n",
                    v.consolidated_moves
                ));
                s.push_str(&format!(
                    "          \"parallel_efficiency\": {},\n",
                    json_num(v.parallel_efficiency)
                ));
                s.push_str(&format!(
                    "          \"pool_sections\": {},\n",
                    v.pool_sections
                ));
                s.push_str(&format!("          \"pool_steals\": {},\n", v.pool_steals));
                s.push_str(&format!(
                    "          \"pool_max_imbalance\": {},\n",
                    json_num(v.pool_max_imbalance)
                ));
                s.push_str(&format!(
                    "          \"pool_mean_imbalance\": {}\n",
                    json_num(v.pool_mean_imbalance)
                ));
                s.push_str("        }");
                s.push_str(if vi + 1 < g.variants.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            s.push_str("      ]\n");
            s.push_str("    }");
            s.push_str(if gi + 1 < self.graphs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for check mode (only what the baseline file needs).
// ---------------------------------------------------------------------------

/// A parsed JSON value (subset sufficient for `BENCH_mcmc.json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of JSON".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "non-utf8 \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                other => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    if other < 0x80 {
                        out.push(other as char);
                    } else {
                        let len = match other {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let start = self.pos - 1;
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or_else(|| "truncated utf8 sequence".to_string())?;
                        out.push_str(
                            std::str::from_utf8(chunk)
                                .map_err(|_| "invalid utf8 in string".to_string())?,
                        );
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' got '{}'", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}' got '{}'", other as char)),
            }
        }
    }
}

/// Parse a JSON document (subset: no surrogate-pair \u escapes).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// One check-mode comparison line.
#[derive(Debug, Clone)]
pub struct CheckLine {
    pub graph: String,
    pub variant: String,
    /// Math mode of the *current* measurement (the baseline line it matched
    /// may be an `exact` fallback from a schema-2 baseline).
    pub math_mode: String,
    /// Thread count of the compared measurement.
    pub threads: usize,
    /// Calibration-normalised throughput in the baseline file.
    pub baseline_norm: f64,
    /// Calibration-normalised throughput of this run.
    pub current_norm: f64,
    /// `current_norm / baseline_norm` (1.0 = parity, < 1 = slower).
    pub ratio: f64,
    pub regressed: bool,
}

/// Compare `current` against a parsed `baseline` document. Measurements are
/// matched on `(graph, variant, threads, math_mode)`; a schema-1 baseline
/// (no `threads` field) is treated as all-1-thread, so only the current
/// run's 1-thread lines compare against it, and a schema-2 baseline (no
/// `math_mode` field) is treated as all-`exact` — a current `table` line
/// with no same-mode baseline falls back to the `exact` baseline line
/// (Table must be at least as fast, so comparing it against the exact
/// baseline is conservative). Graphs or thread points present in only one
/// of the two reports are skipped (the baseline may carry the full protocol
/// while CI runs smoke). Returns every comparison made; an empty result
/// means the baseline had no overlapping graphs, which the caller should
/// treat as an error.
pub fn compare_reports(
    current: &HotpathReport,
    baseline: &Json,
    threshold: f64,
) -> Result<Vec<CheckLine>, String> {
    let base_calib = baseline
        .get("calibration_ops_per_s")
        .and_then(Json::as_f64)
        .ok_or("baseline missing calibration_ops_per_s")?;
    if base_calib <= 0.0 || base_calib.is_nan() {
        return Err("baseline calibration_ops_per_s must be positive".into());
    }
    let base_graphs = baseline
        .get("graphs")
        .and_then(Json::as_arr)
        .ok_or("baseline missing graphs array")?;
    let mut lines = Vec::new();
    for g in &current.graphs {
        let Some(base_g) = base_graphs
            .iter()
            .find(|bg| bg.get("name").and_then(Json::as_str) == Some(g.name.as_str()))
        else {
            continue;
        };
        let base_variants = base_g
            .get("variants")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("baseline graph {} missing variants", g.name))?;
        for v in &g.variants {
            let find = |math_mode: &str| {
                base_variants.iter().find(|bv| {
                    bv.get("variant").and_then(Json::as_str) == Some(v.variant.as_str())
                        && bv
                            .get("threads")
                            .and_then(Json::as_f64)
                            .map_or(1, |t| t as usize)
                            == v.threads
                        && bv
                            .get("math_mode")
                            .and_then(Json::as_str)
                            .unwrap_or("exact")
                            == math_mode
                })
            };
            let same_mode = find(&v.math_mode);
            let base_v = match same_mode {
                Some(bv) => bv,
                // Schema-2 fallback: a table-mode current line compares
                // against the exact baseline line.
                None if v.math_mode != "exact" => match find("exact") {
                    Some(bv) => bv,
                    None => continue,
                },
                None => continue,
            };
            let base_tp = base_v
                .get("sweeps_per_s")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("baseline {}/{} missing sweeps_per_s", g.name, v.variant))?;
            let baseline_norm = base_tp / base_calib;
            let current_norm = v.sweeps_per_s / current.calibration_ops_per_s.max(1e-9);
            let ratio = if baseline_norm > 0.0 {
                current_norm / baseline_norm
            } else {
                1.0
            };
            lines.push(CheckLine {
                graph: g.name.clone(),
                variant: v.variant.clone(),
                math_mode: v.math_mode.clone(),
                threads: v.threads,
                baseline_norm,
                current_norm,
                ratio,
                regressed: ratio < 1.0 - threshold,
            });
        }
    }
    Ok(lines)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_of_report() {
        let report = HotpathReport {
            mode: "smoke".into(),
            calibration_ops_per_s: 1.5e8,
            host_parallelism: 4,
            hsbp_threads_env: Some(2),
            threads_swept: vec![1, 4],
            graphs: vec![GraphMeasurement {
                name: "g".into(),
                vertices: 10,
                edges: 20,
                variants: vec![VariantMeasurement {
                    variant: "SBP".into(),
                    math_mode: "table".into(),
                    threads: 4,
                    sweeps: 4,
                    elapsed_s: 0.25,
                    sweeps_per_s: 16.0,
                    proposals_per_s: 160.0,
                    acceptance_rate: 0.5,
                    consolidations_incremental: 3,
                    consolidations_rebuild: 1,
                    consolidated_moves: 42,
                    parallel_efficiency: 0.75,
                    pool_sections: 9,
                    pool_steals: 2,
                    pool_max_imbalance: 1.5,
                    pool_mean_imbalance: 1.2,
                }],
            }],
        };
        let parsed = parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed.get("mode").and_then(Json::as_str), Some("smoke"));
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            parsed.get("host_parallelism").and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(
            parsed.get("hsbp_threads_env").and_then(Json::as_f64),
            Some(2.0)
        );
        let swept = parsed.get("threads_swept").and_then(Json::as_arr).unwrap();
        assert_eq!(swept.len(), 2);
        assert_eq!(swept[1].as_f64(), Some(4.0));
        let g = &parsed.get("graphs").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(g.get("vertices").and_then(Json::as_f64), Some(10.0));
        let v = &g.get("variants").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(v.get("math_mode").and_then(Json::as_str), Some("table"));
        assert_eq!(v.get("threads").and_then(Json::as_f64), Some(4.0));
        assert_eq!(v.get("sweeps_per_s").and_then(Json::as_f64), Some(16.0));
        assert_eq!(
            v.get("consolidations_incremental").and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            v.get("consolidated_moves").and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            v.get("parallel_efficiency").and_then(Json::as_f64),
            Some(0.75)
        );
        assert_eq!(v.get("pool_steals").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            v.get("pool_mean_imbalance").and_then(Json::as_f64),
            Some(1.2)
        );
    }

    #[test]
    fn null_threads_env_serialises_as_json_null() {
        let report = HotpathReport {
            mode: "smoke".into(),
            calibration_ops_per_s: 1.0,
            host_parallelism: 1,
            hsbp_threads_env: None,
            threads_swept: vec![1],
            graphs: vec![],
        };
        let parsed = parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed.get("hsbp_threads_env"), Some(&Json::Null));
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let doc = r#"{"a": [1, -2.5e3, "x\ny\"z"], "b": {"c": true, "d": null}}"#;
        let v = parse_json(doc).unwrap();
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2].as_str(), Some("x\ny\"z"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    fn measurement(variant: &str, threads: usize, tp: f64) -> VariantMeasurement {
        measurement_mode(variant, "exact", threads, tp)
    }

    fn measurement_mode(
        variant: &str,
        math_mode: &str,
        threads: usize,
        tp: f64,
    ) -> VariantMeasurement {
        VariantMeasurement {
            variant: variant.into(),
            math_mode: math_mode.into(),
            threads,
            sweeps: 1,
            elapsed_s: 1.0 / tp,
            sweeps_per_s: tp,
            proposals_per_s: tp,
            acceptance_rate: 0.0,
            consolidations_incremental: 0,
            consolidations_rebuild: 0,
            consolidated_moves: 0,
            parallel_efficiency: 1.0,
            pool_sections: 0,
            pool_steals: 0,
            pool_max_imbalance: 0.0,
            pool_mean_imbalance: 0.0,
        }
    }

    fn one_line_report(name: &str, variant: &str, tp: f64, calib: f64) -> HotpathReport {
        HotpathReport {
            mode: "smoke".into(),
            calibration_ops_per_s: calib,
            host_parallelism: 1,
            hsbp_threads_env: None,
            threads_swept: vec![1],
            graphs: vec![GraphMeasurement {
                name: name.into(),
                vertices: 1,
                edges: 1,
                variants: vec![measurement(variant, 1, tp)],
            }],
        }
    }

    #[test]
    fn check_flags_regressions_and_normalises_machine_speed() {
        let baseline = one_line_report("g", "SBP", 100.0, 1e8);
        let base_json = parse_json(&baseline.to_json()).unwrap();

        // Same normalised speed on a machine 2x faster: not a regression.
        let same = one_line_report("g", "SBP", 200.0, 2e8);
        let lines = compare_reports(&same, &base_json, 0.15).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].regressed, "{lines:?}");
        assert!((lines[0].ratio - 1.0).abs() < 1e-9);

        // 30% slower normalised: regression at a 15% threshold.
        let slow = one_line_report("g", "SBP", 70.0, 1e8);
        let lines = compare_reports(&slow, &base_json, 0.15).unwrap();
        assert!(lines[0].regressed);

        // 10% slower: inside the threshold.
        let ok = one_line_report("g", "SBP", 90.0, 1e8);
        let lines = compare_reports(&ok, &base_json, 0.15).unwrap();
        assert!(!lines[0].regressed);
    }

    #[test]
    fn check_skips_unmatched_graphs() {
        let baseline = one_line_report("other_graph", "SBP", 100.0, 1e8);
        let base_json = parse_json(&baseline.to_json()).unwrap();
        let current = one_line_report("g", "SBP", 10.0, 1e8);
        let lines = compare_reports(&current, &base_json, 0.15).unwrap();
        assert!(lines.is_empty());
    }

    #[test]
    fn check_matches_on_thread_count() {
        // Baseline has 1- and 4-thread points with different speeds; each
        // current line must compare against its own thread count.
        let mut baseline = one_line_report("g", "A-SBP", 100.0, 1e8);
        baseline.graphs[0]
            .variants
            .push(measurement("A-SBP", 4, 300.0));
        let base_json = parse_json(&baseline.to_json()).unwrap();

        let mut current = one_line_report("g", "A-SBP", 100.0, 1e8);
        current.graphs[0]
            .variants
            .push(measurement("A-SBP", 4, 290.0));
        let lines = compare_reports(&current, &base_json, 0.15).unwrap();
        assert_eq!(lines.len(), 2);
        let at = |t: usize| lines.iter().find(|l| l.threads == t).unwrap();
        assert!((at(1).ratio - 1.0).abs() < 1e-9);
        assert!((at(4).ratio - 290.0 / 300.0).abs() < 1e-9);
        assert!(!at(4).regressed);
    }

    #[test]
    fn check_treats_v1_baseline_as_one_thread() {
        // A schema-1 baseline has no "threads" field: only the current
        // report's 1-thread lines compare; other thread points are skipped.
        let v1 = r#"{
            "schema_version": 1,
            "mode": "smoke",
            "calibration_ops_per_s": 1e8,
            "graphs": [{
                "name": "g", "vertices": 1, "edges": 1,
                "variants": [{"variant": "A-SBP", "sweeps": 1,
                              "sweeps_per_s": 100.0}]
            }]
        }"#;
        let base_json = parse_json(v1).unwrap();
        let mut current = one_line_report("g", "A-SBP", 50.0, 1e8);
        current.graphs[0]
            .variants
            .push(measurement("A-SBP", 4, 400.0));
        let lines = compare_reports(&current, &base_json, 0.15).unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].threads, 1);
        assert!(lines[0].regressed);
    }

    #[test]
    fn check_matches_on_math_mode() {
        // Baseline carries both modes at different speeds; each current
        // line must compare against its own mode, not the other's.
        let mut baseline = one_line_report("g", "A-SBP", 100.0, 1e8);
        baseline.graphs[0]
            .variants
            .push(measurement_mode("A-SBP", "table", 1, 200.0));
        let base_json = parse_json(&baseline.to_json()).unwrap();

        let mut current = one_line_report("g", "A-SBP", 100.0, 1e8);
        current.graphs[0]
            .variants
            .push(measurement_mode("A-SBP", "table", 1, 190.0));
        let lines = compare_reports(&current, &base_json, 0.15).unwrap();
        assert_eq!(lines.len(), 2);
        let at = |m: &str| lines.iter().find(|l| l.math_mode == m).unwrap();
        assert!((at("exact").ratio - 1.0).abs() < 1e-9);
        assert!((at("table").ratio - 190.0 / 200.0).abs() < 1e-9);
        assert!(!at("table").regressed);
    }

    #[test]
    fn check_falls_back_to_exact_baseline_for_table_lines() {
        // A schema-2 baseline has no math_mode field: its lines read as
        // `exact`, and a current table line compares against the exact
        // baseline (conservative: table must be at least as fast).
        let v2 = r#"{
            "schema_version": 2,
            "mode": "smoke",
            "calibration_ops_per_s": 1e8,
            "graphs": [{
                "name": "g", "vertices": 1, "edges": 1,
                "variants": [{"variant": "A-SBP", "threads": 1, "sweeps": 1,
                              "sweeps_per_s": 100.0}]
            }]
        }"#;
        let base_json = parse_json(v2).unwrap();
        let mut current = HotpathReport {
            mode: "smoke".into(),
            calibration_ops_per_s: 1e8,
            host_parallelism: 1,
            hsbp_threads_env: None,
            threads_swept: vec![1],
            graphs: vec![GraphMeasurement {
                name: "g".into(),
                vertices: 1,
                edges: 1,
                variants: vec![measurement_mode("A-SBP", "table", 1, 150.0)],
            }],
        };
        let lines = compare_reports(&current, &base_json, 0.15).unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].math_mode, "table");
        assert!((lines[0].ratio - 1.5).abs() < 1e-9);
        assert!(!lines[0].regressed);

        // ...and a slow table line still regresses against that fallback.
        current.graphs[0].variants[0] = measurement_mode("A-SBP", "table", 1, 50.0);
        let lines = compare_reports(&current, &base_json, 0.15).unwrap();
        assert!(lines[0].regressed);
    }

    #[test]
    fn math_mode_sweep_covers_modes() {
        // Not under HSBP_MATH here: the suite may run with it set, in which
        // case every mode is pinned to the env's single mode.
        let full = math_modes_for_mode("full");
        let smoke = math_modes_for_mode("smoke");
        if std::env::var(hsbp_core::HSBP_MATH_ENV).is_ok() {
            assert_eq!(full.len(), 1);
            assert_eq!(smoke, full);
        } else {
            assert_eq!(full, vec![MathMode::Exact, MathMode::Table]);
            assert_eq!(smoke, vec![MathMode::Exact]);
        }
    }

    #[test]
    fn thread_sweep_covers_modes() {
        // Not under HSBP_THREADS here: the suite may run with it set, in
        // which case the pinned sweep applies to every mode.
        let full = threads_for_mode("full");
        let smoke = threads_for_mode("smoke");
        assert_eq!(full.first(), Some(&1));
        assert_eq!(smoke.first(), Some(&1));
        assert!(full.len() >= smoke.len() || std::env::var("HSBP_THREADS").is_ok());
        for w in [&full, &smoke] {
            assert!(w.windows(2).all(|p| p[0] < p[1]), "{w:?} not increasing");
        }
    }
}
