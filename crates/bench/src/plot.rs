//! Terminal plotting: horizontal bar charts and scaling curves so the
//! `repro` output visually mirrors the paper's figures, not just their
//! underlying numbers.

use std::fmt::Write as _;

/// A horizontal grouped bar chart (one row per item, one bar per series).
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    series_names: Vec<String>,
    /// `(label, values)` — one value per series (NaN = missing).
    items: Vec<(String, Vec<f64>)>,
    /// Width of the bar area in characters.
    width: usize,
}

const BAR_GLYPHS: [char; 3] = ['█', '▒', '░'];

impl BarChart {
    /// New chart with one name per series (max 3 series).
    pub fn new(title: &str, series_names: &[&str]) -> Self {
        assert!(!series_names.is_empty() && series_names.len() <= BAR_GLYPHS.len());
        Self {
            title: title.to_string(),
            series_names: series_names.iter().map(|s| s.to_string()).collect(),
            items: Vec::new(),
            width: 46,
        }
    }

    /// Add one labelled group of bars (one value per series).
    pub fn item(&mut self, label: &str, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.series_names.len(),
            "series arity mismatch"
        );
        self.items.push((label.to_string(), values.to_vec()));
    }

    /// Number of item groups.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items were added.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let max = self
            .items
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max);
        let label_w = self
            .items
            .iter()
            .map(|(l, _)| l.len())
            .chain(self.series_names.iter().map(|s| s.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        // Legend.
        let legend: Vec<String> = self
            .series_names
            .iter()
            .enumerate()
            .map(|(i, name)| format!("{} {}", BAR_GLYPHS[i], name))
            .collect();
        let _ = writeln!(out, "  [{}]  (bar max = {:.3})", legend.join("  "), max);
        for (label, values) in &self.items {
            for (i, &v) in values.iter().enumerate() {
                let prefix = if i == 0 { label.as_str() } else { "" };
                if v.is_finite() && max > 0.0 {
                    let bar_len = ((v / max) * self.width as f64).round() as usize;
                    let bar: String = std::iter::repeat_n(BAR_GLYPHS[i], bar_len.max(1)).collect();
                    let _ = writeln!(out, "  {prefix:>label_w$} |{bar} {v:.3}");
                } else {
                    let _ = writeln!(out, "  {prefix:>label_w$} | (n/a)");
                }
            }
        }
        out
    }
}

/// An ASCII log-x scaling curve (Fig. 7 style): one line per point.
pub fn scaling_curve(title: &str, points: &[(usize, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let max = points.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    if max <= 0.0 {
        return out;
    }
    for &(threads, value) in points {
        let bar_len = ((value / max) * width as f64).round() as usize;
        let bar: String = std::iter::repeat_n('█', bar_len.max(1)).collect();
        let _ = writeln!(out, "  {threads:>4} threads |{bar} {value:.0}");
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_items_and_legend() {
        let mut chart = BarChart::new("NMI", &["SBP", "H-SBP", "A-SBP"]);
        chart.item("S2", &[0.9, 0.92, 0.5]);
        chart.item("S4", &[1.0, 1.0, 1.0]);
        let s = chart.render();
        assert!(s.contains("NMI"));
        assert!(s.contains("S2"));
        assert!(s.contains("S4"));
        assert!(s.contains("█"));
        assert!(s.contains("▒"));
        assert!(s.contains("SBP"));
        assert_eq!(chart.len(), 2);
    }

    #[test]
    fn longest_bar_belongs_to_max() {
        let mut chart = BarChart::new("t", &["x"]);
        chart.item("small", &[1.0]);
        chart.item("big", &[10.0]);
        let s = chart.render();
        let count = |line_label: &str| {
            s.lines()
                .find(|l| l.contains(line_label))
                .map(|l| l.chars().filter(|&c| c == '█').count())
                .unwrap()
        };
        assert!(count("big") > count("small"));
    }

    #[test]
    fn handles_nan_values() {
        let mut chart = BarChart::new("t", &["x", "y"]);
        chart.item("a", &[f64::NAN, 2.0]);
        let s = chart.render();
        assert!(s.contains("(n/a)"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut chart = BarChart::new("t", &["x", "y"]);
        chart.item("a", &[1.0]);
    }

    #[test]
    fn scaling_curve_monotone_bars() {
        let points = vec![(1usize, 100.0), (2, 60.0), (4, 40.0)];
        let s = scaling_curve("scaling", &points, 30);
        assert!(s.contains("1 threads"));
        assert!(s.contains("4 threads"));
        let bars: Vec<usize> = s
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert!(bars[0] > bars[1] && bars[1] > bars[2]);
    }

    #[test]
    fn empty_curve_is_title_only() {
        let s = scaling_curve("nothing", &[], 20);
        assert_eq!(s.lines().count(), 1);
    }
}
