//! Experiment harness for reproducing every table and figure of the paper.
//!
//! * [`runner`] — runs the SBP variants over the Table 1 / Table 2 catalogs
//!   (5-restart best-MDL protocol, scaled by a configurable factor) and
//!   collects per-run measurements,
//! * [`report`] — aligned text tables and CSV files under `results/`,
//! * [`experiments`] — one function per paper artifact (Table 1, Table 2,
//!   Figs. 2–8), composed by the `repro` binary.
//!
//! Scaled-down defaults are deliberate: the paper's runs took node-hours on
//! a 128-core EPYC; the same pipelines here complete in minutes while
//! preserving mean degree, degree shape and community strength (see
//! DESIGN.md §3 for the substitution argument).

// Harness code fails loudly with a message (`panic!`) or an error return,
// never through a bare `unwrap`/`expect`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod experiments;
pub mod hotpath;
pub mod plot;
pub mod report;
pub mod runner;
pub mod serve;
pub mod shard;

pub use runner::{ExperimentContext, RealRun, SyntheticRun};
