//! Communication-vs-computation curves for the exact distributed mode.
//!
//! ```text
//! bench_shard [--mode smoke|full] [--out PATH]
//! ```
//!
//! Runs the scaling family (shards × sync-every under the null plan) and
//! the fault family (drop / reorder / corrupt / straggler at 4 shards) on
//! the seeded DCSBM graph of the chosen spec, and writes the per-row
//! bytes-per-round / retransmit / resync / cost-split measurements to
//! `--out` (default `BENCH_shard.json`). Every run is deterministic: the
//! same invocation reproduces the same report bytes.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use hsbp_bench::shard::{run_shard_bench, ShardBenchSpec, FULL, SMOKE};
use std::process::ExitCode;

struct Args {
    mode: String,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: "smoke".into(),
        out: "BENCH_shard.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--mode" => args.mode = value("--mode")?,
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                return Err("usage: bench_shard [--mode smoke|full] [--out PATH]".into())
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn spec_for(mode: &str) -> Option<&'static ShardBenchSpec> {
    match mode {
        "smoke" => Some(&SMOKE),
        "full" => Some(&FULL),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let Some(spec) = spec_for(&args.mode) else {
        eprintln!("unknown --mode '{}': expected smoke|full", args.mode);
        return ExitCode::from(2);
    };
    let report = match run_shard_bench(spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(6);
        }
    };
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "report written to {} ({} rows)",
        args.out,
        report.rows.len()
    );
    ExitCode::SUCCESS
}
