//! Deterministic, replayable load test for the `hsbp-serve` daemon.
//!
//! ```text
//! bench_serve [--mode smoke|full] [--seed N] [--out PATH]
//!             [--connect HOST:PORT] [--quit true]
//! ```
//!
//! Without `--connect`, an in-process daemon is spawned on an ephemeral
//! port, the seeded workload is replayed against it, and it is shut down —
//! fully self-contained. The in-process run then adds the crash-recovery
//! leg: a second, durable daemon is fed the workload's mutations, killed
//! without a shutdown snapshot, and restarted from its state directory;
//! the report's `recovery` object records the warm-restart wall time and
//! replayed WAL records. With `--connect`, the same workload drives an
//! externally started daemon (what the CI smoke job does against
//! `hsbp serve`) and the recovery leg is skipped (`"recovery": null`, the
//! schema-v1-compatible shape); `--quit true` additionally sends
//! `{"op":"quit"}` at the end so the daemon exits cleanly.
//!
//! The workload is a pure function of `(mode, seed)`: the report's
//! `workload_fingerprint` hashes every request line, so equal fingerprints
//! prove byte-identical replays. Results are written to `--out` (default
//! `BENCH_serve.json`).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use hsbp_bench::serve::{
    fingerprint, generate_workload, run_recovery_leg, run_workload, ServeClient, ServeSpec, FULL,
    SMOKE,
};
use hsbp_core::{RunBudget, SbpConfig, Variant};
use hsbp_graph::Graph;
use hsbp_serve::{ServeConfig, Server};
use std::process::ExitCode;

struct Args {
    mode: String,
    seed: u64,
    out: String,
    connect: Option<String>,
    quit: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: "smoke".into(),
        seed: 42,
        out: "BENCH_serve.json".into(),
        connect: None,
        quit: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--mode" => args.mode = value("--mode")?,
            "--seed" => {
                let raw = value("--seed")?;
                args.seed = raw.parse().map_err(|_| format!("invalid --seed '{raw}'"))?;
            }
            "--out" => args.out = value("--out")?,
            "--connect" => args.connect = Some(value("--connect")?),
            "--quit" => match value("--quit")?.as_str() {
                "true" => args.quit = true,
                "false" => args.quit = false,
                other => return Err(format!("--quit needs true or false, got '{other}'")),
            },
            "--help" | "-h" => {
                return Err(
                    "usage: bench_serve [--mode smoke|full] [--seed N] [--out PATH] \
                            [--connect HOST:PORT] [--quit true]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn spec_for(mode: &str) -> Option<&'static ServeSpec> {
    match mode {
        "smoke" => Some(&SMOKE),
        "full" => Some(&FULL),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let Some(spec) = spec_for(&args.mode) else {
        eprintln!("unknown --mode '{}': expected smoke|full", args.mode);
        return ExitCode::from(2);
    };
    let workload = generate_workload(spec, args.seed);
    eprintln!(
        "workload {}: {} rounds, fingerprint {:016x}",
        spec.name,
        workload.rounds.len(),
        fingerprint(&workload)
    );

    // In-process daemon unless --connect points at an external one.
    let (addr, local) = match &args.connect {
        Some(addr) => (addr.clone(), None),
        None => {
            let config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                sbp: SbpConfig::new(Variant::Metropolis, args.seed),
                budget: RunBudget::unlimited(),
                ..ServeConfig::default()
            };
            let handle = match Server::spawn(config, Graph::from_edges(0, &[])) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(9);
                }
            };
            (handle.local_addr().to_string(), Some(handle))
        }
    };

    let mut report = match run_workload(&addr, spec, args.seed, &workload) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            if let Some(handle) = local {
                handle.shutdown();
                handle.join();
            }
            return ExitCode::from(9);
        }
    };

    // Crash-recovery leg: only meaningful when this process owns the
    // daemon's lifetime (killing an external daemon is not our call).
    if args.connect.is_none() {
        let state_dir = std::env::temp_dir().join(format!(
            "bench-serve-recovery-{}-{}",
            std::process::id(),
            args.seed
        ));
        let _ = std::fs::remove_dir_all(&state_dir);
        match run_recovery_leg(spec, args.seed, &workload, &state_dir) {
            Ok(rec) => {
                eprintln!(
                    "recovery leg: warm restart {:.1} ms, {} WAL batch(es) replayed \
                     from epoch {}",
                    rec.recovery_ms, rec.replayed_batches, rec.recovered_epoch
                );
                report.recovery = Some(rec);
            }
            Err(e) => {
                eprintln!("error: recovery leg failed: {e}");
                let _ = std::fs::remove_dir_all(&state_dir);
                return ExitCode::from(9);
            }
        }
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    if args.quit {
        match ServeClient::connect(&addr).and_then(|mut c| c.quit()) {
            Ok(()) => eprintln!("sent quit; daemon shutting down"),
            Err(e) => {
                eprintln!("error: quit failed: {e}");
                return ExitCode::from(9);
            }
        }
    }
    if let Some(handle) = local {
        handle.shutdown();
        handle.join();
    }

    eprintln!(
        "reads {} (p50 {:.1} µs, p99 {:.1} µs)  mutations {} ({:.0}/s)  \
         mid-refinement reads {}  cancellations {}  drift repairs {}  epoch {}",
        report.reads,
        report.read_p50_us,
        report.read_p99_us,
        report.mutations,
        report.mutations_per_s,
        report.mid_refinement_reads,
        report.cancellations,
        report.drift_repairs,
        report.final_epoch
    );
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("report written to {}", args.out);
    ExitCode::SUCCESS
}
