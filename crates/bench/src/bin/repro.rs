//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p hsbp-bench --bin repro -- all
//! cargo run --release -p hsbp-bench --bin repro -- fig4a --scale 0.01 --restarts 3
//! ```
//!
//! Experiments: table1 table2 fig2 fig3 fig4a fig4b fig5a fig5b fig6 fig7
//! fig8a fig8b ablation all. Output: aligned tables on stdout + CSVs under
//! `results/` (override with `--out DIR`).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use hsbp_bench::experiments as exp;
use hsbp_bench::runner::{run_realworld_suite, run_synthetic_suite, ExperimentContext};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment> [--scale S] [--restarts N] [--seed K] [--out DIR] [--quiet]\n\
         experiments: table1 table2 fig2 fig3 fig4a fig4b fig5a fig5b fig6 fig7 fig8a fig8b\n\
         synth (= all synthetic figs) real (= all real-world figs) ablation all\n\
         (default scale {:.5}, restarts 2)",
        ExperimentContext::default().scale
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut ctx = ExperimentContext::default();
    let mut out = PathBuf::from("results");
    let mut experiment: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                ctx.scale = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("bad --scale: {e}");
                        usage()
                    });
            }
            "--restarts" => {
                ctx.restarts = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("bad --restarts: {e}");
                        usage()
                    });
            }
            "--seed" => {
                ctx.seed = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("bad --seed: {e}");
                        usage()
                    });
            }
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--quiet" => ctx.verbose = false,
            other if !other.starts_with('-') && experiment.is_none() => {
                experiment = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if !(ctx.scale > 0.0 && ctx.scale <= 1.0) {
        eprintln!("--scale must be in (0, 1]");
        usage();
    }
    let experiment = experiment.unwrap_or_else(|| usage());

    let needs_synth = matches!(
        experiment.as_str(),
        "fig2" | "fig3" | "fig4a" | "fig4b" | "fig8a" | "synth"
    );
    let needs_real = matches!(
        experiment.as_str(),
        "fig5a" | "fig5b" | "fig6" | "fig8b" | "real"
    );
    let synth = needs_synth.then(|| run_synthetic_suite(&ctx));
    let real = needs_real.then(|| run_realworld_suite(&ctx));

    match experiment.as_str() {
        "table1" => exp::table1_report(&ctx, &out),
        "table2" => exp::table2_report(&ctx, &out),
        "fig2" => exp::fig2_report(synth.as_deref().unwrap_or_else(|| usage()), &out),
        "fig3" => exp::fig3_report(synth.as_deref().unwrap_or_else(|| usage()), &out),
        "fig4a" => exp::fig4a_report(synth.as_deref().unwrap_or_else(|| usage()), &out),
        "fig4b" => exp::fig4b_report(synth.as_deref().unwrap_or_else(|| usage()), &out),
        "fig8a" => exp::fig8a_report(synth.as_deref().unwrap_or_else(|| usage()), &out),
        "fig5a" => exp::fig5a_report(real.as_deref().unwrap_or_else(|| usage()), &out),
        "fig5b" => exp::fig5b_report(real.as_deref().unwrap_or_else(|| usage()), &out),
        "fig6" => exp::fig6_report(real.as_deref().unwrap_or_else(|| usage()), &out),
        "fig8b" => exp::fig8b_report(real.as_deref().unwrap_or_else(|| usage()), &out),
        "fig7" => exp::fig7_report(&ctx, &out),
        "synth" => {
            let synth = synth.as_deref().unwrap_or_else(|| usage());
            exp::fig2_report(synth, &out);
            exp::fig3_report(synth, &out);
            exp::fig4a_report(synth, &out);
            exp::fig4b_report(synth, &out);
            exp::fig8a_report(synth, &out);
        }
        "real" => {
            let real = real.as_deref().unwrap_or_else(|| usage());
            exp::fig5a_report(real, &out);
            exp::fig5b_report(real, &out);
            exp::fig6_report(real, &out);
            exp::fig8b_report(real, &out);
        }
        "ablation" => {
            exp::ablation_serial_fraction(&ctx, &out);
            exp::ablation_chunking(&ctx, &out);
            exp::ablation_staleness(&ctx, &out);
            exp::ablation_batches(&ctx, &out);
            exp::ablation_exact_async(&ctx, &out);
        }
        "all" => exp::run_all(&ctx, &out),
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }
}
