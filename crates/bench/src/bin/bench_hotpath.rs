//! Hot-path throughput baseline for the MCMC sweep loop.
//!
//! ```text
//! bench_hotpath [--mode full|smoke|check] [--out PATH]
//!               [--baseline PATH] [--threshold FRACTION]
//! ```
//!
//! * `full`  (default) — smoke + 5k + 20k DCSBM graphs; writes the committed
//!   `BENCH_mcmc.json` baseline,
//! * `smoke` — the seconds-scale smoke graph only,
//! * `check` — run smoke and exit non-zero if any variant's
//!   calibration-normalised sweep throughput regressed more than
//!   `--threshold` (default 0.15) against `--baseline`
//!   (default `BENCH_mcmc.json`). Noisy measurement windows are retried:
//!   each variant keeps its best ratio across up to 3 attempts.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use hsbp_bench::hotpath::{
    compare_reports, parse_json, run_report, CheckLine, HotpathSpec, FIVE_K, SMOKE, TWENTY_K,
};
use std::process::ExitCode;

/// Check mode re-measures on a transient regression: CI runners share CPUs,
/// and contention drifts on a seconds scale, so a single slow measurement
/// window can dip any one variant well past the threshold. A *real*
/// regression is slow in every window; noise is not.
const CHECK_ATTEMPTS: usize = 3;

struct Args {
    mode: String,
    out: String,
    baseline: String,
    threshold: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: "full".into(),
        out: "BENCH_mcmc.json".into(),
        baseline: "BENCH_mcmc.json".into(),
        threshold: 0.15,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--mode" => args.mode = value("--mode")?,
            "--out" => args.out = value("--out")?,
            "--baseline" => args.baseline = value("--baseline")?,
            "--threshold" => {
                let raw = value("--threshold")?;
                args.threshold = raw
                    .parse::<f64>()
                    .map_err(|_| format!("invalid --threshold '{raw}'"))?;
                if !(args.threshold > 0.0 && args.threshold < 1.0) {
                    return Err("--threshold must be in (0, 1)".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_hotpath [--mode full|smoke|check] [--out PATH] \
                     [--baseline PATH] [--threshold FRACTION]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn print_report(report: &hsbp_bench::hotpath::HotpathReport) {
    println!(
        "calibration: {:.3e} splitmix64 ops/s  (host parallelism {})",
        report.calibration_ops_per_s, report.host_parallelism
    );
    for g in &report.graphs {
        println!(
            "graph {} ({} vertices, {} edges):",
            g.name, g.vertices, g.edges
        );
        for v in &g.variants {
            println!(
                "  {:<7} {:<5} t={:<2} {:>9.2} sweeps/s  {:>12.0} proposals/s  accept {:.3}  \
                 eff {:.2}  steals {}  imbalance {:.2}",
                v.variant,
                v.math_mode,
                v.threads,
                v.sweeps_per_s,
                v.proposals_per_s,
                v.acceptance_rate,
                v.parallel_efficiency,
                v.pool_steals,
                v.pool_mean_imbalance
            );
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let specs: &[HotpathSpec] = match args.mode.as_str() {
        "full" => &[SMOKE, FIVE_K, TWENTY_K],
        "smoke" | "check" => &[SMOKE],
        other => return Err(format!("unknown --mode '{other}'")),
    };
    if args.mode == "check" {
        let text = std::fs::read_to_string(&args.baseline)
            .map_err(|e| format!("cannot read baseline {}: {e}", args.baseline))?;
        let baseline = parse_json(&text).map_err(|e| format!("baseline parse error: {e}"))?;
        // Best ratio per (graph, variant) across attempts: a variant passes
        // if *any* measurement window cleared the threshold.
        let mut best: Vec<CheckLine> = Vec::new();
        for attempt in 1..=CHECK_ATTEMPTS {
            let report = run_report(&args.mode, specs);
            print_report(&report);
            let lines = compare_reports(&report, &baseline, args.threshold)?;
            if lines.is_empty() {
                return Err(format!(
                    "baseline {} has no graphs overlapping this run",
                    args.baseline
                ));
            }
            for line in lines {
                match best.iter_mut().find(|b| {
                    b.graph == line.graph
                        && b.variant == line.variant
                        && b.math_mode == line.math_mode
                        && b.threads == line.threads
                }) {
                    Some(b) if line.ratio > b.ratio => *b = line,
                    Some(_) => {}
                    None => best.push(line),
                }
            }
            if best.iter().all(|l| !l.regressed) {
                break;
            }
            if attempt < CHECK_ATTEMPTS {
                println!(
                    "check attempt {attempt}/{CHECK_ATTEMPTS}: transient dip beyond the \
                     threshold, re-measuring"
                );
            }
        }
        let mut regressed = false;
        for line in &best {
            println!(
                "check {}/{:<7} {:<5} t={:<2} normalised ratio {:.3} \
                 (baseline {:.3e}, current {:.3e}){}",
                line.graph,
                line.variant,
                line.math_mode,
                line.threads,
                line.ratio,
                line.baseline_norm,
                line.current_norm,
                if line.regressed { "  REGRESSED" } else { "" }
            );
            regressed |= line.regressed;
        }
        if regressed {
            return Err(format!(
                "throughput regression beyond {:.0}% detected",
                args.threshold * 100.0
            ));
        }
        println!(
            "check passed: no regression beyond {:.0}%",
            args.threshold * 100.0
        );
    } else {
        let report = run_report(&args.mode, specs);
        print_report(&report);
        std::fs::write(&args.out, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", args.out))?;
        println!("wrote {}", args.out);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_hotpath: {e}");
            ExitCode::FAILURE
        }
    }
}
