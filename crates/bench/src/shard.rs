//! The `bench_shard` harness: communication-vs-computation curves for the
//! exact distributed mode.
//!
//! Two row families on one seeded DCSBM graph:
//!
//! * **scaling** — shards × `sync_every` under the null fault plan: how
//!   bytes-on-wire per sync round and the comm/compute cost split move as
//!   the cluster grows and delta batching coarsens;
//! * **faults** — a fixed 4-shard cluster under each hostile plan (drop,
//!   reorder, corrupt, straggler): the traffic inflation recovery costs
//!   (retransmits, resyncs) and the NMI against the fault-free run —
//!   1.0 for every recoverable plan, by construction of the round barrier.
//!
//! Every run is a pure function of `(spec, plan)`; results land in
//! `BENCH_shard.json` (`schema_version` = [`BENCH_SHARD_SCHEMA_VERSION`]).

use hsbp_core::SbpConfig;
use hsbp_generator::{generate, DcsbmConfig};
use hsbp_graph::Graph;
use hsbp_metrics::nmi;
use hsbp_shard::{run_exact_sbp, ExactConfig, NetFaultPlan};

/// Bump on any change to the JSON shape of [`ShardReport`].
pub const BENCH_SHARD_SCHEMA_VERSION: u32 = 1;

/// Shape of one benchmark graph.
#[derive(Debug, Clone, Copy)]
pub struct ShardBenchSpec {
    /// Stable name recorded in the report.
    pub name: &'static str,
    /// DCSBM vertex count.
    pub vertices: u32,
    /// Planted community count.
    pub communities: u32,
    /// Target edge count.
    pub edges: usize,
    /// Graph-sampling seed.
    pub graph_seed: u64,
    /// SBP seed shared by every run in the report.
    pub sbp_seed: u64,
}

/// Seconds-scale spec CI replays on every push.
pub const SMOKE: ShardBenchSpec = ShardBenchSpec {
    name: "smoke",
    vertices: 600,
    communities: 6,
    edges: 6000,
    graph_seed: 13,
    sbp_seed: 9,
};

/// The committed-baseline spec (minutes-scale on the bench host).
pub const FULL: ShardBenchSpec = ShardBenchSpec {
    name: "full",
    vertices: 2000,
    communities: 10,
    edges: 20_000,
    graph_seed: 29,
    sbp_seed: 9,
};

/// One measured exact-mode run.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// `scaling` or `faults`.
    pub family: &'static str,
    /// Row label (e.g. `s4_e1` or the fault-plan name).
    pub label: String,
    /// Shard count.
    pub shards: usize,
    /// Sweeps per sync round.
    pub sync_every: usize,
    /// The fault plan, in `NetFaultPlan::parse` syntax (empty = null plan).
    pub plan: String,
    /// Sync rounds completed.
    pub rounds: usize,
    /// Messages put on the emulated wire.
    pub messages: u64,
    /// Bytes put on the emulated wire.
    pub bytes: u64,
    /// Mean bytes per sync round.
    pub bytes_per_round: f64,
    /// Delta retransmits after NACKs.
    pub retransmits: u64,
    /// Gap NACKs sent.
    pub nacks: u64,
    /// Full-state coordinator resyncs.
    pub resyncs: u64,
    /// Simulated communication cost (per-message fixed + per-byte).
    pub comm_cost: f64,
    /// Simulated MCMC compute cost at `shards` virtual threads.
    pub compute_cost: f64,
    /// `comm_cost / (comm_cost + compute_cost)`.
    pub comm_fraction: f64,
    /// Final description length.
    pub mdl: f64,
    /// Final community count.
    pub num_blocks: usize,
    /// NMI against the fault-free run at the same shards/`sync_every`.
    pub nmi_vs_clean: f64,
    /// Shards declared dead during the run.
    pub dead_shards: usize,
}

/// The full report: spec + rows.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Which spec produced the rows.
    pub mode: String,
    /// Graph shape, echoed for the reader.
    pub vertices: u32,
    /// Edge count of the sampled graph (actual, not target).
    pub edges: usize,
    /// SBP seed shared by every run.
    pub seed: u64,
    /// The measured runs.
    pub rows: Vec<ShardRow>,
}

fn exact_cfg(
    spec: &ShardBenchSpec,
    shards: usize,
    sync_every: usize,
    plan: NetFaultPlan,
) -> ExactConfig {
    ExactConfig {
        num_shards: shards,
        sbp: SbpConfig {
            seed: spec.sbp_seed,
            ..Default::default()
        },
        sync_every,
        net_faults: plan,
        ..Default::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn measure(
    graph: &Graph,
    spec: &ShardBenchSpec,
    family: &'static str,
    label: String,
    shards: usize,
    sync_every: usize,
    plan: NetFaultPlan,
    clean_assignment: &[u32],
) -> Result<ShardRow, String> {
    let plan_spec = if plan.is_null() {
        String::new()
    } else {
        plan.to_string()
    };
    let run = run_exact_sbp(graph, &exact_cfg(spec, shards, sync_every, plan))
        .map_err(|e| format!("{family}/{label}: {e}"))?;
    let net = &run.net;
    let compute_cost = run
        .result
        .stats
        .sim_mcmc_time(shards)
        .or_else(|| run.result.stats.sim_mcmc_time(1))
        .unwrap_or(0.0);
    let denom = net.comm_cost + compute_cost;
    Ok(ShardRow {
        family,
        label,
        shards,
        sync_every,
        plan: plan_spec,
        rounds: run.rounds.len(),
        messages: net.messages,
        bytes: net.bytes,
        bytes_per_round: net.bytes as f64 / run.rounds.len().max(1) as f64,
        retransmits: net.retransmits,
        nacks: net.nacks,
        resyncs: net.resyncs,
        comm_cost: net.comm_cost,
        compute_cost,
        comm_fraction: if denom > 0.0 {
            net.comm_cost / denom
        } else {
            0.0
        },
        mdl: run.result.mdl.total,
        num_blocks: run.result.num_blocks,
        nmi_vs_clean: nmi(clean_assignment, &run.result.assignment),
        dead_shards: run.dead_shards.len(),
    })
}

/// Shard counts of the scaling family.
const SCALING_SHARDS: &[usize] = &[2, 4, 8];
/// Delta-batching factors of the scaling family.
const SCALING_SYNC_EVERY: &[usize] = &[1, 2, 4];
/// Shard count the fault family runs at.
const FAULT_SHARDS: usize = 4;

/// Fault plans of the fault family, as `(name, spec)`.
pub fn fault_plans() -> Vec<(&'static str, String)> {
    vec![
        ("drop", "seed:5, drop:0.05".into()),
        ("reorder", "seed:7, reorder:0.25".into()),
        ("corrupt", "seed:8, corrupt:0.05".into()),
        ("straggler", format!("silent:{}@3", FAULT_SHARDS - 1)),
    ]
}

/// Run every row of the report for `spec`. Progress goes to stderr.
pub fn run_shard_bench(spec: &ShardBenchSpec) -> Result<ShardReport, String> {
    let data = generate(DcsbmConfig {
        num_vertices: spec.vertices as usize,
        num_communities: spec.communities as usize,
        target_num_edges: spec.edges,
        seed: spec.graph_seed,
        ..Default::default()
    });
    let graph = &data.graph;
    eprintln!(
        "spec {}: {} vertices, {} edges, {} planted communities",
        spec.name,
        graph.num_vertices(),
        graph.num_edges(),
        spec.communities
    );

    let mut rows = Vec::new();
    // Scaling family: clean reference per (shards, sync_every) is itself.
    let mut clean_at_fault_point: Option<Vec<u32>> = None;
    for &shards in SCALING_SHARDS {
        for &sync_every in SCALING_SYNC_EVERY {
            let label = format!("s{shards}_e{sync_every}");
            let run = run_exact_sbp(
                graph,
                &exact_cfg(spec, shards, sync_every, NetFaultPlan::none()),
            )
            .map_err(|e| format!("scaling/{label}: {e}"))?;
            let clean = run.result.assignment.clone();
            if shards == FAULT_SHARDS && sync_every == 1 {
                clean_at_fault_point = Some(clean.clone());
            }
            rows.push(measure(
                graph,
                spec,
                "scaling",
                label.clone(),
                shards,
                sync_every,
                NetFaultPlan::none(),
                &clean,
            )?);
            let row = match rows.last() {
                Some(r) => r,
                None => return Err("row vanished".into()),
            };
            eprintln!(
                "  scaling {label}: {} rounds, {} bytes ({:.0}/round), comm fraction {:.3}",
                row.rounds, row.bytes, row.bytes_per_round, row.comm_fraction
            );
        }
    }

    // Fault family, against the fault-free run at the same cluster shape.
    let clean = clean_at_fault_point.ok_or("scaling family skipped the fault point")?;
    for (name, plan_spec) in fault_plans() {
        let plan = NetFaultPlan::parse(&plan_spec).map_err(|e| format!("plan {name}: {e}"))?;
        let row = measure(
            graph,
            spec,
            "faults",
            name.to_string(),
            FAULT_SHARDS,
            1,
            plan,
            &clean,
        )?;
        eprintln!(
            "  fault {name}: {} retransmits, {} resyncs, {} dead, NMI vs clean {:.4}",
            row.retransmits, row.resyncs, row.dead_shards, row.nmi_vs_clean
        );
        rows.push(row);
    }

    Ok(ShardReport {
        mode: spec.name.to_string(),
        vertices: spec.vertices,
        edges: graph.num_edges(),
        seed: spec.sbp_seed,
        rows,
    })
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

impl ShardReport {
    /// Serialise to pretty-printed JSON (hand-rolled; the build is
    /// dependency-free by policy).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema_version\": {BENCH_SHARD_SCHEMA_VERSION},\n"
        ));
        s.push_str(&format!(
            "  \"sync_protocol_version\": {},\n",
            hsbp_shard::SYNC_PROTOCOL_VERSION
        ));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("  \"vertices\": {},\n", self.vertices));
        s.push_str(&format!("  \"edges\": {},\n", self.edges));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"family\": \"{}\",\n", r.family));
            s.push_str(&format!("      \"label\": \"{}\",\n", r.label));
            s.push_str(&format!("      \"shards\": {},\n", r.shards));
            s.push_str(&format!("      \"sync_every\": {},\n", r.sync_every));
            s.push_str(&format!("      \"plan\": \"{}\",\n", r.plan));
            s.push_str(&format!("      \"rounds\": {},\n", r.rounds));
            s.push_str(&format!("      \"messages\": {},\n", r.messages));
            s.push_str(&format!("      \"bytes\": {},\n", r.bytes));
            s.push_str(&format!(
                "      \"bytes_per_round\": {},\n",
                json_num(r.bytes_per_round)
            ));
            s.push_str(&format!("      \"retransmits\": {},\n", r.retransmits));
            s.push_str(&format!("      \"nacks\": {},\n", r.nacks));
            s.push_str(&format!("      \"resyncs\": {},\n", r.resyncs));
            s.push_str(&format!(
                "      \"comm_cost\": {},\n",
                json_num(r.comm_cost)
            ));
            s.push_str(&format!(
                "      \"compute_cost\": {},\n",
                json_num(r.compute_cost)
            ));
            s.push_str(&format!(
                "      \"comm_fraction\": {},\n",
                json_num(r.comm_fraction)
            ));
            s.push_str(&format!("      \"mdl\": {},\n", json_num(r.mdl)));
            s.push_str(&format!("      \"num_blocks\": {},\n", r.num_blocks));
            s.push_str(&format!(
                "      \"nmi_vs_clean\": {},\n",
                json_num(r.nmi_vs_clean)
            ));
            s.push_str(&format!("      \"dead_shards\": {}\n", r.dead_shards));
            s.push_str(if i + 1 == self.rows.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_parse() {
        for (name, spec) in fault_plans() {
            NetFaultPlan::parse(&spec).unwrap_or_else(|e| panic!("plan {name}: {e}"));
        }
    }

    #[test]
    fn report_serialises_with_schema_version() {
        let report = ShardReport {
            mode: "smoke".into(),
            vertices: 600,
            edges: 6000,
            seed: 9,
            rows: vec![ShardRow {
                family: "scaling",
                label: "s2_e1".into(),
                shards: 2,
                sync_every: 1,
                plan: String::new(),
                rounds: 10,
                messages: 20,
                bytes: 4000,
                bytes_per_round: 400.0,
                retransmits: 0,
                nacks: 0,
                resyncs: 0,
                comm_cost: 1.0,
                compute_cost: 3.0,
                comm_fraction: 0.25,
                mdl: 19000.5,
                num_blocks: 6,
                nmi_vs_clean: 1.0,
                dead_shards: 0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains(&format!("\"schema_version\": {BENCH_SHARD_SCHEMA_VERSION}")));
        assert!(json.contains("\"bytes_per_round\": 400.0"));
        assert!(json.contains("\"nmi_vs_clean\": 1.0"));
        // Balanced braces / brackets — cheap structural sanity without a parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
