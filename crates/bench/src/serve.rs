//! The `bench_serve` load-test harness: a deterministic, replayable client
//! workload against an `hsbp-serve` daemon.
//!
//! The workload is generated entirely from `(spec, seed)` — bursty
//! mutation batches (biased toward intra-group edges so refinement has
//! structure to find) interleaved with heavy read bursts — and the
//! generator emits literal protocol lines, so `workload_fingerprint` in
//! the report proves two runs replayed the identical byte sequence.
//! Measured per run:
//!
//! * **read latency** p50/p99 (µs) — individual request round-trips
//!   answered from the published snapshot while refinement runs;
//! * **mutations/s** — batch round-trip throughput;
//! * **refinement lag** — wall time of the `flush` barrier per round;
//! * **mid-refinement reads** — reads whose response epoch predates the
//!   post-flush epoch of their round: proof the daemon answered them from
//!   the previous snapshot while the new one was still being refined;
//! * **recovery leg** (in-process mode, schema v2) — a durable daemon is
//!   fed the workload's mutations, killed without a shutdown snapshot, and
//!   restarted from its state directory; `recovery_ms` is the warm-restart
//!   wall time (snapshot load + WAL tail replay) and `replayed_batches`
//!   how many WAL records it re-refined.
//!
//! Results land in `BENCH_serve.json`
//! (`schema_version` = [`hsbp_serve::BENCH_SERVE_SCHEMA_VERSION`]).

use hsbp_collections::SplitMix64;
use hsbp_core::{HsbpError, RunBudget, SbpConfig, Variant};
use hsbp_graph::Graph;
use hsbp_serve::json::{parse, Json};
use hsbp_serve::{ServeConfig, Server, BENCH_SERVE_SCHEMA_VERSION, PROTOCOL_VERSION};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Shape of one generated workload.
#[derive(Debug, Clone, Copy)]
pub struct ServeSpec {
    /// Stable name recorded in the report.
    pub name: &'static str,
    /// Vertex id universe the workload mutates.
    pub vertices: u32,
    /// Planted group count (edge endpoints are intra-group biased).
    pub groups: u32,
    /// Mutation-burst / read-burst rounds.
    pub rounds: usize,
    /// Edges per mutation batch.
    pub batch_size: usize,
    /// Read requests per round.
    pub reads_per_round: usize,
}

/// Seconds-scale workload CI replays on every push.
pub const SMOKE: ServeSpec = ServeSpec {
    name: "smoke",
    vertices: 120,
    groups: 4,
    rounds: 6,
    batch_size: 40,
    reads_per_round: 30,
};

/// The committed-baseline workload (minutes-scale on the bench host).
pub const FULL: ServeSpec = ServeSpec {
    name: "full",
    vertices: 600,
    groups: 8,
    rounds: 20,
    batch_size: 150,
    reads_per_round: 100,
};

/// One mutation/read round of protocol lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkRound {
    /// Mutation batch requests (each one `add_edges`/`remove_edges` line).
    pub mutation_lines: Vec<String>,
    /// Read requests (`membership` / `mdl` / `block_stats` lines).
    pub read_lines: Vec<String>,
}

/// A fully materialised workload: literal request lines, nothing left to
/// randomness at replay time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// The rounds, replayed in order.
    pub rounds: Vec<WorkRound>,
}

/// Generate the deterministic workload for `(spec, seed)`.
pub fn generate_workload(spec: &ServeSpec, seed: u64) -> Workload {
    let mut rounds = Vec::with_capacity(spec.rounds);
    let per_group = (spec.vertices / spec.groups).max(1);
    for round in 0..spec.rounds {
        let mut rng = SplitMix64::for_item(seed, 0x5345_5256, round as u64); // "SERV"
        let mut adds: Vec<(u32, u32, u64)> = Vec::new();
        let mut removes: Vec<(u32, u32)> = Vec::new();
        for _ in 0..spec.batch_size {
            let u = rng.next_below(u64::from(spec.vertices)) as u32;
            let group = u / per_group;
            // 85% intra-group edges: mutations mostly reinforce the planted
            // structure, so warm refinement has a signal to track.
            let v = if rng.next_below(100) < 85 {
                (group * per_group + rng.next_below(u64::from(per_group)) as u32)
                    .min(spec.vertices - 1)
            } else {
                rng.next_below(u64::from(spec.vertices)) as u32
            };
            if u == v {
                continue;
            }
            // 12% of entries retract an edge added earlier this round.
            if rng.next_below(100) < 12 && !adds.is_empty() {
                let idx = rng.next_below(adds.len() as u64) as usize;
                removes.push((adds[idx].0, adds[idx].1));
            } else {
                adds.push((u, v, 1 + rng.next_below(3)));
            }
        }
        let mut mutation_lines = Vec::new();
        if !adds.is_empty() {
            let edges: Vec<String> = adds
                .iter()
                .map(|(u, v, w)| format!("[{u},{v},{w}]"))
                .collect();
            mutation_lines.push(format!(
                "{{\"op\":\"add_edges\",\"edges\":[{}]}}",
                edges.join(",")
            ));
        }
        if !removes.is_empty() {
            let edges: Vec<String> = removes.iter().map(|(u, v)| format!("[{u},{v}]")).collect();
            mutation_lines.push(format!(
                "{{\"op\":\"remove_edges\",\"edges\":[{}]}}",
                edges.join(",")
            ));
        }
        let mut read_lines = Vec::with_capacity(spec.reads_per_round);
        for r in 0..spec.reads_per_round {
            match r % 3 {
                0 => {
                    let ids: Vec<String> = (0..8)
                        .map(|_| rng.next_below(u64::from(spec.vertices)).to_string())
                        .collect();
                    read_lines.push(format!(
                        "{{\"op\":\"membership\",\"vertices\":[{}]}}",
                        ids.join(",")
                    ));
                }
                1 => read_lines.push("{\"op\":\"mdl\"}".to_string()),
                _ => read_lines.push("{\"op\":\"block_stats\"}".to_string()),
            }
        }
        rounds.push(WorkRound {
            mutation_lines,
            read_lines,
        });
    }
    Workload { rounds }
}

/// FNV-1a over every request line: two equal fingerprints replay the
/// byte-identical request sequence.
pub fn fingerprint(workload: &Workload) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for round in &workload.rounds {
        for line in round.mutation_lines.iter().chain(&round.read_lines) {
            eat(line.as_bytes());
            eat(b"\n");
        }
    }
    h
}

/// Everything measured by one replay.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Spec name (`smoke` / `full`).
    pub mode: String,
    /// Workload seed.
    pub seed: u64,
    /// FNV-1a of the replayed request lines.
    pub workload_fingerprint: u64,
    /// Individual read requests issued.
    pub reads: usize,
    /// Read-latency percentiles, microseconds.
    pub read_p50_us: f64,
    /// 99th percentile read latency, microseconds.
    pub read_p99_us: f64,
    /// Individual mutations (edges) enqueued.
    pub mutations: usize,
    /// Mutations per second of batch round-trip time.
    pub mutations_per_s: f64,
    /// Per-round `flush` barrier times (refinement convergence lag), ms.
    pub flush_ms: Vec<f64>,
    /// Reads answered from a snapshot older than the round's post-flush
    /// epoch — i.e. served *while* refinement of the round's mutations was
    /// still running.
    pub mid_refinement_reads: usize,
    /// Daemon-side counters scraped from the final `status`.
    pub cancellations: u64,
    /// Drift events repaired across all refinement rounds.
    pub drift_repairs: u64,
    /// Refinement rounds that failed server-side.
    pub refine_errors: u64,
    /// Final published epoch.
    pub final_epoch: u64,
    /// Final block count.
    pub final_num_blocks: u64,
    /// Crash-recovery leg (in-process mode only; `None` with `--connect`,
    /// where killing the external daemon is not the harness's call).
    pub recovery: Option<RecoveryReport>,
}

/// What the kill → warm-restart leg measured.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Wall time of the warm restart: snapshot load plus WAL tail replay,
    /// until the daemon is serving again.
    pub recovery_ms: f64,
    /// WAL records re-refined during the restart.
    pub replayed_batches: u64,
    /// Epoch carried by the persisted snapshot the restart loaded.
    pub recovered_epoch: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

impl ServeReport {
    /// Serialise to pretty-printed JSON (hand-rolled; the build is
    /// dependency-free by policy).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema_version\": {BENCH_SERVE_SCHEMA_VERSION},\n"
        ));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"workload_fingerprint\": \"{:016x}\",\n",
            self.workload_fingerprint
        ));
        s.push_str(&format!("  \"reads\": {},\n", self.reads));
        s.push_str(&format!(
            "  \"read_p50_us\": {},\n",
            json_num(self.read_p50_us)
        ));
        s.push_str(&format!(
            "  \"read_p99_us\": {},\n",
            json_num(self.read_p99_us)
        ));
        s.push_str(&format!("  \"mutations\": {},\n", self.mutations));
        s.push_str(&format!(
            "  \"mutations_per_s\": {},\n",
            json_num(self.mutations_per_s)
        ));
        let flushes: Vec<String> = self.flush_ms.iter().map(|&f| json_num(f)).collect();
        s.push_str(&format!("  \"flush_ms\": [{}],\n", flushes.join(", ")));
        s.push_str(&format!(
            "  \"mid_refinement_reads\": {},\n",
            self.mid_refinement_reads
        ));
        s.push_str(&format!("  \"cancellations\": {},\n", self.cancellations));
        s.push_str(&format!("  \"drift_repairs\": {},\n", self.drift_repairs));
        s.push_str(&format!("  \"refine_errors\": {},\n", self.refine_errors));
        s.push_str(&format!("  \"final_epoch\": {},\n", self.final_epoch));
        s.push_str(&format!(
            "  \"final_num_blocks\": {},\n",
            self.final_num_blocks
        ));
        match &self.recovery {
            None => s.push_str("  \"recovery\": null\n"),
            Some(r) => {
                s.push_str("  \"recovery\": {\n");
                s.push_str(&format!(
                    "    \"recovery_ms\": {},\n",
                    json_num(r.recovery_ms)
                ));
                s.push_str(&format!(
                    "    \"replayed_batches\": {},\n",
                    r.replayed_batches
                ));
                s.push_str(&format!("    \"recovered_epoch\": {}\n", r.recovered_epoch));
                s.push_str("  }\n");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// A line-oriented protocol client over one TCP connection.
pub struct ServeClient {
    stream: TcpStream,
    acc: Vec<u8>,
    addr: String,
}

impl ServeClient {
    /// Connect and verify the protocol version handshake.
    pub fn connect(addr: &str) -> Result<Self, HsbpError> {
        let net = |message: String| HsbpError::Network {
            addr: addr.to_string(),
            message,
        };
        let stream = TcpStream::connect(addr).map_err(|e| net(format!("connect failed: {e}")))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .map_err(|e| net(format!("set_read_timeout failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| net(format!("set_nodelay failed: {e}")))?;
        let mut client = Self {
            stream,
            acc: Vec::new(),
            addr: addr.to_string(),
        };
        let hello = client.request("{\"op\":\"version\"}")?;
        let proto = hello.get("protocol").and_then(Json::as_u64).unwrap_or(0);
        if proto != u64::from(PROTOCOL_VERSION) {
            return Err(HsbpError::Network {
                addr: addr.to_string(),
                message: format!(
                    "protocol mismatch: daemon speaks {proto}, harness speaks {PROTOCOL_VERSION}"
                ),
            });
        }
        Ok(client)
    }

    fn net_err(&self, message: String) -> HsbpError {
        HsbpError::Network {
            addr: self.addr.clone(),
            message,
        }
    }

    /// Send one request line, read one response line.
    pub fn request(&mut self, line: &str) -> Result<Json, HsbpError> {
        let mut out = line.as_bytes().to_vec();
        out.push(b'\n');
        self.stream
            .write_all(&out)
            .map_err(|e| self.net_err(format!("write failed: {e}")))?;
        let mut buf = [0u8; 4096];
        loop {
            if let Some(eol) = self.acc.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.acc.drain(..=eol).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                let parsed = parse(&text)
                    .map_err(|e| self.net_err(format!("bad response JSON: {e} in {text:?}")))?;
                if parsed.get("ok").and_then(Json::as_bool) != Some(true) {
                    // Protocol v2 errors are objects ({kind, message});
                    // tolerate the v1 plain-string shape too.
                    let msg = match parsed.get("error") {
                        Some(Json::Str(s)) => s.clone(),
                        Some(err) => {
                            let kind = err.get("kind").and_then(Json::as_str).unwrap_or("error");
                            let message = err
                                .get("message")
                                .and_then(Json::as_str)
                                .unwrap_or("request refused");
                            format!("{kind}: {message}")
                        }
                        None => "request refused".to_string(),
                    };
                    return Err(self.net_err(format!("daemon error: {msg}")));
                }
                return Ok(parsed);
            }
            let n = self
                .stream
                .read(&mut buf)
                .map_err(|e| self.net_err(format!("read failed: {e}")))?;
            if n == 0 {
                return Err(self.net_err("connection closed mid-response".into()));
            }
            self.acc.extend_from_slice(&buf[..n]);
        }
    }

    /// Send `{"op":"quit"}` (orderly daemon shutdown).
    pub fn quit(&mut self) -> Result<(), HsbpError> {
        self.request("{\"op\":\"quit\"}").map(|_| ())
    }
}

/// Replay `workload` against the daemon at `addr` and measure.
pub fn run_workload(
    addr: &str,
    spec: &ServeSpec,
    seed: u64,
    workload: &Workload,
) -> Result<ServeReport, HsbpError> {
    let mut client = ServeClient::connect(addr)?;
    // Pre-seed the whole vertex universe and wait for it to publish, so
    // every membership read in the workload resolves regardless of how the
    // edge mutations land.
    client.request(&format!(
        "{{\"op\":\"add_vertices\",\"count\":{}}}",
        spec.vertices
    ))?;
    client.request("{\"op\":\"flush\"}")?;
    let mut read_latencies_us: Vec<f64> = Vec::new();
    let mut mutation_time = Duration::ZERO;
    let mut mutations = 0usize;
    let mut flush_ms = Vec::with_capacity(workload.rounds.len());
    let mut mid_refinement_reads = 0usize;

    for round in &workload.rounds {
        let batch_started = Instant::now();
        for line in &round.mutation_lines {
            let resp = client.request(line)?;
            mutations += resp.get("queued").and_then(Json::as_u64).unwrap_or(0) as usize;
        }
        mutation_time += batch_started.elapsed();

        // Reads race the refinement the batch just triggered; each records
        // the epoch it was answered from.
        let mut epochs: Vec<u64> = Vec::with_capacity(round.read_lines.len());
        for line in &round.read_lines {
            let started = Instant::now();
            let resp = client.request(line)?;
            read_latencies_us.push(started.elapsed().as_secs_f64() * 1e6);
            epochs.push(resp.get("epoch").and_then(Json::as_u64).unwrap_or(0));
        }

        let flush_started = Instant::now();
        let flushed = client.request("{\"op\":\"flush\"}")?;
        flush_ms.push(flush_started.elapsed().as_secs_f64() * 1e3);
        let settled_epoch = flushed.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        // A read that saw an older epoch was served while this round's
        // refinement was still in flight.
        mid_refinement_reads += epochs.iter().filter(|&&e| e < settled_epoch).count();
    }

    let status = client.request("{\"op\":\"status\"}")?;
    let field = |name: &str| status.get(name).and_then(Json::as_u64).unwrap_or(0);
    read_latencies_us.sort_by(|a, b| a.total_cmp(b));
    let secs = mutation_time.as_secs_f64();
    Ok(ServeReport {
        mode: spec.name.to_string(),
        seed,
        workload_fingerprint: fingerprint(workload),
        reads: read_latencies_us.len(),
        read_p50_us: percentile(&read_latencies_us, 0.50),
        read_p99_us: percentile(&read_latencies_us, 0.99),
        mutations,
        mutations_per_s: if secs > 0.0 {
            mutations as f64 / secs
        } else {
            0.0
        },
        flush_ms,
        mid_refinement_reads,
        cancellations: field("cancellations"),
        drift_repairs: field("drift_repairs"),
        refine_errors: field("refine_errors"),
        final_epoch: field("epoch"),
        final_num_blocks: field("num_blocks"),
        recovery: None,
    })
}

/// The crash-recovery leg: spawn a durable daemon on `state_dir`, feed it
/// every mutation batch of `workload` (flushed, so all are applied), kill
/// it without the clean-shutdown snapshot — a `SIGKILL` stand-in — and
/// time the warm restart from the same directory.
pub fn run_recovery_leg(
    spec: &ServeSpec,
    seed: u64,
    workload: &Workload,
    state_dir: &Path,
) -> Result<RecoveryReport, HsbpError> {
    let config = || ServeConfig {
        addr: "127.0.0.1:0".into(),
        sbp: SbpConfig::new(Variant::Metropolis, seed),
        budget: RunBudget::unlimited(),
        state_dir: Some(state_dir.to_path_buf()),
        // Snapshot only at clean shutdown: the kill leaves the whole WAL
        // as the recovery source, so replayed_batches is deterministic.
        snapshot_every: 0,
        ..ServeConfig::default()
    };
    let handle = Server::spawn(config(), Graph::from_edges(0, &[]))?;
    {
        let addr = handle.local_addr().to_string();
        let mut client = ServeClient::connect(&addr)?;
        client.request(&format!(
            "{{\"op\":\"add_vertices\",\"count\":{}}}",
            spec.vertices
        ))?;
        for round in &workload.rounds {
            for line in &round.mutation_lines {
                client.request(line)?;
            }
            client.request("{\"op\":\"flush\"}")?;
        }
    }
    handle.kill();

    let started = Instant::now();
    let handle = Server::spawn(config(), Graph::from_edges(0, &[]))?;
    let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
    let addr = handle.local_addr().to_string();
    let mut client = ServeClient::connect(&addr)?;
    let status = client.request("{\"op\":\"status\"}")?;
    let report = RecoveryReport {
        recovery_ms,
        replayed_batches: status
            .get("replayed_batches")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        recovered_epoch: status
            .get("recovered_epoch")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    };
    drop(client);
    handle.shutdown();
    handle.join();
    Ok(report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = generate_workload(&SMOKE, 42);
        let b = generate_workload(&SMOKE, 42);
        assert_eq!(a, b);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = generate_workload(&SMOKE, 43);
        assert_ne!(fingerprint(&a), fingerprint(&c), "seed changes the stream");
    }

    #[test]
    fn workload_lines_are_valid_protocol() {
        let w = generate_workload(&SMOKE, 7);
        assert_eq!(w.rounds.len(), SMOKE.rounds);
        for round in &w.rounds {
            assert!(!round.mutation_lines.is_empty());
            assert_eq!(round.read_lines.len(), SMOKE.reads_per_round);
            for line in round.mutation_lines.iter().chain(&round.read_lines) {
                let parsed = parse(line).unwrap();
                hsbp_serve::Request::parse(&parsed).unwrap();
            }
        }
    }

    #[test]
    fn report_serialises_with_schema_version() {
        let report = ServeReport {
            mode: "smoke".into(),
            seed: 1,
            workload_fingerprint: 0xdead_beef,
            reads: 10,
            read_p50_us: 12.5,
            read_p99_us: 88.0,
            mutations: 100,
            mutations_per_s: 5_000.0,
            flush_ms: vec![1.5, 2.0],
            mid_refinement_reads: 3,
            cancellations: 1,
            drift_repairs: 0,
            refine_errors: 0,
            final_epoch: 6,
            final_num_blocks: 4,
            recovery: None,
        };
        let parsed = parse(&report.to_json()).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_u64),
            Some(u64::from(BENCH_SERVE_SCHEMA_VERSION))
        );
        assert_eq!(parsed.get("read_p50_us").and_then(Json::as_f64), Some(12.5));
        assert_eq!(
            parsed.get("workload_fingerprint").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        // --connect mode (no recovery leg): explicit null, so consumers can
        // tell "not measured" from "missing field".
        assert!(matches!(parsed.get("recovery"), Some(Json::Null)));
    }

    #[test]
    fn recovery_leg_serialises_under_schema_v2() {
        let mut report = ServeReport {
            mode: "smoke".into(),
            seed: 1,
            workload_fingerprint: 1,
            reads: 1,
            read_p50_us: 1.0,
            read_p99_us: 2.0,
            mutations: 1,
            mutations_per_s: 1.0,
            flush_ms: vec![],
            mid_refinement_reads: 0,
            cancellations: 0,
            drift_repairs: 0,
            refine_errors: 0,
            final_epoch: 1,
            final_num_blocks: 1,
            recovery: None,
        };
        report.recovery = Some(RecoveryReport {
            recovery_ms: 17.25,
            replayed_batches: 9,
            recovered_epoch: 0,
        });
        let parsed = parse(&report.to_json()).unwrap();
        let rec = parsed.get("recovery").expect("recovery object");
        assert_eq!(rec.get("recovery_ms").and_then(Json::as_f64), Some(17.25));
        assert_eq!(rec.get("replayed_batches").and_then(Json::as_u64), Some(9));
        assert_eq!(rec.get("recovered_epoch").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn percentiles_handle_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }
}
