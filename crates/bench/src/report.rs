//! Aligned text tables and CSV output for the `repro` binary.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with right-aligned numeric-looking cells.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Serialise as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print to stdout under a title and also write `<out_dir>/<name>.csv`.
    pub fn emit(&self, title: &str, out_dir: &Path, name: &str) {
        println!("\n== {title} ==\n{}", self.render());
        if let Err(e) = std::fs::create_dir_all(out_dir) {
            eprintln!("warning: cannot create {}: {e}", out_dir.display());
            return;
        }
        let path: PathBuf = out_dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, self.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("(written to {})", path.display());
        }
    }
}

/// Format a float with sensible digits for tables.
pub fn fmt(x: f64, digits: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.digits$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["id", "value"]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["long-id".into(), "10".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[2].contains("a"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_handles_nan() {
        assert_eq!(fmt(f64::NAN, 3), "-");
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
