//! Shared experiment runner: generate the catalog graphs, run the SBP
//! variants with the paper's 5-restart best-MDL protocol, and collect every
//! measurement the figures need — so each figure/table function just slices
//! one result set instead of re-running the suite.

use hsbp_core::{run_sbp, RunStats, SbpConfig, Variant};
use hsbp_generator::{catalog::SyntheticSpec, generate, GeneratedGraph};
use hsbp_graph::stats::within_between_ratio;
use hsbp_metrics::{directed_modularity, nmi, normalized_mdl};
use hsbp_timing::Phase;

/// Global experiment knobs (set from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Linear scale applied to every catalog graph (1.0 = paper sizes).
    pub scale: f64,
    /// Restarts per (graph, variant); the best-MDL run is reported
    /// (paper §4.2 uses 5).
    pub restarts: usize,
    /// Base seed for the restart sequence.
    pub seed: u64,
    /// Print progress lines to stderr.
    pub verbose: bool,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        // 1/128 of the paper's graph sizes finishes the full `repro all`
        // pipeline in well under an hour on one core; pass `--scale` and
        // `--restarts 5` for a closer match to the paper's protocol.
        Self {
            scale: 1.0 / 128.0,
            restarts: 2,
            seed: 1,
            verbose: true,
        }
    }
}

/// Measurements from the best-of-restarts run of one variant on one graph.
#[derive(Debug, Clone)]
pub struct VariantRun {
    /// Which algorithm.
    pub variant: Variant,
    /// NMI against the planted truth (NaN when truth is not meaningful).
    pub nmi: f64,
    /// Normalized MDL of the returned partition.
    pub mdl_norm: f64,
    /// Directed modularity of the returned partition.
    pub modularity: f64,
    /// Communities found.
    pub num_blocks: usize,
    /// Total MCMC sweeps ("MCMC iterations", Fig. 8).
    pub mcmc_sweeps: usize,
    /// Simulated MCMC-phase time at 1 and 128 virtual threads.
    pub sim_mcmc_1: f64,
    /// See [`Self::sim_mcmc_1`].
    pub sim_mcmc_128: f64,
    /// Simulated total (MCMC + merge) time at 128 virtual threads.
    pub sim_total_128: f64,
    /// Wall-clock fraction spent in the MCMC phase.
    pub mcmc_wall_fraction: f64,
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
    /// Full run statistics of the best run (kept for Fig. 7-style curves).
    pub stats: RunStats,
}

/// All measurements for one synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticRun {
    /// Catalog id ("S2", …).
    pub id: String,
    /// Generated vertex count.
    pub vertices: usize,
    /// Generated edge count.
    pub edges: usize,
    /// Realised within/between edge ratio of the planted truth.
    pub realised_ratio: f64,
    /// One entry per variant, in `[SBP, H-SBP, A-SBP]` order (paper plots).
    pub runs: Vec<VariantRun>,
}

/// All measurements for one real-world surrogate (SBP + H-SBP only,
/// matching the paper's real-world protocol).
#[derive(Debug, Clone)]
pub struct RealRun {
    /// Dataset name.
    pub id: String,
    /// Paper's true sizes.
    pub paper_vertices: usize,
    /// See [`Self::paper_vertices`].
    pub paper_edges: usize,
    /// Surrogate sizes actually used.
    pub vertices: usize,
    /// See [`Self::vertices`].
    pub edges: usize,
    /// `[SBP, H-SBP]`.
    pub runs: Vec<VariantRun>,
}

fn best_of_restarts(
    data: &GeneratedGraph,
    variant: Variant,
    ctx: &ExperimentContext,
    truth: Option<&[u32]>,
) -> VariantRun {
    let mut best: Option<(f64, hsbp_core::SbpResult, f64)> = None;
    for restart in 0..ctx.restarts.max(1) {
        let cfg = SbpConfig::new(variant, ctx.seed.wrapping_add(restart as u64 * 7919));
        let start = std::time::Instant::now();
        let result = run_sbp(&data.graph, &cfg);
        let wall = start.elapsed().as_secs_f64();
        if best
            .as_ref()
            .is_none_or(|(mdl, _, _)| result.mdl.total < *mdl)
        {
            best = Some((result.mdl.total, result, wall));
        }
    }
    let Some((_, result, wall)) = best else {
        panic!("restart loop ran zero times");
    };
    let nmi_score = truth.map_or(f64::NAN, |t| nmi(t, &result.assignment));
    VariantRun {
        variant,
        nmi: nmi_score,
        mdl_norm: result.normalized_mdl,
        modularity: directed_modularity(&data.graph, &result.assignment),
        num_blocks: result.num_blocks,
        mcmc_sweeps: result.stats.mcmc_sweeps,
        sim_mcmc_1: result.stats.sim_mcmc_time(1).unwrap_or(f64::NAN),
        sim_mcmc_128: result.stats.sim_mcmc_time(128).unwrap_or(f64::NAN),
        sim_total_128: result.stats.sim_total_time(128).unwrap_or(f64::NAN),
        mcmc_wall_fraction: result.stats.timer.fraction(Phase::Mcmc),
        wall_seconds: wall,
        stats: result.stats,
    }
}

/// Run `variants` on one catalog spec, returning per-variant measurements.
pub fn run_spec(
    spec: &SyntheticSpec,
    variants: &[Variant],
    ctx: &ExperimentContext,
    use_truth: bool,
) -> (GeneratedGraph, Vec<VariantRun>) {
    let data = generate(spec.config(ctx.scale));
    let truth = use_truth.then_some(data.ground_truth.as_slice());
    let runs = variants
        .iter()
        .map(|&variant| {
            if ctx.verbose {
                eprintln!("  {} / {} …", spec.id, variant.name());
            }
            best_of_restarts(&data, variant, ctx, truth)
        })
        .collect();
    (data, runs)
}

/// The synthetic suite: the 18 reported Table 1 graphs × {SBP, H-SBP,
/// A-SBP} (Figs. 2, 3, 4a, 4b, 8a).
pub fn run_synthetic_suite(ctx: &ExperimentContext) -> Vec<SyntheticRun> {
    let variants = [Variant::Metropolis, Variant::Hybrid, Variant::AsyncGibbs];
    hsbp_generator::table1_reported()
        .iter()
        .map(|spec| {
            if ctx.verbose {
                eprintln!("synthetic {}", spec.id);
            }
            let (data, runs) = run_spec(spec, &variants, ctx, true);
            SyntheticRun {
                id: spec.id.to_string(),
                vertices: data.graph.num_vertices(),
                edges: data.graph.num_edges(),
                realised_ratio: within_between_ratio(&data.graph, &data.ground_truth),
                runs,
            }
        })
        .collect()
}

/// The real-world suite: the 14 Table 2 surrogates × {SBP, H-SBP}
/// (Figs. 5a, 5b, 6, 8b).
pub fn run_realworld_suite(ctx: &ExperimentContext) -> Vec<RealRun> {
    let variants = [Variant::Metropolis, Variant::Hybrid];
    hsbp_generator::table2()
        .iter()
        .map(|spec| {
            if ctx.verbose {
                eprintln!("real-world {}", spec.id);
            }
            let (data, runs) = run_spec(spec, &variants, ctx, false);
            RealRun {
                id: spec.id.to_string(),
                paper_vertices: spec.paper_vertices,
                paper_edges: spec.paper_edges,
                vertices: data.graph.num_vertices(),
                edges: data.graph.num_edges(),
                runs,
            }
        })
        .collect()
}

/// Quality metrics of a run on a graph without ground truth.
pub fn quality_without_truth(graph: &hsbp_graph::Graph, assignment: &[u32]) -> (f64, f64) {
    (
        normalized_mdl(graph, assignment),
        directed_modularity(graph, assignment),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext {
            scale: 0.002,
            restarts: 1,
            seed: 3,
            verbose: false,
        }
    }

    #[test]
    fn run_spec_produces_all_variants() {
        let spec = &hsbp_generator::table1_reported()[0];
        let (_, runs) = run_spec(
            spec,
            &[Variant::Metropolis, Variant::Hybrid, Variant::AsyncGibbs],
            &tiny_ctx(),
            true,
        );
        assert_eq!(runs.len(), 3);
        for run in &runs {
            assert!(run.nmi.is_finite());
            assert!(run.mdl_norm.is_finite());
            assert!(run.mcmc_sweeps > 0);
            assert!(run.sim_mcmc_1 > 0.0);
        }
    }

    #[test]
    fn best_of_restarts_improves_or_ties_single_run() {
        let spec = &hsbp_generator::table1_reported()[0];
        let data = generate(spec.config(0.002));
        let one = best_of_restarts(
            &data,
            Variant::Metropolis,
            &ExperimentContext {
                restarts: 1,
                ..tiny_ctx()
            },
            Some(&data.ground_truth),
        );
        let three = best_of_restarts(
            &data,
            Variant::Metropolis,
            &ExperimentContext {
                restarts: 3,
                ..tiny_ctx()
            },
            Some(&data.ground_truth),
        );
        // Restart 0 of both sequences shares a seed, so more restarts can
        // only lower (or tie) the best MDL ⇒ mdl_norm.
        assert!(three.mdl_norm <= one.mdl_norm + 1e-12);
    }

    #[test]
    fn realworld_runs_skip_truth() {
        let spec = hsbp_generator::table2_by_id("rajat01").unwrap();
        let (_, runs) = run_spec(&spec, &[Variant::Hybrid], &tiny_ctx(), false);
        assert!(runs[0].nmi.is_nan());
        assert!(runs[0].mdl_norm.is_finite());
    }
}
