//! Benchmark: the sharded divide-and-conquer pipeline at 1/2/4/8 shards
//! vs. the single-model driver on the same DCSBM graph — the wall-clock
//! cost of partition → per-shard SBP → golden-section stitch. (The *emulated*
//! distributed speedup comes from the simulated cost model and is reported
//! by `hsbp shard` / the `distributed_emulation` example; this measures the
//! real host cost of the whole pipeline.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsbp_core::{run_sbp, SbpConfig};
use hsbp_generator::{generate, DcsbmConfig};
use hsbp_shard::{run_sharded_sbp, ShardConfig};

fn bench(c: &mut Criterion) {
    let data = generate(DcsbmConfig {
        num_vertices: 1000,
        num_communities: 8,
        target_num_edges: 8000,
        seed: 7,
        ..Default::default()
    });

    let mut group = c.benchmark_group("shard");
    group.sample_size(10);

    group.bench_function("single_model", |b| {
        let cfg = SbpConfig {
            seed: 3,
            ..Default::default()
        };
        b.iter(|| black_box(run_sbp(&data.graph, &cfg)))
    });

    for shards in [1usize, 2, 4, 8] {
        let cfg = ShardConfig {
            num_shards: shards,
            sbp: SbpConfig {
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("sharded", shards), &cfg, |b, cfg| {
            b.iter(|| black_box(run_sharded_sbp(&data.graph, cfg).expect("valid config")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
