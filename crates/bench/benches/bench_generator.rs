//! Benchmark: DCSBM graph generation throughput (replaces graph-tool's
//! sampler; Table 1/2 pipelines regenerate graphs on every invocation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsbp_generator::{generate, DcsbmConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    for edges in [10_000usize, 100_000] {
        let cfg = DcsbmConfig {
            num_vertices: edges / 10,
            num_communities: 16,
            target_num_edges: edges,
            seed: 9,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("dcsbm", edges), &cfg, |b, cfg| {
            b.iter(|| black_box(generate(cfg.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
