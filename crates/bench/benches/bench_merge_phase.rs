//! Benchmark: one agglomerative merge phase (Algorithm 1), halving the
//! block count of a mid-size model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsbp_blockmodel::Blockmodel;
use hsbp_core::{merge_phase, RunStats, SbpConfig};
use hsbp_generator::{generate, DcsbmConfig};

fn bench(c: &mut Criterion) {
    let data = generate(DcsbmConfig {
        num_vertices: 1500,
        num_communities: 12,
        target_num_edges: 15_000,
        seed: 5,
        ..Default::default()
    });
    let cfg = SbpConfig::default();
    c.bench_function("merge_phase/halve_from_128_blocks", |b| {
        let assignment: Vec<u32> = (0..data.graph.num_vertices() as u32)
            .map(|v| v % 128)
            .collect();
        b.iter(|| {
            let mut bm = Blockmodel::from_assignment(&data.graph, assignment.clone(), 128);
            let mut stats = RunStats::new(&cfg);
            black_box(merge_phase(&data.graph, &mut bm, 64, &cfg, 0, &mut stats))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
