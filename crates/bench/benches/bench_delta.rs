//! Microbenchmark: O(degree) delta-MDL evaluation for vertex moves and
//! block merges — the inner loop of every MCMC sweep and of the merge phase.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsbp_blockmodel::{delta_mdl_merge, evaluate_move, Blockmodel, NeighborCounts};
use hsbp_generator::{generate, DcsbmConfig};

fn bench(c: &mut Criterion) {
    let data = generate(DcsbmConfig {
        num_vertices: 2000,
        num_communities: 16,
        target_num_edges: 20_000,
        seed: 2,
        ..Default::default()
    });
    let bm = Blockmodel::from_assignment(&data.graph, data.ground_truth.clone(), 16);

    c.bench_function("delta/vertex_move_eval", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % data.graph.num_vertices() as u32;
            let from = bm.block_of(v);
            let to = (from + 1) % 16;
            let counts = NeighborCounts::gather(&data.graph, &bm, v);
            black_box(evaluate_move(&bm, from, to, &counts))
        })
    });

    c.bench_function("delta/block_merge_eval", |b| {
        let mut r = 0u32;
        b.iter(|| {
            r = (r + 1) % 16;
            let s = (r + 1) % 16;
            black_box(delta_mdl_merge(&bm, r, s))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
