//! Microbenchmark: blockmodel reconstruction from an assignment — the
//! end-of-sweep step that A-SBP adds relative to serial SBP, and the reason
//! the cost model charges `rebuild_per_edge · E` per sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsbp_blockmodel::Blockmodel;
use hsbp_generator::{generate, DcsbmConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild");
    for (vertices, edges) in [(1000usize, 10_000usize), (4000, 40_000)] {
        let data = generate(DcsbmConfig {
            num_vertices: vertices,
            num_communities: 16,
            target_num_edges: edges,
            seed: 4,
            ..Default::default()
        });
        let mut bm = Blockmodel::from_assignment(&data.graph, data.ground_truth.clone(), 16);
        group.bench_with_input(BenchmarkId::new("dense", edges), &data, |b, data| {
            b.iter(|| {
                bm.rebuild_dense(&data.graph, data.ground_truth.clone());
                black_box(bm.num_blocks())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("sparse_partials", edges),
            &data,
            |b, data| {
                b.iter(|| {
                    bm.rebuild_sparse(&data.graph, data.ground_truth.clone());
                    black_box(bm.num_blocks())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
