//! Microbenchmark: full MDL (Eq. 2) evaluation cost at several block counts.
//! Supports Fig. 2's claim that per-sweep MDL evaluation is cheap relative
//! to the sweep itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsbp_blockmodel::{mdl, Blockmodel};
use hsbp_generator::{generate, DcsbmConfig};

fn bench(c: &mut Criterion) {
    let data = generate(DcsbmConfig {
        num_vertices: 2000,
        num_communities: 16,
        target_num_edges: 20_000,
        seed: 1,
        ..Default::default()
    });
    let mut group = c.benchmark_group("mdl");
    for blocks in [4usize, 64, 512] {
        let assignment: Vec<u32> = (0..data.graph.num_vertices() as u32)
            .map(|v| v % blocks as u32)
            .collect();
        let bm = Blockmodel::from_assignment(&data.graph, assignment, blocks);
        group.bench_with_input(BenchmarkId::new("full_mdl", blocks), &bm, |b, bm| {
            b.iter(|| {
                black_box(mdl::mdl(
                    bm,
                    data.graph.num_vertices(),
                    data.graph.total_weight(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
