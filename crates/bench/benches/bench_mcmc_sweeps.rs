//! Benchmark: one MCMC sweep of each variant on the same graph and start
//! state — the wall-clock analogue of the paper's per-sweep cost comparison
//! (on a multi-core host A-SBP/H-SBP sweeps parallelise via rayon).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hsbp_blockmodel::Blockmodel;
use hsbp_core::{run_mcmc_phase, RunStats, SbpConfig, Variant};
use hsbp_generator::{generate, DcsbmConfig};

fn bench(c: &mut Criterion) {
    let data = generate(DcsbmConfig {
        num_vertices: 1500,
        num_communities: 12,
        target_num_edges: 15_000,
        seed: 6,
        ..Default::default()
    });
    let mut group = c.benchmark_group("mcmc_sweep");
    for variant in [Variant::Metropolis, Variant::AsyncGibbs, Variant::Hybrid] {
        let cfg = SbpConfig {
            variant,
            max_sweeps: 1,
            mcmc_threshold: 0.0,
            seed: 7,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("one_sweep", variant.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut bm =
                        Blockmodel::from_assignment(&data.graph, data.ground_truth.clone(), 12);
                    let mut stats = RunStats::new(cfg);
                    black_box(run_mcmc_phase(&data.graph, &mut bm, cfg, 0, &mut stats))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
