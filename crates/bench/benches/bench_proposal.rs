//! Microbenchmark: the MH proposal distribution (random incident edge +
//! block-neighbour multinomial) and the acceptance test.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsbp_blockmodel::{propose::accept_move, propose_block, Blockmodel, MoveEval};
use hsbp_collections::SplitMix64;
use hsbp_generator::{generate, DcsbmConfig};

fn bench(c: &mut Criterion) {
    let data = generate(DcsbmConfig {
        num_vertices: 2000,
        num_communities: 16,
        target_num_edges: 20_000,
        seed: 3,
        ..Default::default()
    });
    let bm = Blockmodel::from_assignment(&data.graph, data.ground_truth.clone(), 16);

    c.bench_function("proposal/propose_block", |b| {
        let mut rng = SplitMix64::new(9);
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % data.graph.num_vertices() as u32;
            black_box(propose_block(
                &data.graph,
                &bm,
                bm.assignment(),
                v,
                &mut rng,
            ))
        })
    });

    c.bench_function("proposal/accept_move", |b| {
        let mut rng = SplitMix64::new(11);
        let eval = MoveEval {
            delta_mdl: 0.3,
            hastings: 0.9,
        };
        b.iter(|| black_box(accept_move(&eval, 3.0, &mut rng)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
