//! Microbenchmark: the evaluation metrics (NMI, directed modularity,
//! normalized MDL) used by every experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsbp_generator::{generate, DcsbmConfig};
use hsbp_metrics::{directed_modularity, nmi, normalized_mdl};

fn bench(c: &mut Criterion) {
    let data = generate(DcsbmConfig {
        num_vertices: 5000,
        num_communities: 32,
        target_num_edges: 50_000,
        seed: 8,
        ..Default::default()
    });
    let shuffled: Vec<u32> = data.ground_truth.iter().map(|&b| (b + 1) % 32).collect();

    c.bench_function("metrics/nmi", |b| {
        b.iter(|| black_box(nmi(&data.ground_truth, &shuffled)))
    });
    c.bench_function("metrics/modularity", |b| {
        b.iter(|| black_box(directed_modularity(&data.graph, &data.ground_truth)))
    });
    c.bench_function("metrics/normalized_mdl", |b| {
        b.iter(|| black_box(normalized_mdl(&data.graph, &data.ground_truth)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
