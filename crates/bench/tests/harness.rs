//! Smoke tests for the experiment harness: every report function must run
//! end-to-end at miniature scale and leave a parseable CSV behind.

use hsbp_bench::experiments as exp;
use hsbp_bench::runner::{run_realworld_suite, run_synthetic_suite, ExperimentContext};

fn tiny_ctx() -> ExperimentContext {
    ExperimentContext {
        scale: 0.0008,
        restarts: 1,
        seed: 2,
        verbose: false,
    }
}

fn out_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hsbp-harness-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn csv_rows(path: &std::path::Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
        .lines()
        .map(|l| l.to_string())
        .collect()
}

#[test]
fn tables_emit_full_catalogs() {
    let ctx = tiny_ctx();
    let out = out_dir("tables");
    exp::table1_report(&ctx, &out);
    exp::table2_report(&ctx, &out);
    assert_eq!(csv_rows(&out.join("table1.csv")).len(), 25); // header + 24
    assert_eq!(csv_rows(&out.join("table2.csv")).len(), 15); // header + 14
}

#[test]
fn synthetic_figures_cover_reported_graphs() {
    let ctx = tiny_ctx();
    let out = out_dir("synth");
    let synth = run_synthetic_suite(&ctx);
    assert_eq!(synth.len(), 18);
    exp::fig2_report(&synth, &out);
    exp::fig3_report(&synth, &out);
    exp::fig4a_report(&synth, &out);
    exp::fig4b_report(&synth, &out);
    exp::fig8a_report(&synth, &out);
    assert_eq!(csv_rows(&out.join("fig4a.csv")).len(), 19); // header + 18
    assert_eq!(csv_rows(&out.join("fig4b.csv")).len(), 19);
    assert_eq!(csv_rows(&out.join("fig8a.csv")).len(), 19);
    // fig2 has a trailing mean row.
    assert_eq!(csv_rows(&out.join("fig2.csv")).len(), 20);
    // fig3 correlation table: header + 2 pairs.
    assert_eq!(csv_rows(&out.join("fig3.csv")).len(), 3);
    // Every variant column of fig4b parses as a positive float.
    for row in csv_rows(&out.join("fig4b.csv")).iter().skip(1) {
        for cell in row.split(',').skip(1) {
            if cell != "-" {
                let v: f64 = cell.parse().expect("numeric speedup cell");
                assert!(v > 0.0);
            }
        }
    }
}

#[test]
fn realworld_figures_cover_all_datasets() {
    let ctx = tiny_ctx();
    let out = out_dir("real");
    let real = run_realworld_suite(&ctx);
    assert_eq!(real.len(), 14);
    exp::fig5a_report(&real, &out);
    exp::fig5b_report(&real, &out);
    exp::fig6_report(&real, &out);
    exp::fig8b_report(&real, &out);
    for name in ["fig5a", "fig5b", "fig6", "fig8b"] {
        assert_eq!(
            csv_rows(&out.join(format!("{name}.csv"))).len(),
            15,
            "{name}"
        );
    }
}

#[test]
fn fig7_scaling_curve_is_monotone() {
    let ctx = tiny_ctx();
    let out = out_dir("fig7");
    exp::fig7_report(&ctx, &out);
    let rows = csv_rows(&out.join("fig7.csv"));
    assert_eq!(rows.len(), 9); // header + 8 thread counts
    let times: Vec<f64> = rows
        .iter()
        .skip(1)
        .map(|r| r.split(',').nth(1).unwrap().parse().unwrap())
        .collect();
    for pair in times.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-9,
            "scaling curve not monotone: {times:?}"
        );
    }
}
