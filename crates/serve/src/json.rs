//! Minimal JSON reader/writer for the wire protocol — the build environment
//! is offline (no serde), and the protocol only needs objects, arrays,
//! numbers, strings, and booleans. Object insertion order is preserved so
//! responses serialize deterministically.

use std::fmt::Write as _;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the protocol never needs more than f64 precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number in u64 range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization (the wire format: one value per
    /// line).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Build an object literal from key/value pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Integer convenience constructor.
pub fn num_u(x: u64) -> Json {
    Json::Num(x as f64)
}

fn write_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; the protocol reads null as "undefined"
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON value from `text`, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_request() {
        let line = r#"{"op":"add_edges","edges":[[0,1,2],[3,4,1]],"note":"a\"b"}"#;
        let parsed = parse(line).unwrap();
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("add_edges"));
        let edges = parsed.get("edges").and_then(Json::as_arr).unwrap();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].as_arr().unwrap()[2].as_u64(), Some(2));
        assert_eq!(parse(&parsed.to_line()).unwrap(), parsed);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn integers_serialize_without_exponent() {
        assert_eq!(num_u(1_000_000).to_line(), "1000000");
        assert_eq!(Json::Num(0.5).to_line(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_line(), "null");
    }
}
