//! Wire protocol: line-delimited JSON over TCP, one request object per
//! line, one response object per line.
//!
//! Every request carries an `"op"` field; every response carries `"ok"`.
//! Failures come back as
//! `{"ok":false,"error":{"kind":"...","message":"..."}}` on the same line —
//! the connection stays open, and `kind` is machine-dispatchable (see
//! [`ErrorKind`]). See DESIGN.md §12 for the full message catalogue and
//! README for worked examples.

use crate::json::{obj, Json};
use crate::state::Mutation;
use hsbp_blockmodel::Block;
use hsbp_graph::Vertex;

/// Version of the wire protocol itself. Bumped on any incompatible change
/// to request or response shapes; reported by the `version` handshake so
/// replay tooling can refuse mismatched daemons.
///
/// v2: errors became typed objects (`{"kind","message"}` instead of a bare
/// string) and `status` gained the durability/back-pressure fields.
pub const PROTOCOL_VERSION: u32 = 2;

/// Schema version of `BENCH_serve.json` (the load-test harness artifact).
///
/// v2: adds the crash-recovery leg (`recovery_ms`, `replayed_batches`,
/// `recovered_epoch`). Check tooling still accepts v1 reports.
pub const BENCH_SERVE_SCHEMA_VERSION: u32 = 2;

/// Machine-dispatchable failure category, the `error.kind` wire value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON.
    Parse,
    /// Valid JSON, but the `op` is not one the daemon knows.
    UnknownCommand,
    /// A known op with malformed or out-of-range arguments.
    BadRequest,
    /// The mutation backlog is at `--max-pending` (or the connection limit
    /// is reached): back off and retry. The connection stays usable.
    Busy,
    /// The daemon is shutting down; no further mutations are accepted.
    ShuttingDown,
}

impl ErrorKind {
    /// The stable wire string for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::UnknownCommand => "unknown_command",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Busy => "busy",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"op":"version"}` — handshake: crate + protocol + schema versions.
    Version,
    /// `add_edges` / `remove_edges` / `add_vertices` / `remove_vertex`:
    /// a batch of topology mutations, enqueued atomically under one
    /// sequence number.
    Mutate(Vec<Mutation>),
    /// `{"op":"membership","vertices":[...]}` — block of each vertex.
    Membership(Vec<Vertex>),
    /// `{"op":"block_stats"}` (all blocks) or `{"op":"block_stats","block":b}`.
    BlockStats(Option<Block>),
    /// `{"op":"mdl"}` — current description length.
    Mdl,
    /// `{"op":"status"}` — epochs, queue depth, counters.
    Status,
    /// `{"op":"flush"}` — block until every enqueued mutation is reflected
    /// in a published snapshot.
    Flush,
    /// `{"op":"quit"}` — orderly daemon shutdown.
    Quit,
}

impl Request {
    /// Parse one request line (already JSON-decoded). Errors carry the
    /// [`ErrorKind`] the response should be typed with: an unrecognised
    /// `op` is `unknown_command`, everything else malformed is
    /// `bad_request`.
    pub fn parse(req: &Json) -> Result<Request, (ErrorKind, String)> {
        Self::parse_fields(req).map_err(|e| match e {
            ParseFailure::UnknownOp(msg) => (ErrorKind::UnknownCommand, msg),
            ParseFailure::Bad(msg) => (ErrorKind::BadRequest, msg),
        })
    }

    fn parse_fields(req: &Json) -> Result<Request, ParseFailure> {
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\" field")?;
        match op {
            "version" => Ok(Request::Version),
            "add_edges" => Ok(Request::Mutate(parse_add_edges(req)?)),
            "remove_edges" => Ok(Request::Mutate(parse_remove_edges(req)?)),
            "add_vertices" => {
                let count = req
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("add_vertices needs a numeric \"count\"")?;
                if count == 0 || count > u32::MAX as u64 {
                    return Err("\"count\" must be in 1..=u32::MAX".into());
                }
                Ok(Request::Mutate(vec![Mutation::AddVertices {
                    count: count as usize,
                }]))
            }
            "remove_vertex" => {
                let vertex = parse_vertex(req.get("vertex"), "remove_vertex needs \"vertex\"")?;
                Ok(Request::Mutate(vec![Mutation::RemoveVertex { vertex }]))
            }
            "membership" => {
                let items = req
                    .get("vertices")
                    .and_then(Json::as_arr)
                    .ok_or("membership needs a \"vertices\" array")?;
                let vertices = items
                    .iter()
                    .map(|v| parse_vertex(Some(v), "vertex ids must be u32"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Membership(vertices))
            }
            "block_stats" => match req.get("block") {
                None => Ok(Request::BlockStats(None)),
                Some(b) => {
                    let id = b.as_u64().ok_or("\"block\" must be a block id")?;
                    if id > u32::MAX as u64 {
                        return Err("\"block\" out of range".into());
                    }
                    Ok(Request::BlockStats(Some(id as Block)))
                }
            },
            "mdl" => Ok(Request::Mdl),
            "status" => Ok(Request::Status),
            "flush" => Ok(Request::Flush),
            "quit" => Ok(Request::Quit),
            other => Err(ParseFailure::UnknownOp(format!("unknown op {other:?}"))),
        }
    }
}

/// Internal parse failure, split so [`Request::parse`] can type the
/// response: an unknown op is a different wire error than a malformed one.
enum ParseFailure {
    UnknownOp(String),
    Bad(String),
}

impl From<String> for ParseFailure {
    fn from(msg: String) -> Self {
        ParseFailure::Bad(msg)
    }
}

impl From<&str> for ParseFailure {
    fn from(msg: &str) -> Self {
        ParseFailure::Bad(msg.to_string())
    }
}

fn parse_vertex(value: Option<&Json>, context: &str) -> Result<Vertex, String> {
    let id = value
        .and_then(Json::as_u64)
        .ok_or_else(|| context.to_string())?;
    if id > u32::MAX as u64 {
        return Err(format!("vertex id {id} exceeds u32"));
    }
    Ok(id as Vertex)
}

fn parse_add_edges(req: &Json) -> Result<Vec<Mutation>, String> {
    let items = req
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or("add_edges needs an \"edges\" array of [from,to] or [from,to,weight]")?;
    items
        .iter()
        .map(|e| {
            let parts = e.as_arr().ok_or("each edge must be an array")?;
            if parts.len() != 2 && parts.len() != 3 {
                return Err("each edge must be [from,to] or [from,to,weight]".into());
            }
            let from = parse_vertex(parts.first(), "bad edge source")?;
            let to = parse_vertex(parts.get(1), "bad edge target")?;
            let weight = match parts.get(2) {
                None => 1,
                Some(w) => {
                    let w = w.as_u64().ok_or("edge weight must be a positive integer")?;
                    if w == 0 {
                        return Err("edge weight must be >= 1".into());
                    }
                    w
                }
            };
            Ok(Mutation::AddEdge { from, to, weight })
        })
        .collect()
}

fn parse_remove_edges(req: &Json) -> Result<Vec<Mutation>, String> {
    let items = req
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or("remove_edges needs an \"edges\" array of [from,to]")?;
    items
        .iter()
        .map(|e| {
            let parts = e.as_arr().ok_or("each edge must be an array")?;
            if parts.len() != 2 {
                return Err("each edge must be [from,to]".into());
            }
            let from = parse_vertex(parts.first(), "bad edge source")?;
            let to = parse_vertex(parts.get(1), "bad edge target")?;
            Ok(Mutation::RemoveEdge { from, to })
        })
        .collect()
}

/// `{"ok":false,"error":{"kind":...,"message":...}}` — the uniform typed
/// failure response.
pub fn error_response(kind: ErrorKind, msg: &str) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str(kind.as_str().into())),
                ("message", Json::Str(msg.into())),
            ]),
        ),
    ])
}

/// The `error.kind` of a response, if it is a typed failure.
pub fn error_kind_of(resp: &Json) -> Option<&str> {
    resp.get("error")?.get("kind")?.as_str()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn parses_every_op() {
        let cases = [
            (r#"{"op":"version"}"#, Request::Version),
            (r#"{"op":"mdl"}"#, Request::Mdl),
            (r#"{"op":"status"}"#, Request::Status),
            (r#"{"op":"flush"}"#, Request::Flush),
            (r#"{"op":"quit"}"#, Request::Quit),
            (r#"{"op":"block_stats"}"#, Request::BlockStats(None)),
            (
                r#"{"op":"block_stats","block":3}"#,
                Request::BlockStats(Some(3)),
            ),
            (
                r#"{"op":"membership","vertices":[0,5,2]}"#,
                Request::Membership(vec![0, 5, 2]),
            ),
            (
                r#"{"op":"add_edges","edges":[[0,1],[2,3,4]]}"#,
                Request::Mutate(vec![
                    Mutation::AddEdge {
                        from: 0,
                        to: 1,
                        weight: 1,
                    },
                    Mutation::AddEdge {
                        from: 2,
                        to: 3,
                        weight: 4,
                    },
                ]),
            ),
            (
                r#"{"op":"remove_edges","edges":[[7,8]]}"#,
                Request::Mutate(vec![Mutation::RemoveEdge { from: 7, to: 8 }]),
            ),
            (
                r#"{"op":"add_vertices","count":5}"#,
                Request::Mutate(vec![Mutation::AddVertices { count: 5 }]),
            ),
            (
                r#"{"op":"remove_vertex","vertex":9}"#,
                Request::Mutate(vec![Mutation::RemoveVertex { vertex: 9 }]),
            ),
        ];
        for (line, want) in cases {
            let got = Request::parse(&parse(line).unwrap()).unwrap();
            assert_eq!(got, want, "{line}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            r#"{"no_op":1}"#,
            r#"{"op":"add_edges"}"#,
            r#"{"op":"add_edges","edges":[[0]]}"#,
            r#"{"op":"add_edges","edges":[[0,1,0]]}"#,
            r#"{"op":"add_vertices","count":0}"#,
            r#"{"op":"membership"}"#,
            r#"{"op":"membership","vertices":[4294967296]}"#,
            r#"{"op":"remove_vertex"}"#,
        ] {
            match Request::parse(&parse(line).unwrap()) {
                Err((ErrorKind::BadRequest, _)) => {}
                other => panic!("{line} should be bad_request, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_op_is_its_own_kind() {
        match Request::parse(&parse(r#"{"op":"frobnicate"}"#).unwrap()) {
            Err((ErrorKind::UnknownCommand, msg)) => {
                assert!(msg.contains("frobnicate"), "{msg}");
            }
            other => panic!("expected unknown_command, got {other:?}"),
        }
    }

    #[test]
    fn error_responses_carry_kind_and_message() {
        for (kind, wire) in [
            (ErrorKind::Parse, "parse"),
            (ErrorKind::UnknownCommand, "unknown_command"),
            (ErrorKind::BadRequest, "bad_request"),
            (ErrorKind::Busy, "busy"),
            (ErrorKind::ShuttingDown, "shutting_down"),
        ] {
            let resp = error_response(kind, "details");
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(error_kind_of(&resp), Some(wire));
            assert_eq!(
                resp.get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str),
                Some("details")
            );
            assert_eq!(kind.as_str(), wire);
            // The line is valid JSON end to end.
            assert_eq!(parse(&resp.to_line()).unwrap(), resp);
        }
    }
}
