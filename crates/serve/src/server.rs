//! The daemon: a TCP accept loop, per-connection protocol threads, and the
//! background refinement driver.
//!
//! Threading model (see DESIGN.md §12):
//!
//! * **accept loop** — non-blocking `TcpListener`, polls the shutdown flag
//!   between accepts, spawns one thread per connection.
//! * **connection threads** — read one JSON request per line, answer from
//!   the latest [`Snapshot`] (reads never touch the refinement loop) or
//!   enqueue mutation batches into the [`MutationLog`].
//! * **refinement driver** — single consumer: drains the log, applies the
//!   batch to the [`EvolvingGraph`], rebuilds the CSR, and runs the
//!   warm-started dirty-region resweep under a fresh [`CancelToken`] armed
//!   in the log, so the *next* batch cancels it mid-sweep. Publishing a
//!   snapshot and marking the sequence applied are the only state writes.

use crate::json::{num_u, obj, Json};
use crate::mutlog::MutationLog;
use crate::protocol::{error_response, Request, BENCH_SERVE_SCHEMA_VERSION, PROTOCOL_VERSION};
use crate::state::{EvolvingGraph, Snapshot, StateHandle};
use hsbp_core::{refine_partition, CancelToken, HsbpError, RunBudget, SbpConfig, StopCause};
use hsbp_graph::{Graph, Vertex};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything the daemon's knobs: where to listen and how each refinement
/// round runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Refinement kernel configuration (seed, beta, audit cadence, strict
    /// mode, convergence threshold, per-round sweep cap).
    pub sbp: SbpConfig,
    /// Budget applied to every refinement round (and the initial full run).
    pub budget: RunBudget,
    /// Artificial delay between arming a refinement round and its first
    /// sweep, in milliseconds. Load-shaping hook: widens the window in
    /// which a new batch cancels the round; keep 0 in production.
    pub refine_pause_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            sbp: SbpConfig::default(),
            budget: RunBudget::unlimited(),
            refine_pause_ms: 0,
        }
    }
}

/// Shared daemon state, one `Arc` across every thread.
#[derive(Debug)]
pub(crate) struct ServeCtx {
    pub(crate) state: StateHandle,
    pub(crate) log: MutationLog,
    pub(crate) shutdown: AtomicBool,
    /// Refinement rounds that published a snapshot.
    pub(crate) refines: AtomicU64,
    /// Drift events repaired across all rounds (non-strict mode).
    pub(crate) drift_repairs: AtomicU64,
    /// Refinement rounds that failed (strict drift, invalid state).
    pub(crate) refine_errors: AtomicU64,
}

/// A running daemon. Dropping the handle does **not** stop the server —
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct Server {
    _private: (),
}

/// Join/control handle for a spawned server.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServeCtx>,
    accept_thread: JoinHandle<()>,
    driver_thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a `quit` request or [`ServerHandle::shutdown`] landed.
    pub fn is_shutting_down(&self) -> bool {
        self.ctx.shutdown.load(Ordering::Relaxed)
    }

    /// Request an orderly stop (idempotent): wakes the accept loop, cancels
    /// any in-flight refinement, releases every flush waiter.
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::Relaxed);
        self.ctx.log.close();
    }

    /// Wait for the accept loop and the refinement driver to exit.
    pub fn join(self) {
        let _ = self.accept_thread.join();
        let _ = self.driver_thread.join();
    }
}

impl Server {
    /// Bind, run the initial full detection on `initial` (empty graphs get
    /// a trivial epoch-0 snapshot), start the refinement driver and the
    /// accept loop, and return immediately.
    pub fn spawn(config: ServeConfig, initial: Graph) -> Result<ServerHandle, HsbpError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| HsbpError::Network {
            addr: config.addr.clone(),
            message: format!("bind failed: {e}"),
        })?;
        let addr = listener.local_addr().map_err(|e| HsbpError::Network {
            addr: config.addr.clone(),
            message: format!("local_addr failed: {e}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| HsbpError::Network {
                addr: addr.to_string(),
                message: format!("set_nonblocking failed: {e}"),
            })?;

        let egraph = EvolvingGraph::from_graph(&initial);
        let graph = Arc::new(initial);
        let snapshot = if graph.num_vertices() == 0 {
            Snapshot::evaluate(0, 0, Arc::clone(&graph), Vec::new(), 0, false)
        } else {
            let result = hsbp_core::run_sbp_budgeted(
                &graph,
                &config.sbp,
                &config.budget,
                &CancelToken::new(),
            )?;
            Snapshot::evaluate(
                0,
                0,
                Arc::clone(&graph),
                result.assignment,
                result.num_blocks,
                result.stats.stop_cause.is_truncated(),
            )
        };

        let ctx = Arc::new(ServeCtx {
            state: StateHandle::new(snapshot),
            log: MutationLog::new(),
            shutdown: AtomicBool::new(false),
            refines: AtomicU64::new(0),
            drift_repairs: AtomicU64::new(0),
            refine_errors: AtomicU64::new(0),
        });

        let driver_thread = {
            let ctx = Arc::clone(&ctx);
            let cfg = config.clone();
            std::thread::spawn(move || driver_loop(&ctx, egraph, &cfg))
        };
        let accept_thread = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || accept_loop(&listener, &ctx))
        };
        Ok(ServerHandle {
            addr,
            ctx,
            accept_thread,
            driver_thread,
        })
    }
}

/// The single-consumer refinement loop.
fn driver_loop(ctx: &ServeCtx, mut egraph: EvolvingGraph, cfg: &ServeConfig) {
    // Dirty vertices whose resweep a cancellation interrupted; folded into
    // the next round so truncated work is finished, not lost.
    let mut carry_dirty: Vec<Vertex> = Vec::new();
    while let Some((batch, seq)) = ctx.log.wait_drain() {
        let mut dirty = std::mem::take(&mut carry_dirty);
        for m in &batch {
            egraph.apply(m, &mut dirty);
        }
        dirty.sort_unstable();
        dirty.dedup();
        let graph = Arc::new(egraph.build_csr());
        let token = CancelToken::new();
        if !ctx.log.arm(&token) {
            // A newer batch raced in while we were rebuilding: restart the
            // round against the merged topology instead of refining twice.
            carry_dirty = dirty;
            continue;
        }
        if cfg.refine_pause_ms > 0 {
            // Armed but not yet sweeping: a batch landing in this window
            // cancels the round exactly like one landing mid-sweep.
            std::thread::sleep(Duration::from_millis(cfg.refine_pause_ms));
        }
        let warm = ctx.state.load();
        let outcome = refine_partition(
            &graph,
            &warm.assignment,
            warm.num_blocks.max(1),
            &dirty,
            &cfg.sbp,
            &cfg.budget,
            &token,
        );
        ctx.log.disarm();
        match outcome {
            Ok(out) => {
                ctx.refines.fetch_add(1, Ordering::Relaxed);
                ctx.drift_repairs
                    .fetch_add(out.stats.drift_events.len() as u64, Ordering::Relaxed);
                if out.truncated && out.stats.stop_cause == StopCause::Cancelled {
                    // The interrupted region re-sweeps with the next batch.
                    carry_dirty.clone_from(&dirty);
                }
                ctx.state.publish(Snapshot::evaluate(
                    warm.epoch + 1,
                    seq,
                    graph,
                    out.assignment,
                    out.num_blocks,
                    out.truncated,
                ));
                ctx.log.mark_applied(seq);
            }
            Err(_) => {
                // Strict-mode drift or an invalid warm state: keep serving
                // the last good snapshot, count the failure, and unblock
                // flush waiters (the mutations are in the topology; only
                // the partition refresh failed).
                ctx.refine_errors.fetch_add(1, Ordering::Relaxed);
                carry_dirty = dirty;
                ctx.log.mark_applied(seq);
            }
        }
    }
}

/// Non-blocking accept loop; exits when the shutdown flag is set.
fn accept_loop(listener: &TcpListener, ctx: &Arc<ServeCtx>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let ctx = Arc::clone(ctx);
                connections.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, &ctx);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        connections.retain(|h| !h.is_finished());
    }
    // Orderly drain: connection threads poll the flag via read timeouts.
    ctx.log.close();
    for h in connections {
        let _ = h.join();
    }
}

/// One connection: read request lines, write response lines.
fn serve_connection(stream: TcpStream, ctx: &ServeCtx) -> Result<(), HsbpError> {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    let net_err = |message: String| HsbpError::Network {
        addr: peer.clone(),
        message,
    };
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| net_err(format!("set_read_timeout failed: {e}")))?;
    let mut stream = stream;
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if ctx.shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) => return Err(net_err(format!("read failed: {e}"))),
        };
        acc.extend_from_slice(&buf[..n]);
        while let Some(eol) = acc.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = acc.drain(..=eol).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let (response, quit) = handle_line(text, ctx);
            let mut out = response.to_line();
            out.push('\n');
            stream
                .write_all(out.as_bytes())
                .map_err(|e| net_err(format!("write failed: {e}")))?;
            if quit {
                ctx.shutdown.store(true, Ordering::Relaxed);
                ctx.log.close();
                return Ok(());
            }
        }
    }
}

/// Decode, dispatch, encode. Returns the response and whether this request
/// shuts the daemon down.
pub(crate) fn handle_line(line: &str, ctx: &ServeCtx) -> (Json, bool) {
    let parsed = match crate::json::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_response(&format!("bad JSON: {e}")), false),
    };
    let request = match Request::parse(&parsed) {
        Ok(r) => r,
        Err(e) => return (error_response(&e), false),
    };
    match request {
        Request::Version => (
            obj(vec![
                ("ok", Json::Bool(true)),
                ("crate", Json::Str(env!("CARGO_PKG_VERSION").into())),
                ("protocol", num_u(u64::from(PROTOCOL_VERSION))),
                (
                    "bench_schema",
                    obj(vec![(
                        "serve",
                        num_u(u64::from(BENCH_SERVE_SCHEMA_VERSION)),
                    )]),
                ),
            ]),
            false,
        ),
        Request::Mutate(batch) => {
            let queued = batch.len();
            let seq = ctx.log.append(batch);
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("seq", num_u(seq)),
                    ("queued", num_u(queued as u64)),
                ]),
                false,
            )
        }
        Request::Membership(vertices) => {
            let snap = ctx.state.load();
            let mut blocks = Vec::with_capacity(vertices.len());
            for v in &vertices {
                match snap.assignment.get(*v as usize) {
                    Some(b) => blocks.push(num_u(u64::from(*b))),
                    None => {
                        return (
                            error_response(&format!(
                                "vertex {v} out of range (snapshot has {})",
                                snap.assignment.len()
                            )),
                            false,
                        )
                    }
                }
            }
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", num_u(snap.epoch)),
                    ("blocks", Json::Arr(blocks)),
                ]),
                false,
            )
        }
        Request::BlockStats(which) => {
            let snap = ctx.state.load();
            let stat_obj = |id: usize, s: &crate::state::BlockStats| {
                obj(vec![
                    ("block", num_u(id as u64)),
                    ("size", num_u(s.size as u64)),
                    ("d_out", num_u(s.d_out)),
                    ("d_in", num_u(s.d_in)),
                ])
            };
            let blocks = match which {
                Some(b) => match snap.blocks.get(b as usize) {
                    Some(s) => vec![stat_obj(b as usize, s)],
                    None => {
                        return (
                            error_response(&format!(
                                "block {b} out of range (snapshot has {})",
                                snap.blocks.len()
                            )),
                            false,
                        )
                    }
                },
                None => snap
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(i, s)| stat_obj(i, s))
                    .collect(),
            };
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", num_u(snap.epoch)),
                    ("num_blocks", num_u(snap.num_blocks as u64)),
                    ("blocks", Json::Arr(blocks)),
                ]),
                false,
            )
        }
        Request::Mdl => {
            let snap = ctx.state.load();
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", num_u(snap.epoch)),
                    ("mdl", Json::Num(snap.mdl)),
                    ("normalized_mdl", Json::Num(snap.normalized_mdl)),
                    ("num_blocks", num_u(snap.num_blocks as u64)),
                    ("truncated", Json::Bool(snap.truncated)),
                ]),
                false,
            )
        }
        Request::Status => {
            let snap = ctx.state.load();
            let (pending, enq, applied, cancels) = ctx.log.stats();
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", num_u(snap.epoch)),
                    ("num_vertices", num_u(snap.graph.num_vertices() as u64)),
                    ("num_edges", num_u(snap.graph.num_edges() as u64)),
                    ("num_blocks", num_u(snap.num_blocks as u64)),
                    ("pending_batches", num_u(pending as u64)),
                    ("seq_enqueued", num_u(enq)),
                    ("seq_applied", num_u(applied)),
                    ("cancellations", num_u(cancels)),
                    ("refines", num_u(ctx.refines.load(Ordering::Relaxed))),
                    (
                        "drift_repairs",
                        num_u(ctx.drift_repairs.load(Ordering::Relaxed)),
                    ),
                    (
                        "refine_errors",
                        num_u(ctx.refine_errors.load(Ordering::Relaxed)),
                    ),
                ]),
                false,
            )
        }
        Request::Flush => {
            let (_, enq, _, _) = ctx.log.stats();
            let reached = ctx.log.wait_applied(enq);
            let snap = ctx.state.load();
            (
                obj(vec![
                    ("ok", Json::Bool(reached)),
                    ("epoch", num_u(snap.epoch)),
                    ("seq_applied", num_u(snap.applied_seq)),
                ]),
                false,
            )
        }
        Request::Quit => (obj(vec![("ok", Json::Bool(true))]), true),
    }
}
