//! The daemon: a TCP accept loop, per-connection protocol threads, and the
//! background refinement driver.
//!
//! Threading model (see DESIGN.md §12):
//!
//! * **accept loop** — non-blocking `TcpListener`, polls the shutdown flag
//!   between accepts, enforces the connection cap, spawns one thread per
//!   connection.
//! * **connection threads** — read one JSON request per line (under an
//!   idle deadline), answer from the latest [`Snapshot`] (reads never touch
//!   the refinement loop) or enqueue mutation batches into the
//!   [`MutationLog`] — after the batch is written to the WAL, when a state
//!   directory is configured.
//! * **refinement driver** — single consumer: drains the log, applies the
//!   batch to the [`EvolvingGraph`], rebuilds the CSR, and runs the
//!   warm-started dirty-region resweep under a fresh [`CancelToken`] armed
//!   in the log, so the *next* batch cancels it mid-sweep. Publishing a
//!   snapshot and marking the sequence applied are the only state writes;
//!   on the snapshot cadence the published snapshot is persisted and the
//!   WAL truncated (DESIGN.md §13).
//!
//! Durable append ordering (§13): every mutation producer holds the one
//! durability mutex, predicts the batch's sequence number, appends the WAL
//! record (fsync per `--fsync`), and only then enqueues the batch — so an
//! acknowledged batch is always on disk, and a crash between WAL append
//! and acknowledgement costs at most one *unacknowledged* batch being
//! replayed (at-least-once, never lost).

use crate::faults::ServeFaultPlan;
use crate::json::{num_u, obj, Json};
use crate::mutlog::{AppendError, MutationLog};
use crate::protocol::{
    error_response, ErrorKind, Request, BENCH_SERVE_SCHEMA_VERSION, PROTOCOL_VERSION,
};
use crate::recover::StateDir;
use crate::state::{EvolvingGraph, Mutation, Snapshot, StateHandle};
use crate::wal::{FsyncPolicy, Wal};
use hsbp_core::{refine_partition, CancelToken, HsbpError, RunBudget, SbpConfig, StopCause};
use hsbp_graph::{Graph, Vertex};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the daemon's knobs: where to listen, how each refinement
/// round runs, and how state is made durable.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Refinement kernel configuration (seed, beta, audit cadence, strict
    /// mode, convergence threshold, per-round sweep cap).
    pub sbp: SbpConfig,
    /// Budget applied to every refinement round (and the initial full run).
    pub budget: RunBudget,
    /// Artificial delay between arming a refinement round and its first
    /// sweep, in milliseconds. Load-shaping hook: widens the window in
    /// which a new batch cancels the round; keep 0 in production.
    pub refine_pause_ms: u64,
    /// State directory for the WAL and persisted snapshots. `None` keeps
    /// everything in memory (pre-durability behaviour). With `Some`, the
    /// daemon warm-starts from whatever the directory holds.
    pub state_dir: Option<PathBuf>,
    /// When the WAL is fsynced (`--fsync always|batch|never`).
    pub fsync: FsyncPolicy,
    /// Persist a snapshot (and truncate the WAL) every this many applied
    /// batches; 0 = only on clean shutdown.
    pub snapshot_every: u64,
    /// Bound on enqueued-but-unapplied mutations; over-limit appends get a
    /// typed `busy` error. 0 = unbounded.
    pub max_pending: usize,
    /// Concurrent connection cap; excess connections get one `busy` line
    /// and are closed. 0 = unbounded.
    pub max_connections: usize,
    /// Per-connection idle read deadline in milliseconds; a connection
    /// silent this long is closed. 0 = no deadline.
    pub idle_timeout_ms: u64,
    /// Deterministic fault plan for the durability path (tests/CI).
    pub fault_plan: ServeFaultPlan,
    /// How injected crashes die: `true` = `process::abort()` (the CLI, so
    /// the CI crash job sees a real process death); `false` = soft crash —
    /// stop acknowledging and shut down *without* the clean-shutdown
    /// snapshot, leaving exactly the on-disk state a hard kill would.
    pub hard_faults: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            sbp: SbpConfig::default(),
            budget: RunBudget::unlimited(),
            refine_pause_ms: 0,
            state_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: 32,
            max_pending: 100_000,
            max_connections: 64,
            idle_timeout_ms: 300_000,
            fault_plan: ServeFaultPlan::none(),
            hard_faults: false,
        }
    }
}

/// Durable-state bundle, one mutex for every producer and the driver.
#[derive(Debug)]
struct Durability {
    dir: StateDir,
    wal: Wal,
    /// Sequence covered by the last persisted snapshot.
    last_snapshot_seq: u64,
    /// Snapshot save attempts (1-based), for `crash-before-rename:NTH`.
    snapshot_saves: u64,
}

/// Shared daemon state, one `Arc` across every thread.
#[derive(Debug)]
pub(crate) struct ServeCtx {
    pub(crate) cfg: ServeConfig,
    pub(crate) state: StateHandle,
    pub(crate) log: MutationLog,
    pub(crate) shutdown: AtomicBool,
    /// Set by an injected crash (or [`ServerHandle::kill`]): shut down
    /// *without* the clean-shutdown snapshot.
    pub(crate) crashed: AtomicBool,
    /// Refinement rounds that published a snapshot.
    pub(crate) refines: AtomicU64,
    /// Drift events repaired across all rounds (non-strict mode).
    pub(crate) drift_repairs: AtomicU64,
    /// Refinement rounds that failed (strict drift, invalid state).
    pub(crate) refine_errors: AtomicU64,
    /// Live connections (for the cap and `status.connections`).
    pub(crate) connections: AtomicU64,
    durable: Option<Mutex<Durability>>,
    /// Epoch loaded from the persisted snapshot at startup, if any.
    pub(crate) recovered_epoch: Option<u64>,
    /// WAL tail records replayed at startup.
    pub(crate) replayed_batches: u64,
}

fn lock_durable(m: &Mutex<Durability>) -> MutexGuard<'_, Durability> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Stop the daemon the way a crash would: no shutdown snapshot, no more
/// acknowledgements. Aborts the process instead under `hard_faults`.
fn inject_crash(ctx: &ServeCtx) {
    if ctx.cfg.hard_faults {
        std::process::abort();
    }
    ctx.crashed.store(true, Ordering::Relaxed);
    ctx.shutdown.store(true, Ordering::Relaxed);
    ctx.log.close();
}

/// A running daemon. Dropping the handle does **not** stop the server —
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct Server {
    _private: (),
}

/// Join/control handle for a spawned server.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServeCtx>,
    accept_thread: JoinHandle<()>,
    driver_thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a `quit` request or [`ServerHandle::shutdown`] landed.
    pub fn is_shutting_down(&self) -> bool {
        self.ctx.shutdown.load(Ordering::Relaxed)
    }

    /// Request an orderly stop (idempotent): wakes the accept loop, cancels
    /// any in-flight refinement, releases every flush waiter. With a state
    /// directory, the driver persists a final snapshot on its way out.
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::Relaxed);
        self.ctx.log.close();
    }

    /// Crash-like stop for recovery tests: shut down *without* the final
    /// snapshot, so the on-disk state is exactly what a `SIGKILL` at this
    /// point would leave — a stale snapshot plus a WAL tail.
    pub fn kill(self) {
        self.ctx.crashed.store(true, Ordering::Relaxed);
        self.ctx.shutdown.store(true, Ordering::Relaxed);
        self.ctx.log.close();
        let _ = self.accept_thread.join();
        let _ = self.driver_thread.join();
    }

    /// Wait for the accept loop and the refinement driver to exit.
    pub fn join(self) {
        let _ = self.accept_thread.join();
        let _ = self.driver_thread.join();
    }
}

/// Run one full detection to build the epoch-0 snapshot (empty graphs get
/// a trivial one).
fn initial_snapshot(config: &ServeConfig, graph: Arc<Graph>) -> Result<Snapshot, HsbpError> {
    if graph.num_vertices() == 0 {
        return Ok(Snapshot::evaluate(0, 0, graph, Vec::new(), 0, false));
    }
    let result =
        hsbp_core::run_sbp_budgeted(&graph, &config.sbp, &config.budget, &CancelToken::new())?;
    Ok(Snapshot::evaluate(
        0,
        0,
        graph,
        result.assignment,
        result.num_blocks,
        result.stats.stop_cause.is_truncated(),
    ))
}

/// Replay one WAL record as a full refinement round — the same sequence of
/// steps `driver_loop` runs, so a recovered daemon reaches the state a
/// fresh daemon fed the same batches (sequentially, uncancelled) reaches.
fn replay_round(
    egraph: &mut EvolvingGraph,
    snap: &Snapshot,
    seq: u64,
    batch: &[Mutation],
    config: &ServeConfig,
) -> Result<Snapshot, HsbpError> {
    let mut dirty: Vec<Vertex> = Vec::new();
    for m in batch {
        egraph.apply(m, &mut dirty);
    }
    dirty.sort_unstable();
    dirty.dedup();
    let graph = Arc::new(egraph.build_csr());
    let out = refine_partition(
        &graph,
        &snap.assignment,
        snap.num_blocks.max(1),
        &dirty,
        &config.sbp,
        &config.budget,
        &CancelToken::new(),
    )?;
    Ok(Snapshot::evaluate(
        snap.epoch + 1,
        seq,
        graph,
        out.assignment,
        out.num_blocks,
        out.truncated,
    ))
}

impl Server {
    /// Bind, build the starting state — a cold full detection on `initial`,
    /// or with [`ServeConfig::state_dir`] a warm restart (load snapshot,
    /// replay the WAL tail, seed refinement from the recovered partition;
    /// `initial` is ignored when the directory holds state) — then start
    /// the refinement driver and the accept loop and return immediately.
    pub fn spawn(config: ServeConfig, initial: Graph) -> Result<ServerHandle, HsbpError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| HsbpError::Network {
            addr: config.addr.clone(),
            message: format!("bind failed: {e}"),
        })?;
        let addr = listener.local_addr().map_err(|e| HsbpError::Network {
            addr: config.addr.clone(),
            message: format!("local_addr failed: {e}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| HsbpError::Network {
                addr: addr.to_string(),
                message: format!("set_nonblocking failed: {e}"),
            })?;

        let mut recovered_epoch = None;
        let mut replayed_batches = 0u64;
        let (egraph, snapshot, durable) = match &config.state_dir {
            None => {
                let egraph = EvolvingGraph::from_graph(&initial);
                let snapshot = initial_snapshot(&config, Arc::new(initial))?;
                (egraph, snapshot, None)
            }
            Some(dir) => {
                let state = StateDir::open_or_create(dir, &config.sbp)?;
                match state.recover()? {
                    Some(rec) => {
                        let mut egraph = rec.snapshot.egraph;
                        recovered_epoch = Some(rec.snapshot.epoch);
                        let mut snap = Snapshot::evaluate(
                            rec.snapshot.epoch,
                            rec.snapshot.applied_seq,
                            Arc::new(egraph.build_csr()),
                            rec.snapshot.assignment,
                            rec.snapshot.num_blocks,
                            false,
                        );
                        for (seq, batch) in &rec.tail {
                            snap = replay_round(&mut egraph, &snap, *seq, batch, &config)?;
                            replayed_batches += 1;
                        }
                        let last_snapshot_seq = rec.snapshot.applied_seq;
                        let wal = Wal::open(&state.wal_path(), config.fsync, rec.wal_good_bytes)?;
                        (
                            egraph,
                            snap,
                            Some(Durability {
                                dir: state,
                                wal,
                                last_snapshot_seq,
                                snapshot_saves: 0,
                            }),
                        )
                    }
                    None => {
                        // Fresh state directory: cold start, then persist
                        // the epoch-0 snapshot so even a crash before the
                        // first cadence warm-starts.
                        let egraph = EvolvingGraph::from_graph(&initial);
                        let snapshot = initial_snapshot(&config, Arc::new(initial))?;
                        state.save_snapshot(&snapshot, || true)?;
                        let wal = Wal::open(&state.wal_path(), config.fsync, 0)?;
                        (
                            egraph,
                            snapshot,
                            Some(Durability {
                                dir: state,
                                wal,
                                last_snapshot_seq: 0,
                                snapshot_saves: 1,
                            }),
                        )
                    }
                }
            }
        };

        let log = MutationLog::new();
        log.reset_seq(snapshot.applied_seq);
        let ctx = Arc::new(ServeCtx {
            cfg: config,
            state: StateHandle::new(snapshot),
            log,
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            refines: AtomicU64::new(0),
            drift_repairs: AtomicU64::new(0),
            refine_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            durable: durable.map(Mutex::new),
            recovered_epoch,
            replayed_batches,
        });

        let driver_thread = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || driver_loop(&ctx, egraph))
        };
        let accept_thread = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || accept_loop(&listener, &ctx))
        };
        Ok(ServerHandle {
            addr,
            ctx,
            accept_thread,
            driver_thread,
        })
    }
}

/// Persist the published snapshot and truncate the WAL to its sequence.
/// Returns `false` when an injected `crash-before-rename` fired (soft
/// mode) — the daemon is crashing, stop the driver.
fn persist_snapshot(ctx: &ServeCtx, d: &mut Durability, snap: &Snapshot) -> bool {
    d.snapshot_saves += 1;
    let crash_here = ctx.cfg.fault_plan.crash_before_rename == Some(d.snapshot_saves);
    let hard = ctx.cfg.hard_faults;
    let saved = d.dir.save_snapshot(snap, || {
        if crash_here && hard {
            std::process::abort();
        }
        !crash_here
    });
    if crash_here {
        inject_crash(ctx);
        return false;
    }
    match saved.and_then(|()| d.wal.truncate_to(snap.applied_seq)) {
        Ok(()) => {
            d.last_snapshot_seq = snap.applied_seq;
            true
        }
        Err(e) => {
            // Persistence failed but the in-memory state is fine: keep
            // serving; the WAL still covers everything since the last good
            // snapshot, so recovery is unharmed.
            eprintln!("serve: snapshot persist failed: {e}");
            true
        }
    }
}

/// The single-consumer refinement loop.
fn driver_loop(ctx: &ServeCtx, mut egraph: EvolvingGraph) {
    let cfg = &ctx.cfg;
    // Dirty vertices whose resweep a cancellation interrupted; folded into
    // the next round so truncated work is finished, not lost.
    let mut carry_dirty: Vec<Vertex> = Vec::new();
    let mut slow_apply_pending = cfg.fault_plan.slow_apply;
    while let Some((batch, seq)) = ctx.log.wait_drain() {
        if let Some((fault_seq, ms)) = slow_apply_pending {
            if seq >= fault_seq {
                // Injected apply stall: the backlog builds while we sleep,
                // deterministically driving `busy` back-pressure tests.
                std::thread::sleep(Duration::from_millis(ms));
                slow_apply_pending = None;
            }
        }
        let mut dirty = std::mem::take(&mut carry_dirty);
        for m in &batch {
            egraph.apply(m, &mut dirty);
        }
        dirty.sort_unstable();
        dirty.dedup();
        let graph = Arc::new(egraph.build_csr());
        let token = CancelToken::new();
        if !ctx.log.arm(&token) {
            // A newer batch raced in while we were rebuilding: restart the
            // round against the merged topology instead of refining twice.
            carry_dirty = dirty;
            continue;
        }
        if cfg.refine_pause_ms > 0 {
            // Armed but not yet sweeping: a batch landing in this window
            // cancels the round exactly like one landing mid-sweep.
            std::thread::sleep(Duration::from_millis(cfg.refine_pause_ms));
        }
        let warm = ctx.state.load();
        let outcome = refine_partition(
            &graph,
            &warm.assignment,
            warm.num_blocks.max(1),
            &dirty,
            &cfg.sbp,
            &cfg.budget,
            &token,
        );
        ctx.log.disarm();
        match outcome {
            Ok(out) => {
                ctx.refines.fetch_add(1, Ordering::Relaxed);
                ctx.drift_repairs
                    .fetch_add(out.stats.drift_events.len() as u64, Ordering::Relaxed);
                if out.truncated && out.stats.stop_cause == StopCause::Cancelled {
                    // The interrupted region re-sweeps with the next batch.
                    carry_dirty.clone_from(&dirty);
                }
                let snapshot = Snapshot::evaluate(
                    warm.epoch + 1,
                    seq,
                    graph,
                    out.assignment,
                    out.num_blocks,
                    out.truncated,
                );
                ctx.state.publish(snapshot);
                ctx.log.mark_applied(seq);
            }
            Err(_) => {
                // Strict-mode drift or an invalid warm state: keep serving
                // the last good snapshot, count the failure, and unblock
                // flush waiters (the mutations are in the topology; only
                // the partition refresh failed).
                ctx.refine_errors.fetch_add(1, Ordering::Relaxed);
                carry_dirty = dirty;
                ctx.log.mark_applied(seq);
            }
        }
        // Snapshot cadence: persist once the WAL has accumulated
        // `snapshot_every` applied batches past the last persisted one.
        if let Some(durable) = &ctx.durable {
            let mut d = lock_durable(durable);
            if cfg.snapshot_every > 0 && seq - d.last_snapshot_seq >= cfg.snapshot_every {
                let snap = ctx.state.load();
                if !persist_snapshot(ctx, &mut d, &snap) {
                    return; // injected crash before the rename
                }
            }
        }
    }
    // Clean shutdown: persist the final snapshot so restart needs no
    // replay. A crash-like stop (`kill`, injected crash) skips this — the
    // WAL tail is the recovery source, as after a real crash.
    if let Some(durable) = &ctx.durable {
        if !ctx.crashed.load(Ordering::Relaxed) {
            let mut d = lock_durable(durable);
            let snap = ctx.state.load();
            if snap.applied_seq > d.last_snapshot_seq || d.snapshot_saves == 0 {
                let _ = persist_snapshot(ctx, &mut d, &snap);
            } else {
                let _ = d.wal.sync();
            }
        }
    }
}

/// Non-blocking accept loop; exits when the shutdown flag is set.
fn accept_loop(listener: &TcpListener, ctx: &Arc<ServeCtx>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    let cap = ctx.cfg.max_connections;
    while !ctx.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if cap > 0 && ctx.connections.load(Ordering::Relaxed) >= cap as u64 {
                    // Over the cap: one typed `busy` line, then close.
                    let mut line =
                        error_response(ErrorKind::Busy, &format!("connection limit {cap} reached"))
                            .to_line();
                    line.push('\n');
                    let _ = stream.write_all(line.as_bytes());
                    continue;
                }
                ctx.connections.fetch_add(1, Ordering::Relaxed);
                let ctx = Arc::clone(ctx);
                connections.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, &ctx);
                    ctx.connections.fetch_sub(1, Ordering::Relaxed);
                }));
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        connections.retain(|h| !h.is_finished());
    }
    // Orderly drain: connection threads poll the flag via read timeouts.
    ctx.log.close();
    for h in connections {
        let _ = h.join();
    }
}

/// One connection: read request lines, write response lines.
fn serve_connection(stream: TcpStream, ctx: &ServeCtx) -> Result<(), HsbpError> {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    let net_err = |message: String| HsbpError::Network {
        addr: peer.clone(),
        message,
    };
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| net_err(format!("set_read_timeout failed: {e}")))?;
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| net_err(format!("set_write_timeout failed: {e}")))?;
    let idle_deadline = match ctx.cfg.idle_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let mut last_activity = Instant::now();
    let mut stream = stream;
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if ctx.shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => n,
            Err(e) if matches!(e.kind(), IoErrorKind::WouldBlock | IoErrorKind::TimedOut) => {
                if idle_deadline.is_some_and(|d| last_activity.elapsed() > d) {
                    return Ok(()); // idle deadline: reclaim the slot
                }
                continue;
            }
            Err(e) => return Err(net_err(format!("read failed: {e}"))),
        };
        last_activity = Instant::now();
        acc.extend_from_slice(&buf[..n]);
        while let Some(eol) = acc.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = acc.drain(..=eol).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let (response, quit) = handle_line(text, ctx);
            if let Some(response) = response {
                let mut out = response.to_line();
                out.push('\n');
                stream
                    .write_all(out.as_bytes())
                    .map_err(|e| net_err(format!("write failed: {e}")))?;
            }
            if quit {
                ctx.shutdown.store(true, Ordering::Relaxed);
                ctx.log.close();
                return Ok(());
            }
        }
    }
}

/// Accept one mutation batch: WAL first (when durable), then enqueue, then
/// acknowledge — under back-pressure and the fault plan. `None` response =
/// injected crash (the connection drops without a line, like a real one).
fn handle_mutate(batch: Vec<Mutation>, ctx: &ServeCtx) -> (Option<Json>, bool) {
    let queued = batch.len();
    let max = ctx.cfg.max_pending;
    let busy = |pending: usize| {
        error_response(
            ErrorKind::Busy,
            &format!("mutation backlog full ({pending} pending, limit {max}); retry later"),
        )
    };
    let seq = match &ctx.durable {
        None => match ctx.log.try_append(batch, max) {
            Ok(seq) => seq,
            Err(AppendError::Busy { pending, .. }) => return (Some(busy(pending)), false),
            Err(AppendError::ShuttingDown) => {
                return (
                    Some(error_response(
                        ErrorKind::ShuttingDown,
                        "daemon is shutting down",
                    )),
                    false,
                )
            }
        },
        Some(durable) => {
            // Every producer holds this mutex, so the predicted sequence is
            // exact and WAL records land in sequence order.
            let mut d = lock_durable(durable);
            if ctx.shutdown.load(Ordering::Relaxed) {
                return (
                    Some(error_response(
                        ErrorKind::ShuttingDown,
                        "daemon is shutting down",
                    )),
                    false,
                );
            }
            let pending = ctx.log.queue_depth();
            if max > 0 && pending + queued > max {
                return (Some(busy(pending)), false); // refused before any WAL write
            }
            let seq = ctx.log.next_seq();
            if ctx.cfg.fault_plan.torn_write == Some(seq) {
                // A crash mid-append: a prefix of the record reaches disk,
                // the client never hears back.
                let _ = d.wal.append_torn(seq, &batch, 9);
                drop(d);
                inject_crash(ctx);
                return (None, true);
            }
            if let Err(e) = d.wal.append(seq, &batch) {
                // Durability is broken: refuse the batch (an ack would lie)
                // and stop the daemon rather than silently degrade.
                eprintln!("serve: WAL append failed, shutting down: {e}");
                drop(d);
                ctx.shutdown.store(true, Ordering::Relaxed);
                ctx.log.close();
                return (
                    Some(error_response(
                        ErrorKind::ShuttingDown,
                        "write-ahead log failure; daemon is shutting down",
                    )),
                    false,
                );
            }
            if ctx.cfg.fault_plan.crash_after_wal == Some(seq) {
                // The record is durable; the ack never goes out. Recovery
                // must replay it (at-least-once).
                drop(d);
                inject_crash(ctx);
                return (None, true);
            }
            match ctx.log.try_append(batch, 0) {
                Ok(s) => {
                    debug_assert_eq!(s, seq, "durable mutex serialises producers");
                    s
                }
                Err(_) => {
                    return (
                        Some(error_response(
                            ErrorKind::ShuttingDown,
                            "daemon is shutting down",
                        )),
                        false,
                    )
                }
            }
        }
    };
    (
        Some(obj(vec![
            ("ok", Json::Bool(true)),
            ("seq", num_u(seq)),
            ("queued", num_u(queued as u64)),
        ])),
        false,
    )
}

/// Decode, dispatch, encode. Returns the response (`None` = close without
/// responding, as an injected crash does) and whether this request shuts
/// the daemon down.
pub(crate) fn handle_line(line: &str, ctx: &ServeCtx) -> (Option<Json>, bool) {
    let err = |kind: ErrorKind, msg: &str| (Some(error_response(kind, msg)), false);
    let parsed = match crate::json::parse(line) {
        Ok(v) => v,
        Err(e) => return err(ErrorKind::Parse, &format!("bad JSON: {e}")),
    };
    let request = match Request::parse(&parsed) {
        Ok(r) => r,
        Err((kind, e)) => return err(kind, &e),
    };
    match request {
        Request::Version => (
            Some(obj(vec![
                ("ok", Json::Bool(true)),
                ("crate", Json::Str(env!("CARGO_PKG_VERSION").into())),
                ("protocol", num_u(u64::from(PROTOCOL_VERSION))),
                (
                    "bench_schema",
                    obj(vec![(
                        "serve",
                        num_u(u64::from(BENCH_SERVE_SCHEMA_VERSION)),
                    )]),
                ),
            ])),
            false,
        ),
        Request::Mutate(batch) => handle_mutate(batch, ctx),
        Request::Membership(vertices) => {
            let snap = ctx.state.load();
            let mut blocks = Vec::with_capacity(vertices.len());
            for v in &vertices {
                match snap.assignment.get(*v as usize) {
                    Some(b) => blocks.push(num_u(u64::from(*b))),
                    None => {
                        return err(
                            ErrorKind::BadRequest,
                            &format!(
                                "vertex {v} out of range (snapshot has {})",
                                snap.assignment.len()
                            ),
                        )
                    }
                }
            }
            (
                Some(obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", num_u(snap.epoch)),
                    ("blocks", Json::Arr(blocks)),
                ])),
                false,
            )
        }
        Request::BlockStats(which) => {
            let snap = ctx.state.load();
            let stat_obj = |id: usize, s: &crate::state::BlockStats| {
                obj(vec![
                    ("block", num_u(id as u64)),
                    ("size", num_u(s.size as u64)),
                    ("d_out", num_u(s.d_out)),
                    ("d_in", num_u(s.d_in)),
                ])
            };
            let blocks = match which {
                Some(b) => match snap.blocks.get(b as usize) {
                    Some(s) => vec![stat_obj(b as usize, s)],
                    None => {
                        return err(
                            ErrorKind::BadRequest,
                            &format!(
                                "block {b} out of range (snapshot has {})",
                                snap.blocks.len()
                            ),
                        )
                    }
                },
                None => snap
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(i, s)| stat_obj(i, s))
                    .collect(),
            };
            (
                Some(obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", num_u(snap.epoch)),
                    ("num_blocks", num_u(snap.num_blocks as u64)),
                    ("blocks", Json::Arr(blocks)),
                ])),
                false,
            )
        }
        Request::Mdl => {
            let snap = ctx.state.load();
            (
                Some(obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", num_u(snap.epoch)),
                    ("mdl", Json::Num(snap.mdl)),
                    ("normalized_mdl", Json::Num(snap.normalized_mdl)),
                    ("num_blocks", num_u(snap.num_blocks as u64)),
                    ("truncated", Json::Bool(snap.truncated)),
                ])),
                false,
            )
        }
        Request::Status => {
            let snap = ctx.state.load();
            let (pending, enq, applied, cancels) = ctx.log.stats();
            let (wal_bytes, last_snapshot_seq) = match &ctx.durable {
                Some(durable) => {
                    let d = lock_durable(durable);
                    (d.wal.bytes(), d.last_snapshot_seq)
                }
                None => (0, 0),
            };
            (
                Some(obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", num_u(snap.epoch)),
                    ("num_vertices", num_u(snap.graph.num_vertices() as u64)),
                    ("num_edges", num_u(snap.graph.num_edges() as u64)),
                    ("num_blocks", num_u(snap.num_blocks as u64)),
                    ("pending_batches", num_u(pending as u64)),
                    ("queue_depth", num_u(ctx.log.queue_depth() as u64)),
                    ("seq_enqueued", num_u(enq)),
                    ("seq_applied", num_u(applied)),
                    ("cancellations", num_u(cancels)),
                    ("refines", num_u(ctx.refines.load(Ordering::Relaxed))),
                    (
                        "drift_repairs",
                        num_u(ctx.drift_repairs.load(Ordering::Relaxed)),
                    ),
                    (
                        "refine_errors",
                        num_u(ctx.refine_errors.load(Ordering::Relaxed)),
                    ),
                    (
                        "connections",
                        num_u(ctx.connections.load(Ordering::Relaxed)),
                    ),
                    ("wal_bytes", num_u(wal_bytes)),
                    ("last_snapshot_seq", num_u(last_snapshot_seq)),
                    (
                        "recovered_epoch",
                        match ctx.recovered_epoch {
                            Some(e) => num_u(e),
                            None => Json::Null,
                        },
                    ),
                    ("replayed_batches", num_u(ctx.replayed_batches)),
                ])),
                false,
            )
        }
        Request::Flush => {
            let (_, enq, _, _) = ctx.log.stats();
            let reached = ctx.log.wait_applied(enq);
            let snap = ctx.state.load();
            (
                Some(obj(vec![
                    ("ok", Json::Bool(reached)),
                    ("epoch", num_u(snap.epoch)),
                    ("seq_applied", num_u(snap.applied_seq)),
                ])),
                false,
            )
        }
        Request::Quit => (Some(obj(vec![("ok", Json::Bool(true))])), true),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn test_ctx(cfg: ServeConfig) -> ServeCtx {
        let snapshot =
            Snapshot::evaluate(0, 0, Arc::new(Graph::from_edges(0, &[])), vec![], 0, false);
        ServeCtx {
            cfg,
            state: StateHandle::new(snapshot),
            log: MutationLog::new(),
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            refines: AtomicU64::new(0),
            drift_repairs: AtomicU64::new(0),
            refine_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            durable: None,
            recovered_epoch: None,
            replayed_batches: 0,
        }
    }

    fn kind_of(resp: &Json) -> Option<&str> {
        crate::protocol::error_kind_of(resp)
    }

    #[test]
    fn shutting_down_mutations_are_typed() {
        let ctx = test_ctx(ServeConfig::default());
        ctx.log.close();
        let (resp, quit) = handle_line("{\"op\":\"add_vertices\",\"count\":1}", &ctx);
        let resp = resp.unwrap();
        assert!(!quit);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(kind_of(&resp), Some("shutting_down"));
    }

    #[test]
    fn over_limit_append_is_busy_and_log_unharmed() {
        let ctx = test_ctx(ServeConfig {
            max_pending: 2,
            ..ServeConfig::default()
        });
        let (resp, _) = handle_line("{\"op\":\"add_vertices\",\"count\":1}", &ctx);
        assert_eq!(
            resp.unwrap().get("ok").and_then(Json::as_bool),
            Some(true),
            "first batch fits"
        );
        // Two pending mutations + 6 incoming > 2: typed busy.
        let (resp, _) = handle_line("{\"op\":\"add_edges\",\"edges\":[[0,1],[1,2],[2,3]]}", &ctx);
        let resp = resp.unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(kind_of(&resp), Some("busy"));
        // The refused batch was never enqueued.
        assert_eq!(ctx.log.queue_depth(), 1);
        // Reads still work on the same "connection".
        let (status, _) = handle_line("{\"op\":\"status\"}", &ctx);
        let status = status.unwrap();
        assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(status.get("queue_depth").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn parse_and_unknown_command_kinds_are_distinct() {
        let ctx = test_ctx(ServeConfig::default());
        let (resp, _) = handle_line("{not json", &ctx);
        assert_eq!(kind_of(&resp.unwrap()), Some("parse"));
        let (resp, _) = handle_line("{\"op\":\"frobnicate\"}", &ctx);
        assert_eq!(kind_of(&resp.unwrap()), Some("unknown_command"));
        let (resp, _) = handle_line("{\"op\":\"membership\"}", &ctx);
        assert_eq!(kind_of(&resp.unwrap()), Some("bad_request"));
    }
}
