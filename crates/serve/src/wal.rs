//! The mutation write-ahead log: every accepted batch is appended here —
//! length-prefixed, checksummed, under the configured fsync policy —
//! *before* it is acknowledged to the client, so a crash never loses an
//! acknowledged mutation.
//!
//! File layout:
//!
//! ```text
//! [8-byte magic "HSBPWAL1"]
//! record*  where record = [u32 payload_len][u64 seq][u64 fnv1a(payload)][payload]
//! ```
//!
//! All integers are little-endian. The payload encodes one mutation batch
//! (`u32` count, then one tagged entry per [`Mutation`]). Replay walks the
//! records front to back and stops at the first torn or corrupt one: a
//! record is either applied whole or not at all, and a kill mid-append
//! costs at most the one unacknowledged batch being written. Recovery
//! physically truncates the file back to the last good record so later
//! appends extend a clean log.

use crate::state::Mutation;
use hsbp_core::HsbpError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies (and versions) the WAL format.
pub const WAL_MAGIC: &[u8; 8] = b"HSBPWAL1";

/// When the daemon calls `fsync` on the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every appended batch, before the acknowledgement: an
    /// acked batch survives power loss. Slowest.
    #[default]
    Always,
    /// Write every batch to the OS before acking (survives a process
    /// crash), `fsync` only at snapshots and shutdown (a kernel panic or
    /// power loss can lose the tail since the last snapshot).
    Batch,
    /// Never `fsync`; the OS flushes when it likes. Fastest, test-only.
    Never,
}

impl FsyncPolicy {
    /// Parse the `--fsync` CLI value.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::Batch),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "unknown fsync policy `{other}` (always|batch|never)"
            )),
        }
    }

    /// Stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }
}

fn wal_err(path: &Path, message: impl Into<String>) -> HsbpError {
    HsbpError::Wal {
        path: path.display().to_string(),
        message: message.into(),
    }
}

/// FNV-1a over the payload bytes — the record checksum.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode one batch into a payload (count-prefixed tagged entries).
pub(crate) fn encode_batch(batch: &[Mutation]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + batch.len() * 17);
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for m in batch {
        match *m {
            Mutation::AddEdge { from, to, weight } => {
                out.push(0);
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&to.to_le_bytes());
                out.extend_from_slice(&weight.to_le_bytes());
            }
            Mutation::RemoveEdge { from, to } => {
                out.push(1);
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&to.to_le_bytes());
            }
            Mutation::AddVertices { count } => {
                out.push(2);
                out.extend_from_slice(&(count as u64).to_le_bytes());
            }
            Mutation::RemoveVertex { vertex } => {
                out.push(3);
                out.extend_from_slice(&vertex.to_le_bytes());
            }
        }
    }
    out
}

/// Decode one payload back into a batch. `None` on any truncation or an
/// unknown tag — the caller treats the whole record as torn.
pub(crate) fn decode_batch(payload: &[u8]) -> Option<Vec<Mutation>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = payload.get(*pos..*pos + n)?;
        *pos += n;
        Some(slice)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let mut batch = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let tag = *take(&mut pos, 1)?.first()?;
        let m = match tag {
            0 => Mutation::AddEdge {
                from: u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?),
                to: u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?),
                weight: u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?),
            },
            1 => Mutation::RemoveEdge {
                from: u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?),
                to: u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?),
            },
            2 => Mutation::AddVertices {
                count: u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize,
            },
            3 => Mutation::RemoveVertex {
                vertex: u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?),
            },
            _ => return None,
        };
        batch.push(m);
    }
    if pos != payload.len() {
        return None;
    }
    Some(batch)
}

/// One record's framing bytes (everything before the payload).
fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Everything replay learned from a WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// The decoded `(seq, batch)` records, in file order.
    pub records: Vec<(u64, Vec<Mutation>)>,
    /// Byte offset just past the last good record (where appends resume).
    pub good_bytes: u64,
    /// True when a torn or corrupt tail record was detected and dropped.
    pub torn_tail: bool,
}

/// Read every intact record of the WAL at `path`. A missing file is an
/// empty replay. The first torn record (short header, short payload, or a
/// checksum mismatch) ends the scan: it and anything after it are dropped,
/// never partially applied.
pub fn replay(path: &Path) -> Result<WalReplay, HsbpError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReplay {
                records: Vec::new(),
                good_bytes: 0,
                torn_tail: false,
            })
        }
        Err(e) => return Err(wal_err(path, format!("read: {e}"))),
    };
    if bytes.is_empty() {
        return Ok(WalReplay {
            records: Vec::new(),
            good_bytes: 0,
            torn_tail: false,
        });
    }
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(wal_err(path, "bad magic: not an hsbp-serve WAL"));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut torn_tail = false;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 20) else {
            torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap_or([0; 4])) as usize;
        let seq = u64::from_le_bytes(header[4..12].try_into().unwrap_or([0; 8]));
        let sum = u64::from_le_bytes(header[12..20].try_into().unwrap_or([0; 8]));
        let Some(payload) = bytes.get(pos + 20..pos + 20 + len) else {
            torn_tail = true;
            break;
        };
        if checksum(payload) != sum {
            torn_tail = true;
            break;
        }
        let Some(batch) = decode_batch(payload) else {
            torn_tail = true;
            break;
        };
        records.push((seq, batch));
        pos += 20 + len;
    }
    Ok(WalReplay {
        records,
        good_bytes: pos.min(bytes.len()) as u64,
        torn_tail,
    })
}

/// Append handle over the WAL file. Single writer (the daemon serialises
/// appends through one mutex); `Wal` itself does no locking.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    policy: FsyncPolicy,
    bytes: u64,
}

impl Wal {
    /// Open the WAL at `path` for appending, creating it (with the magic
    /// header) when absent. `good_bytes` — from a prior [`replay`] — is
    /// where appends resume; any torn tail past it is physically truncated
    /// away first. Pass `good_bytes = 0` for a fresh file.
    pub fn open(path: &Path, policy: FsyncPolicy, good_bytes: u64) -> Result<Self, HsbpError> {
        let fresh = good_bytes < WAL_MAGIC.len() as u64;
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(fresh)
            .open(path)
            .map_err(|e| wal_err(path, format!("open: {e}")))?;
        let mut wal = Self {
            path: path.to_path_buf(),
            file,
            policy,
            bytes: 0,
        };
        if fresh {
            wal.file
                .write_all(WAL_MAGIC)
                .map_err(|e| wal_err(path, format!("write magic: {e}")))?;
            wal.bytes = WAL_MAGIC.len() as u64;
        } else {
            wal.file
                .set_len(good_bytes)
                .map_err(|e| wal_err(path, format!("truncate torn tail: {e}")))?;
            wal.bytes = good_bytes;
        }
        wal.file
            .seek(SeekFrom::Start(wal.bytes))
            .map_err(|e| wal_err(path, format!("seek: {e}")))?;
        if policy == FsyncPolicy::Always {
            wal.sync()?;
        }
        Ok(wal)
    }

    /// Current file size in bytes (served as `status.wal_bytes`).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one batch under `seq`, honouring the fsync policy. On return
    /// the record is durable enough to acknowledge (per policy).
    pub fn append(&mut self, seq: u64, batch: &[Mutation]) -> Result<(), HsbpError> {
        let record = frame(seq, &encode_batch(batch));
        self.file
            .write_all(&record)
            .map_err(|e| wal_err(&self.path, format!("append seq {seq}: {e}")))?;
        self.bytes += record.len() as u64;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Fault-injection hook: write only the first `keep` bytes of the
    /// record for `seq` — a deterministic torn write, as left behind by a
    /// crash mid-append. The truncated bytes are flushed so the tear is
    /// really on disk.
    pub fn append_torn(
        &mut self,
        seq: u64,
        batch: &[Mutation],
        keep: usize,
    ) -> Result<(), HsbpError> {
        let record = frame(seq, &encode_batch(batch));
        let keep = keep.min(record.len().saturating_sub(1)).max(1);
        self.file
            .write_all(&record[..keep])
            .map_err(|e| wal_err(&self.path, format!("torn append seq {seq}: {e}")))?;
        self.bytes += keep as u64;
        self.file
            .sync_data()
            .map_err(|e| wal_err(&self.path, format!("sync: {e}")))?;
        Ok(())
    }

    /// `fsync` whatever has been written (no-op for `Never`).
    pub fn sync(&mut self) -> Result<(), HsbpError> {
        if self.policy == FsyncPolicy::Never {
            return Ok(());
        }
        self.file
            .sync_data()
            .map_err(|e| wal_err(&self.path, format!("sync: {e}")))
    }

    /// Drop every record with `seq <= upto` (they are covered by a
    /// persisted snapshot): surviving tail records are rewritten into a
    /// temporary sibling which is atomically renamed over the log.
    pub fn truncate_to(&mut self, upto: u64) -> Result<(), HsbpError> {
        self.file
            .flush()
            .map_err(|e| wal_err(&self.path, format!("flush: {e}")))?;
        let replayed = replay(&self.path)?;
        let tmp = self.path.with_extension("tmp");
        {
            let mut out = File::create(&tmp).map_err(|e| wal_err(&tmp, format!("create: {e}")))?;
            out.write_all(WAL_MAGIC)
                .map_err(|e| wal_err(&tmp, format!("write magic: {e}")))?;
            for (seq, batch) in &replayed.records {
                if *seq > upto {
                    out.write_all(&frame(*seq, &encode_batch(batch)))
                        .map_err(|e| wal_err(&tmp, format!("rewrite seq {seq}: {e}")))?;
                }
            }
            if self.policy != FsyncPolicy::Never {
                out.sync_data()
                    .map_err(|e| wal_err(&tmp, format!("sync: {e}")))?;
            }
        }
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| wal_err(&self.path, format!("rename: {e}")))?;
        // Reopen the renamed file for future appends.
        let reopened = replay(&self.path)?;
        let file = OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| wal_err(&self.path, format!("reopen: {e}")))?;
        self.file = file;
        self.bytes = reopened.good_bytes.max(WAL_MAGIC.len() as u64);
        self.file
            .seek(SeekFrom::Start(self.bytes))
            .map_err(|e| wal_err(&self.path, format!("seek: {e}")))?;
        Ok(())
    }
}

/// Read back the raw bytes of a WAL (test/diagnostic helper).
pub fn file_bytes(path: &Path) -> Result<Vec<u8>, HsbpError> {
    let mut f = File::open(path).map_err(|e| wal_err(path, format!("open: {e}")))?;
    let mut out = Vec::new();
    f.read_to_end(&mut out)
        .map_err(|e| wal_err(path, format!("read: {e}")))?;
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsbp-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_batch(i: u64) -> Vec<Mutation> {
        vec![
            Mutation::AddEdge {
                from: i as u32,
                to: (i + 1) as u32,
                weight: 1 + i,
            },
            Mutation::RemoveEdge {
                from: 9,
                to: i as u32,
            },
            Mutation::AddVertices { count: 3 },
            Mutation::RemoveVertex { vertex: 2 },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 0).unwrap();
        for seq in 1..=5u64 {
            wal.append(seq, &sample_batch(seq)).unwrap();
        }
        let replayed = replay(&path).unwrap();
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.records.len(), 5);
        for (i, (seq, batch)) in replayed.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(*batch, sample_batch(*seq));
        }
        assert_eq!(replayed.good_bytes, wal.bytes());
    }

    #[test]
    fn torn_final_record_is_detected_and_dropped() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path, FsyncPolicy::Batch, 0).unwrap();
        wal.append(1, &sample_batch(1)).unwrap();
        wal.append(2, &sample_batch(2)).unwrap();
        wal.append_torn(3, &sample_batch(3), 11).unwrap();
        drop(wal);
        let replayed = replay(&path).unwrap();
        assert!(replayed.torn_tail, "tear detected");
        assert_eq!(replayed.records.len(), 2, "torn record never applied");
        // Reopening at good_bytes truncates the tear; appends are clean.
        let mut wal = Wal::open(&path, FsyncPolicy::Batch, replayed.good_bytes).unwrap();
        wal.append(3, &sample_batch(3)).unwrap();
        let again = replay(&path).unwrap();
        assert!(!again.torn_tail);
        assert_eq!(again.records.len(), 3);
    }

    #[test]
    fn corrupt_checksum_ends_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path, FsyncPolicy::Never, 0).unwrap();
        wal.append(1, &sample_batch(1)).unwrap();
        wal.append(2, &sample_batch(2)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip one payload byte of the *second* record.
        let mut bytes = file_bytes(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.torn_tail);
        assert_eq!(replayed.records.len(), 1, "only the intact prefix survives");
    }

    #[test]
    fn truncate_to_drops_covered_records() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path, FsyncPolicy::Always, 0).unwrap();
        for seq in 1..=6u64 {
            wal.append(seq, &sample_batch(seq)).unwrap();
        }
        let before = wal.bytes();
        wal.truncate_to(4).unwrap();
        assert!(wal.bytes() < before);
        let replayed = replay(&path).unwrap();
        let seqs: Vec<u64> = replayed.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![5, 6]);
        // Appends after truncation extend the rewritten log.
        wal.append(7, &sample_batch(7)).unwrap();
        let again = replay(&path).unwrap();
        assert_eq!(again.records.len(), 3);
    }

    #[test]
    fn missing_file_is_empty_replay_and_bad_magic_rejected() {
        let path = tmp("magic");
        let replayed = replay(&path).unwrap();
        assert!(replayed.records.is_empty());
        std::fs::write(&path, b"not a wal at all").unwrap();
        assert!(matches!(replay(&path), Err(HsbpError::Wal { .. })));
    }

    #[test]
    fn fsync_policy_parses_and_roundtrips() {
        for (text, policy) in [
            ("always", FsyncPolicy::Always),
            ("batch", FsyncPolicy::Batch),
            ("never", FsyncPolicy::Never),
        ] {
            assert_eq!(FsyncPolicy::parse(text).unwrap(), policy);
            assert_eq!(policy.name(), text);
        }
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }
}
