//! Service state: the mutable evolving graph, immutable published
//! snapshots, and the epoch-swapped handle readers go through.
//!
//! The CSR [`Graph`] the algorithms run on is deliberately immutable, so
//! the daemon keeps a mutable adjacency-map twin ([`EvolvingGraph`]) as the
//! source of truth for topology and rebuilds a fresh CSR per refinement
//! round. Readers never see the twin: every query is answered from the
//! latest [`Snapshot`], an immutable `(epoch, graph, partition, stats)`
//! bundle swapped in atomically after each refinement — so reads stay
//! wait-free with respect to the refinement loop and always observe a
//! partition that was internally consistent when published.

use hsbp_blockmodel::{mdl, Block, Blockmodel};
use hsbp_graph::{Graph, GraphBuilder, Vertex, Weight};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// One batched topology mutation, as accepted by the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Add `weight` to the directed edge `from → to` (creating it at that
    /// weight if absent). Vertex ids beyond the current size grow the graph.
    AddEdge {
        /// Source vertex.
        from: Vertex,
        /// Target vertex.
        to: Vertex,
        /// Weight to add (≥ 1).
        weight: Weight,
    },
    /// Delete the directed edge `from → to` entirely (no-op when absent).
    RemoveEdge {
        /// Source vertex.
        from: Vertex,
        /// Target vertex.
        to: Vertex,
    },
    /// Grow the vertex set by `count` isolated vertices.
    AddVertices {
        /// How many vertices to append.
        count: usize,
    },
    /// Drop every edge incident to `vertex` (the id remains valid but
    /// isolated — ids are stable, never recycled).
    RemoveVertex {
        /// Vertex to isolate.
        vertex: Vertex,
    },
}

/// Mutable adjacency-map graph the daemon owns. `BTreeMap` rows keep
/// iteration deterministic, so the CSR rebuilt from a given mutation
/// history is bit-identical across runs.
#[derive(Debug, Default, Clone)]
pub struct EvolvingGraph {
    out_adj: Vec<BTreeMap<Vertex, Weight>>,
    in_adj: Vec<BTreeMap<Vertex, Weight>>,
}

impl EvolvingGraph {
    /// Import an existing CSR graph (duplicate edges already collapsed).
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let mut g = Self {
            out_adj: vec![BTreeMap::new(); n],
            in_adj: vec![BTreeMap::new(); n],
        };
        for (u, v, w) in graph.edges() {
            *g.out_adj[u as usize].entry(v).or_insert(0) += w;
            *g.in_adj[v as usize].entry(u).or_insert(0) += w;
        }
        g
    }

    /// An edgeless graph with `n` (isolated) vertices — the warm-restart
    /// path rebuilds the twin from a persisted snapshot's vertex count plus
    /// its edge list, preserving trailing isolated ids.
    pub fn with_vertices(n: usize) -> Self {
        Self {
            out_adj: vec![BTreeMap::new(); n],
            in_adj: vec![BTreeMap::new(); n],
        }
    }

    /// Current vertex count.
    pub fn num_vertices(&self) -> usize {
        self.out_adj.len()
    }

    /// Current distinct directed edge count.
    pub fn num_edges(&self) -> usize {
        self.out_adj.iter().map(BTreeMap::len).sum()
    }

    fn grow_to(&mut self, n: usize) {
        if n > self.out_adj.len() {
            self.out_adj.resize(n, BTreeMap::new());
            self.in_adj.resize(n, BTreeMap::new());
        }
    }

    /// Apply one mutation, appending every vertex whose incident structure
    /// changed to `dirty`.
    pub fn apply(&mut self, m: &Mutation, dirty: &mut Vec<Vertex>) {
        match *m {
            Mutation::AddEdge { from, to, weight } => {
                self.grow_to(from.max(to) as usize + 1);
                *self.out_adj[from as usize].entry(to).or_insert(0) += weight.max(1);
                *self.in_adj[to as usize].entry(from).or_insert(0) += weight.max(1);
                dirty.push(from);
                dirty.push(to);
            }
            Mutation::RemoveEdge { from, to } => {
                if let Some(row) = self.out_adj.get_mut(from as usize) {
                    if row.remove(&to).is_some() {
                        self.in_adj[to as usize].remove(&from);
                        dirty.push(from);
                        dirty.push(to);
                    }
                }
            }
            Mutation::AddVertices { count } => {
                let start = self.out_adj.len();
                self.grow_to(start + count);
                dirty.extend((start..start + count).map(|v| v as Vertex));
            }
            Mutation::RemoveVertex { vertex } => {
                let v = vertex as usize;
                if v >= self.out_adj.len() {
                    return;
                }
                let outs: Vec<Vertex> = self.out_adj[v].keys().copied().collect();
                let ins: Vec<Vertex> = self.in_adj[v].keys().copied().collect();
                for t in outs {
                    self.in_adj[t as usize].remove(&vertex);
                    dirty.push(t);
                }
                for s in ins {
                    self.out_adj[s as usize].remove(&vertex);
                    dirty.push(s);
                }
                self.out_adj[v].clear();
                self.in_adj[v].clear();
                dirty.push(vertex);
            }
        }
    }

    /// Rebuild the immutable CSR the refinement loop runs on.
    pub fn build_csr(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.num_vertices(), self.num_edges());
        for (u, row) in self.out_adj.iter().enumerate() {
            for (&v, &w) in row {
                b.add_edge_weighted(u as Vertex, v, w);
            }
        }
        b.build()
    }
}

/// Per-block aggregates published with each snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockStats {
    /// Vertices in the block.
    pub size: usize,
    /// Total out-degree (edge weight leaving the block's vertices).
    pub d_out: u64,
    /// Total in-degree.
    pub d_in: u64,
}

/// One immutable published state: everything a read query can be answered
/// from. Swapped whole — a reader either sees all of epoch `e` or all of
/// epoch `e+1`, never a mix.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Monotonic publication counter (0 = the initial full run).
    pub epoch: u64,
    /// Mutation sequence number this snapshot reflects (every batch with
    /// `seq <= applied_seq` is folded in).
    pub applied_seq: u64,
    /// The graph this partition was refined on.
    pub graph: Arc<Graph>,
    /// Community of each vertex, labels compacted to `0..num_blocks`.
    pub assignment: Arc<Vec<Block>>,
    /// Occupied community count.
    pub num_blocks: usize,
    /// Description length of the partition.
    pub mdl: f64,
    /// MDL normalized by the null model (NaN for an edgeless graph).
    pub normalized_mdl: f64,
    /// Per-block aggregates, indexed by block id.
    pub blocks: Arc<Vec<BlockStats>>,
    /// True when the refinement producing this snapshot was truncated by a
    /// budget or a cancellation (the partition is consistent but not
    /// converged; a later round will resume it).
    pub truncated: bool,
}

impl Snapshot {
    /// Build a snapshot by evaluating `assignment` on `graph`.
    pub fn evaluate(
        epoch: u64,
        applied_seq: u64,
        graph: Arc<Graph>,
        assignment: Vec<Block>,
        num_blocks: usize,
        truncated: bool,
    ) -> Self {
        let n = graph.num_vertices();
        if n == 0 {
            return Snapshot {
                epoch,
                applied_seq,
                graph,
                assignment: Arc::new(Vec::new()),
                num_blocks: 0,
                mdl: 0.0,
                normalized_mdl: f64::NAN,
                blocks: Arc::new(Vec::new()),
                truncated,
            };
        }
        let bm = Blockmodel::from_assignment(&graph, assignment, num_blocks.max(1));
        let m = mdl::mdl(&bm, n, graph.total_weight());
        let null = mdl::mdl(
            &Blockmodel::from_assignment(&graph, vec![0; n], 1),
            n,
            graph.total_weight(),
        );
        let blocks: Vec<BlockStats> = (0..bm.num_blocks())
            .map(|b| BlockStats {
                size: bm.block_size(b as Block) as usize,
                d_out: bm.d_out(b as Block),
                d_in: bm.d_in(b as Block),
            })
            .collect();
        Snapshot {
            epoch,
            applied_seq,
            graph,
            assignment: Arc::new(bm.assignment().to_vec()),
            num_blocks: num_blocks.max(1),
            mdl: m.total,
            normalized_mdl: m.total / null.total,
            blocks: Arc::new(blocks),
            truncated,
        }
    }
}

/// The epoch-swapped handle: readers `load()` an `Arc<Snapshot>` and work
/// off it for as long as they like; the refinement driver `publish()`es a
/// replacement. The lock is held only for the pointer swap.
#[derive(Debug)]
pub struct StateHandle {
    current: RwLock<Arc<Snapshot>>,
}

impl StateHandle {
    /// Create a handle publishing `initial`.
    pub fn new(initial: Snapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The latest published snapshot.
    pub fn load(&self) -> Arc<Snapshot> {
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            // A poisoned lock means a publisher panicked mid-swap; the Arc
            // inside is still whole (swaps are atomic assignments), so keep
            // serving the last good snapshot.
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Swap in a new snapshot (refinement driver only).
    pub fn publish(&self, snapshot: Snapshot) {
        let next = Arc::new(snapshot);
        match self.current.write() {
            Ok(mut guard) => *guard = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn mutations_roundtrip_through_csr() {
        let mut g = EvolvingGraph::default();
        let mut dirty = Vec::new();
        g.apply(
            &Mutation::AddEdge {
                from: 0,
                to: 2,
                weight: 3,
            },
            &mut dirty,
        );
        g.apply(
            &Mutation::AddEdge {
                from: 2,
                to: 1,
                weight: 1,
            },
            &mut dirty,
        );
        assert_eq!(g.num_vertices(), 3);
        let csr = g.build_csr();
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.total_weight(), 4);
        g.apply(&Mutation::RemoveEdge { from: 0, to: 2 }, &mut dirty);
        assert_eq!(g.build_csr().total_weight(), 1);
        g.apply(&Mutation::RemoveVertex { vertex: 2 }, &mut dirty);
        assert_eq!(g.build_csr().total_weight(), 0);
        assert_eq!(g.num_vertices(), 3, "ids are stable after removal");
        assert!(dirty.contains(&1), "edge endpoints marked dirty");
    }

    #[test]
    fn duplicate_add_edge_accumulates_weight() {
        let mut g = EvolvingGraph::default();
        let mut dirty = Vec::new();
        for _ in 0..3 {
            g.apply(
                &Mutation::AddEdge {
                    from: 0,
                    to: 1,
                    weight: 2,
                },
                &mut dirty,
            );
        }
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.build_csr().total_weight(), 6);
    }

    #[test]
    fn rebuild_is_deterministic() {
        let mut g = EvolvingGraph::default();
        let mut dirty = Vec::new();
        for i in 0..50u32 {
            g.apply(
                &Mutation::AddEdge {
                    from: i % 7,
                    to: (i * 3) % 11,
                    weight: 1 + u64::from(i % 3),
                },
                &mut dirty,
            );
        }
        let a: Vec<_> = g.build_csr().edges().collect();
        let b: Vec<_> = g.clone().build_csr().edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_swap_is_atomic_per_reader() {
        let g = Arc::new(Graph::from_edges(3, &[(0, 1), (1, 2)]));
        let handle = StateHandle::new(Snapshot::evaluate(
            0,
            0,
            Arc::clone(&g),
            vec![0, 0, 1],
            2,
            false,
        ));
        let before = handle.load();
        handle.publish(Snapshot::evaluate(1, 3, g, vec![0, 1, 1], 2, false));
        // The old Arc is still fully intact for the reader that loaded it.
        assert_eq!(before.epoch, 0);
        assert_eq!(*before.assignment, vec![0, 0, 1]);
        let after = handle.load();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.applied_seq, 3);
        assert_eq!(after.blocks.len(), 2);
        assert_eq!(after.blocks[0].size, 1);
    }
}
