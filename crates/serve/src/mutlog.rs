//! The mutation log: the rendezvous between connection threads (producers)
//! and the refinement driver (the single consumer).
//!
//! Appending a batch bumps the sequence counter, **cancels the in-flight
//! refinement token** (so the driver abandons the now-stale round within
//! one `VERTEX_CHECK_STRIDE` of proposals), and wakes the driver. `flush`
//! support: any thread can block until a given sequence number has been
//! folded into a published snapshot.

use hsbp_core::CancelToken;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::state::Mutation;

#[derive(Debug, Default)]
struct LogInner {
    queue: Vec<Mutation>,
    /// Highest sequence number handed out to an enqueued batch.
    seq_enqueued: u64,
    /// Highest sequence number folded into a published snapshot.
    seq_applied: u64,
    /// Token guarding the refinement round currently in flight, if any.
    active_token: Option<CancelToken>,
    /// Rounds interrupted by a newer batch (served as `status.cancellations`).
    cancellations: u64,
    /// True once the server is shutting down; wakes every waiter.
    closed: bool,
}

/// Shared mutation log (wrap in `Arc`).
#[derive(Debug, Default)]
pub struct MutationLog {
    inner: Mutex<LogInner>,
    cond: Condvar,
}

impl MutationLog {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, LogInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueue a batch; returns its sequence number. Cancels any refinement
    /// round in flight so the driver restarts against the newest topology.
    pub fn append(&self, batch: Vec<Mutation>) -> u64 {
        let mut inner = self.lock();
        inner.queue.extend(batch);
        inner.seq_enqueued += 1;
        if let Some(token) = inner.active_token.take() {
            if !token.is_cancelled() {
                token.cancel();
                inner.cancellations += 1;
            }
        }
        let seq = inner.seq_enqueued;
        self.cond.notify_all();
        seq
    }

    /// Driver: block until mutations are pending (or the log closes).
    /// Returns the drained batch and the sequence number the resulting
    /// snapshot will satisfy, or `None` on shutdown with an empty queue.
    pub fn wait_drain(&self) -> Option<(Vec<Mutation>, u64)> {
        let mut inner = self.lock();
        loop {
            if !inner.queue.is_empty() {
                let batch = std::mem::take(&mut inner.queue);
                return Some((batch, inner.seq_enqueued));
            }
            if inner.closed {
                return None;
            }
            inner = match self.cond.wait_timeout(inner, Duration::from_millis(200)) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Driver: register the token guarding the round about to run, so a
    /// later `append` can cancel it. Returns false when a batch raced in
    /// after the drain — the round is stale before it starts, skip it.
    pub fn arm(&self, token: &CancelToken) -> bool {
        let mut inner = self.lock();
        if !inner.queue.is_empty() {
            return false;
        }
        inner.active_token = Some(token.clone());
        true
    }

    /// Driver: the round finished (published or abandoned); disarm.
    pub fn disarm(&self) {
        self.lock().active_token = None;
    }

    /// Driver: a snapshot covering everything up to `seq` was published.
    pub fn mark_applied(&self, seq: u64) {
        let mut inner = self.lock();
        if seq > inner.seq_applied {
            inner.seq_applied = seq;
        }
        self.cond.notify_all();
    }

    /// Block until `seq` is folded into a published snapshot (true) or the
    /// log closes first (false).
    pub fn wait_applied(&self, seq: u64) -> bool {
        let mut inner = self.lock();
        loop {
            if inner.seq_applied >= seq {
                return true;
            }
            if inner.closed {
                return false;
            }
            inner = match self.cond.wait_timeout(inner, Duration::from_millis(200)) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Wake every waiter and stop accepting refinement rounds.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        if let Some(token) = inner.active_token.take() {
            token.cancel();
        }
        self.cond.notify_all();
    }

    /// (pending batch count, enqueued seq, applied seq, cancellations).
    pub fn stats(&self) -> (usize, u64, u64, u64) {
        let inner = self.lock();
        (
            inner.queue.len(),
            inner.seq_enqueued,
            inner.seq_applied,
            inner.cancellations,
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn append_assigns_increasing_seq_and_cancels_active() {
        let log = MutationLog::new();
        let token = CancelToken::new();
        assert!(log.arm(&token));
        let s1 = log.append(vec![Mutation::AddVertices { count: 1 }]);
        assert_eq!(s1, 1);
        assert!(token.is_cancelled(), "append cancels the armed round");
        let (_, _, _, cancels) = log.stats();
        assert_eq!(cancels, 1);
        // Arming while a batch is pending is refused.
        let token2 = CancelToken::new();
        assert!(!log.arm(&token2));
    }

    #[test]
    fn wait_applied_blocks_until_marked() {
        let log = Arc::new(MutationLog::new());
        let seq = log.append(vec![Mutation::AddVertices { count: 2 }]);
        let waiter = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_applied(seq))
        };
        let (batch, drained_seq) = log.wait_drain().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(drained_seq, seq);
        log.mark_applied(drained_seq);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn close_releases_waiters() {
        let log = Arc::new(MutationLog::new());
        let waiter = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_applied(5))
        };
        let drainer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_drain())
        };
        log.close();
        assert!(!waiter.join().unwrap());
        assert!(drainer.join().unwrap().is_none());
    }
}
