//! The mutation log: the rendezvous between connection threads (producers)
//! and the refinement driver (the single consumer).
//!
//! Appending a batch bumps the sequence counter, **cancels the in-flight
//! refinement token** (so the driver abandons the now-stale round within
//! one `VERTEX_CHECK_STRIDE` of proposals), and wakes the driver. `flush`
//! support: any thread can block until a given sequence number has been
//! folded into a published snapshot.

use hsbp_core::CancelToken;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::state::Mutation;

/// Why a bounded append was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendError {
    /// The enqueued-but-unapplied backlog would exceed the bound — the
    /// client should back off and retry; the connection stays usable.
    Busy {
        /// Mutations currently enqueued but not yet folded into a snapshot.
        pending: usize,
        /// The configured `--max-pending` bound.
        max: usize,
    },
    /// The daemon is shutting down; no further mutations are accepted.
    ShuttingDown,
}

#[derive(Debug, Default)]
struct LogInner {
    queue: Vec<Mutation>,
    /// Highest sequence number handed out to an enqueued batch.
    seq_enqueued: u64,
    /// Highest sequence number folded into a published snapshot.
    seq_applied: u64,
    /// `(seq, mutation_count)` of every enqueued-but-unapplied batch, in
    /// sequence order — the back-pressure backlog. Entries are popped when
    /// `mark_applied` covers their sequence (the driver drains the queue
    /// instantly, so `queue.len()` alone under-counts the real backlog).
    pending_sizes: Vec<(u64, usize)>,
    /// Token guarding the refinement round currently in flight, if any.
    active_token: Option<CancelToken>,
    /// Rounds interrupted by a newer batch (served as `status.cancellations`).
    cancellations: u64,
    /// True once the server is shutting down; wakes every waiter.
    closed: bool,
}

impl LogInner {
    /// Mutations enqueued but not yet reflected in a published snapshot.
    fn depth(&self) -> usize {
        self.pending_sizes.iter().map(|&(_, n)| n).sum()
    }
}

/// Shared mutation log (wrap in `Arc`).
#[derive(Debug, Default)]
pub struct MutationLog {
    inner: Mutex<LogInner>,
    cond: Condvar,
}

impl MutationLog {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, LogInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueue a batch; returns its sequence number. Cancels any refinement
    /// round in flight so the driver restarts against the newest topology.
    pub fn append(&self, batch: Vec<Mutation>) -> u64 {
        let mut inner = self.lock();
        Self::enqueue_locked(&mut inner, &self.cond, batch)
    }

    /// Bounded enqueue: refuse with [`AppendError::Busy`] when the
    /// enqueued-but-unapplied backlog would exceed `max_pending` mutations
    /// (`0` = unbounded), and with [`AppendError::ShuttingDown`] once the
    /// log is closed. On success, behaves exactly like [`Self::append`].
    pub fn try_append(&self, batch: Vec<Mutation>, max_pending: usize) -> Result<u64, AppendError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(AppendError::ShuttingDown);
        }
        let pending = inner.depth();
        if max_pending > 0 && pending + batch.len() > max_pending {
            return Err(AppendError::Busy {
                pending,
                max: max_pending,
            });
        }
        Ok(Self::enqueue_locked(&mut inner, &self.cond, batch))
    }

    fn enqueue_locked(inner: &mut LogInner, cond: &Condvar, batch: Vec<Mutation>) -> u64 {
        inner.seq_enqueued += 1;
        let seq = inner.seq_enqueued;
        inner.pending_sizes.push((seq, batch.len()));
        inner.queue.extend(batch);
        if let Some(token) = inner.active_token.take() {
            if !token.is_cancelled() {
                token.cancel();
                inner.cancellations += 1;
            }
        }
        cond.notify_all();
        seq
    }

    /// The sequence number the *next* append will receive. Meaningful to
    /// the durable append path only, which serialises every producer
    /// through one WAL lock — the WAL record for a batch is written under
    /// this predicted sequence *before* the batch is enqueued.
    pub fn next_seq(&self) -> u64 {
        self.lock().seq_enqueued + 1
    }

    /// Warm restart: adopt `seq` as both the enqueued and applied sequence,
    /// so post-recovery appends continue the WAL's numbering instead of
    /// restarting from 1. Only valid on an idle log (nothing queued).
    pub fn reset_seq(&self, seq: u64) {
        let mut inner = self.lock();
        debug_assert!(inner.queue.is_empty(), "reset_seq on a non-idle log");
        inner.seq_enqueued = seq;
        inner.seq_applied = seq;
        inner.pending_sizes.clear();
    }

    /// Mutations enqueued but not yet folded into a published snapshot
    /// (served as `status.queue_depth`).
    pub fn queue_depth(&self) -> usize {
        self.lock().depth()
    }

    /// Driver: block until mutations are pending (or the log closes).
    /// Returns the drained batch and the sequence number the resulting
    /// snapshot will satisfy, or `None` on shutdown with an empty queue.
    pub fn wait_drain(&self) -> Option<(Vec<Mutation>, u64)> {
        let mut inner = self.lock();
        loop {
            if !inner.queue.is_empty() {
                let batch = std::mem::take(&mut inner.queue);
                return Some((batch, inner.seq_enqueued));
            }
            if inner.closed {
                return None;
            }
            inner = match self.cond.wait_timeout(inner, Duration::from_millis(200)) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Driver: register the token guarding the round about to run, so a
    /// later `append` can cancel it. Returns false when a batch raced in
    /// after the drain — the round is stale before it starts, skip it.
    pub fn arm(&self, token: &CancelToken) -> bool {
        let mut inner = self.lock();
        if !inner.queue.is_empty() {
            return false;
        }
        inner.active_token = Some(token.clone());
        true
    }

    /// Driver: the round finished (published or abandoned); disarm.
    pub fn disarm(&self) {
        self.lock().active_token = None;
    }

    /// Driver: a snapshot covering everything up to `seq` was published.
    pub fn mark_applied(&self, seq: u64) {
        let mut inner = self.lock();
        if seq > inner.seq_applied {
            inner.seq_applied = seq;
        }
        inner.pending_sizes.retain(|&(s, _)| s > seq);
        self.cond.notify_all();
    }

    /// Block until `seq` is folded into a published snapshot (true) or the
    /// log closes first (false).
    pub fn wait_applied(&self, seq: u64) -> bool {
        let mut inner = self.lock();
        loop {
            if inner.seq_applied >= seq {
                return true;
            }
            if inner.closed {
                return false;
            }
            inner = match self.cond.wait_timeout(inner, Duration::from_millis(200)) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Wake every waiter and stop accepting refinement rounds.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        if let Some(token) = inner.active_token.take() {
            token.cancel();
        }
        self.cond.notify_all();
    }

    /// (pending batch count, enqueued seq, applied seq, cancellations).
    pub fn stats(&self) -> (usize, u64, u64, u64) {
        let inner = self.lock();
        (
            inner.queue.len(),
            inner.seq_enqueued,
            inner.seq_applied,
            inner.cancellations,
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn append_assigns_increasing_seq_and_cancels_active() {
        let log = MutationLog::new();
        let token = CancelToken::new();
        assert!(log.arm(&token));
        let s1 = log.append(vec![Mutation::AddVertices { count: 1 }]);
        assert_eq!(s1, 1);
        assert!(token.is_cancelled(), "append cancels the armed round");
        let (_, _, _, cancels) = log.stats();
        assert_eq!(cancels, 1);
        // Arming while a batch is pending is refused.
        let token2 = CancelToken::new();
        assert!(!log.arm(&token2));
    }

    #[test]
    fn wait_applied_blocks_until_marked() {
        let log = Arc::new(MutationLog::new());
        let seq = log.append(vec![Mutation::AddVertices { count: 2 }]);
        let waiter = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_applied(seq))
        };
        let (batch, drained_seq) = log.wait_drain().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(drained_seq, seq);
        log.mark_applied(drained_seq);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn arm_after_append_is_refused_until_drained() {
        // The stale-round race: a batch lands *between* the driver's drain
        // and its arm. Arming must fail so the driver restarts against the
        // merged topology instead of refining a stale graph.
        let log = MutationLog::new();
        log.append(vec![Mutation::AddVertices { count: 1 }]);
        let (_, seq) = log.wait_drain().unwrap();
        log.append(vec![Mutation::AddVertices { count: 1 }]); // races in
        assert!(
            !log.arm(&CancelToken::new()),
            "arm after a racing append must report the round stale"
        );
        // After draining the racer, arming succeeds again.
        let (_, seq2) = log.wait_drain().unwrap();
        assert_eq!(seq2, seq + 1);
        assert!(log.arm(&CancelToken::new()));
    }

    #[test]
    fn double_cancel_counts_once() {
        // Two appends landing on one armed round: the first cancels the
        // token, the second sees it already cancelled (or already taken)
        // and must not double-count the cancellation.
        let log = MutationLog::new();
        let token = CancelToken::new();
        assert!(log.arm(&token));
        token.cancel(); // external cancel (e.g. shutdown) beat the append
        log.append(vec![Mutation::AddVertices { count: 1 }]);
        log.append(vec![Mutation::AddVertices { count: 1 }]);
        let (_, _, _, cancels) = log.stats();
        assert_eq!(cancels, 0, "an already-cancelled token is not re-counted");

        let token2 = CancelToken::new();
        log.disarm();
        // Queue is non-empty so arm is refused; cancellations stay put.
        assert!(!log.arm(&token2));
        log.append(vec![Mutation::AddVertices { count: 1 }]);
        let (_, _, _, cancels) = log.stats();
        assert_eq!(cancels, 0, "appends with no armed token cancel nothing");
    }

    #[test]
    fn flush_while_cancelled_round_still_completes() {
        // A flush waiter must be released by the *final* mark_applied even
        // when the round it first waited on was cancelled and re-run.
        let log = Arc::new(MutationLog::new());
        let s1 = log.append(vec![Mutation::AddVertices { count: 1 }]);
        let waiter = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_applied(s1))
        };
        let (_, _) = log.wait_drain().unwrap();
        let token = CancelToken::new();
        assert!(log.arm(&token));
        // A newer batch cancels the armed round before it publishes.
        let s2 = log.append(vec![Mutation::AddVertices { count: 1 }]);
        assert!(token.is_cancelled());
        log.disarm();
        // The driver re-drains and publishes a snapshot covering both.
        let (_, seq) = log.wait_drain().unwrap();
        assert_eq!(seq, s2);
        log.mark_applied(seq);
        assert!(
            waiter.join().unwrap(),
            "flush released despite cancellation"
        );
    }

    #[test]
    fn try_append_enforces_the_pending_bound() {
        let log = MutationLog::new();
        let s1 = log
            .try_append(vec![Mutation::AddVertices { count: 1 }; 3], 4)
            .unwrap();
        assert_eq!(s1, 1);
        assert_eq!(log.queue_depth(), 3);
        // 3 pending + 2 incoming > 4: refused, backlog unchanged.
        match log.try_append(vec![Mutation::AddVertices { count: 1 }; 2], 4) {
            Err(AppendError::Busy { pending, max }) => {
                assert_eq!((pending, max), (3, 4));
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(log.queue_depth(), 3);
        // The backlog counts until mark_applied, not until drain.
        let (_, seq) = log.wait_drain().unwrap();
        assert_eq!(log.queue_depth(), 3, "drained but unapplied still pends");
        log.mark_applied(seq);
        assert_eq!(log.queue_depth(), 0);
        log.try_append(vec![Mutation::AddVertices { count: 1 }; 2], 4)
            .unwrap();
        // Zero bound = unbounded.
        log.try_append(vec![Mutation::AddVertices { count: 1 }; 100], 0)
            .unwrap();
        log.close();
        assert_eq!(
            log.try_append(vec![Mutation::AddVertices { count: 1 }], 0),
            Err(AppendError::ShuttingDown)
        );
    }

    #[test]
    fn reset_seq_continues_wal_numbering() {
        let log = MutationLog::new();
        log.reset_seq(17);
        assert_eq!(log.next_seq(), 18);
        let seq = log.append(vec![Mutation::AddVertices { count: 1 }]);
        assert_eq!(seq, 18);
        let (_, _, applied, _) = log.stats();
        assert_eq!(applied, 17, "recovered sequence counts as applied");
    }

    #[test]
    fn close_releases_waiters() {
        let log = Arc::new(MutationLog::new());
        let waiter = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_applied(5))
        };
        let drainer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_drain())
        };
        log.close();
        assert!(!waiter.join().unwrap());
        assert!(drainer.join().unwrap().is_none());
    }
}
