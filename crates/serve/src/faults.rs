//! Deterministic fault injection for the serve durability path — the PR 2
//! shard fault-plan idea extended to the daemon, so crash recovery is
//! tested by plan, not by luck.
//!
//! Grammar (comma-separated actions, each at most once):
//!
//! ```text
//! crash-after-wal:SEQ        crash right after the WAL append for batch SEQ
//!                            (the record is durable, the client never got
//!                            the ack — recovery must replay it)
//! torn-write:SEQ             write only a prefix of batch SEQ's WAL record,
//!                            then crash (recovery must drop the tear whole)
//! crash-before-rename:NTH    crash after the NTH snapshot file (1-based) is
//!                            fully written but before the atomic rename
//!                            (the previous snapshot must survive)
//! slow-apply:SEQ=MS          sleep MS milliseconds in the refinement driver
//!                            before applying the round containing batch SEQ
//!                            (back-pressure window for `busy` tests)
//! ```
//!
//! "Crash" is configurable: the CLI daemon dies hard (`process::abort`,
//! what the CI crash-recovery job exercises), while in-process tests use a
//! soft crash — the daemon stops acknowledging and shuts down *without*
//! the clean-shutdown snapshot, exactly the state a hard kill leaves on
//! disk.

use std::fmt;

/// One parsed serve fault plan. The empty plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    /// Crash immediately after the WAL append for this batch sequence.
    pub crash_after_wal: Option<u64>,
    /// Write a torn WAL record for this batch sequence, then crash.
    pub torn_write: Option<u64>,
    /// Crash before the atomic rename of the Nth (1-based) snapshot save.
    pub crash_before_rename: Option<u64>,
    /// `(seq, millis)`: delay the driver before applying this sequence.
    pub slow_apply: Option<(u64, u64)>,
}

impl ServeFaultPlan {
    /// The plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Parse the `--fault-plan` grammar (module docs). Duplicate actions
    /// and malformed numbers are rejected.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (action, value) = part
                .split_once(':')
                .ok_or_else(|| format!("`{part}`: expected `action:value`"))?;
            let parse_u64 = |text: &str, what: &str| -> Result<u64, String> {
                text.trim()
                    .parse()
                    .map_err(|_| format!("`{part}`: {what} must be a non-negative integer"))
            };
            match action.trim() {
                "crash-after-wal" => {
                    if plan.crash_after_wal.is_some() {
                        return Err(format!("`{part}`: duplicate crash-after-wal"));
                    }
                    plan.crash_after_wal = Some(parse_u64(value, "SEQ")?);
                }
                "torn-write" => {
                    if plan.torn_write.is_some() {
                        return Err(format!("`{part}`: duplicate torn-write"));
                    }
                    plan.torn_write = Some(parse_u64(value, "SEQ")?);
                }
                "crash-before-rename" => {
                    if plan.crash_before_rename.is_some() {
                        return Err(format!("`{part}`: duplicate crash-before-rename"));
                    }
                    let nth = parse_u64(value, "NTH")?;
                    if nth == 0 {
                        return Err(format!("`{part}`: NTH is 1-based"));
                    }
                    plan.crash_before_rename = Some(nth);
                }
                "slow-apply" => {
                    if plan.slow_apply.is_some() {
                        return Err(format!("`{part}`: duplicate slow-apply"));
                    }
                    let (seq, ms) = value
                        .split_once('=')
                        .ok_or_else(|| format!("`{part}`: expected slow-apply:SEQ=MS"))?;
                    plan.slow_apply = Some((parse_u64(seq, "SEQ")?, parse_u64(ms, "MS")?));
                }
                other => return Err(format!("unknown fault action `{other}`")),
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for ServeFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            Ok(())
        };
        if let Some(seq) = self.crash_after_wal {
            sep(f)?;
            write!(f, "crash-after-wal:{seq}")?;
        }
        if let Some(seq) = self.torn_write {
            sep(f)?;
            write!(f, "torn-write:{seq}")?;
        }
        if let Some(nth) = self.crash_before_rename {
            sep(f)?;
            write!(f, "crash-before-rename:{nth}")?;
        }
        if let Some((seq, ms)) = self.slow_apply {
            sep(f)?;
            write!(f, "slow-apply:{seq}={ms}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_action_and_roundtrips() {
        let spec = "crash-after-wal:3,torn-write:5,crash-before-rename:2,slow-apply:1=250";
        let plan = ServeFaultPlan::parse(spec).unwrap();
        assert_eq!(plan.crash_after_wal, Some(3));
        assert_eq!(plan.torn_write, Some(5));
        assert_eq!(plan.crash_before_rename, Some(2));
        assert_eq!(plan.slow_apply, Some((1, 250)));
        assert_eq!(plan.to_string(), spec, "Display round-trips the grammar");
        assert_eq!(ServeFaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(ServeFaultPlan::parse("").unwrap().is_empty());
        assert!(ServeFaultPlan::none().is_empty());
        assert_eq!(ServeFaultPlan::none().to_string(), "");
        assert!(!ServeFaultPlan::parse("slow-apply:2=10").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "crash-after-wal",
            "crash-after-wal:x",
            "torn-write:",
            "crash-before-rename:0",
            "slow-apply:3",
            "slow-apply:3=fast",
            "explode:1",
            "crash-after-wal:1,crash-after-wal:2",
        ] {
            assert!(ServeFaultPlan::parse(bad).is_err(), "`{bad}` should fail");
        }
    }
}
