//! Snapshot persistence and warm restart for the daemon.
//!
//! A serve state directory follows the PR 2 checkpoint run-dir pattern —
//! plain text files, written to a temporary sibling and atomically renamed
//! into place, with a `meta.txt` pinning the run identity:
//!
//! ```text
//! state-dir/
//!   meta.txt       "hsbp-serve-state v1" + seed + variant
//!   snapshot.txt   the last persisted Snapshot (graph + assignment +
//!                  epoch + applied sequence), atomically renamed
//!   wal.log        the mutation WAL tail since that snapshot
//! ```
//!
//! Warm restart ([`StateDir::recover`]) loads the snapshot, then replays
//! the WAL records with `seq > applied_seq` — strictly in increasing
//! sequence order, so replaying the same log twice (or a log that still
//! holds records a snapshot already covers) is idempotent: duplicates are
//! skipped by sequence, never re-applied. A torn final WAL record is
//! detected by [`crate::wal::replay`] and dropped whole.

use crate::state::{EvolvingGraph, Mutation, Snapshot};
use crate::wal;
use hsbp_blockmodel::Block;
use hsbp_core::{HsbpError, SbpConfig};
use hsbp_graph::{Vertex, Weight};
use std::io::Write;
use std::path::{Path, PathBuf};

const META_FILE: &str = "meta.txt";
const SNAPSHOT_FILE: &str = "snapshot.txt";
const WAL_FILE: &str = "wal.log";
const FORMAT_HEADER: &str = "hsbp-serve-state v1";

fn state_err(path: &Path, message: impl Into<String>) -> HsbpError {
    HsbpError::Checkpoint {
        path: path.display().to_string(),
        message: message.into(),
    }
}

/// Write `content` to `path` via a temporary sibling + fsync + rename, so
/// a kill mid-write never leaves a torn file where readers look.
fn write_atomic(path: &Path, content: &str) -> Result<(), HsbpError> {
    let tmp = path.with_extension("tmp");
    let mut file =
        std::fs::File::create(&tmp).map_err(|e| state_err(&tmp, format!("create: {e}")))?;
    file.write_all(content.as_bytes())
        .and_then(|()| file.sync_all())
        .map_err(|e| state_err(&tmp, format!("write: {e}")))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| state_err(path, format!("rename: {e}")))
}

/// The snapshot state loaded back from disk.
#[derive(Debug)]
pub struct PersistedSnapshot {
    /// Publication epoch the snapshot carried.
    pub epoch: u64,
    /// Mutation sequence the snapshot covers.
    pub applied_seq: u64,
    /// The mutable graph twin rebuilt from the stored edges.
    pub egraph: EvolvingGraph,
    /// Stored community labels (compacted).
    pub assignment: Vec<Block>,
    /// Stored occupied community count.
    pub num_blocks: usize,
}

/// Everything a warm restart needs: the persisted snapshot state plus the
/// WAL tail still to be replayed through refinement.
#[derive(Debug)]
pub struct Recovery {
    /// The snapshot state (graph twin, labels, epoch, sequence).
    pub snapshot: PersistedSnapshot,
    /// WAL records with `seq > applied_seq`, strictly increasing, ready to
    /// re-apply one refinement round each.
    pub tail: Vec<(u64, Vec<Mutation>)>,
    /// True when a torn final WAL record was detected and dropped.
    pub torn_tail_dropped: bool,
    /// Byte offset of the last good WAL record (where appends resume).
    pub wal_good_bytes: u64,
    /// WAL records skipped because a snapshot already covered their
    /// sequence (or the sequence was out of order) — the idempotence guard.
    pub skipped_duplicates: usize,
}

/// A serve state directory (layout in the module docs).
#[derive(Debug)]
pub struct StateDir {
    dir: PathBuf,
}

fn meta_content(cfg: &SbpConfig) -> String {
    format!(
        "{FORMAT_HEADER}\nseed {}\nvariant {}\n",
        cfg.seed,
        cfg.variant.name()
    )
}

impl StateDir {
    /// Open `dir` as a serve state directory for `cfg`, creating and
    /// initialising it when empty or absent. An existing directory must
    /// carry a matching `meta.txt`: warm-starting a partition refined
    /// under a different seed or variant would silently break the
    /// recovery-determinism guarantee, so a mismatch is refused.
    pub fn open_or_create(dir: impl Into<PathBuf>, cfg: &SbpConfig) -> Result<Self, HsbpError> {
        let dir = dir.into();
        let meta_path = dir.join(META_FILE);
        let expected = meta_content(cfg);
        if meta_path.exists() {
            let found = std::fs::read_to_string(&meta_path)
                .map_err(|e| state_err(&meta_path, format!("read: {e}")))?;
            if found != expected {
                return Err(state_err(
                    &meta_path,
                    "state identity mismatch (different seed or variant); \
                     refusing to warm-start",
                ));
            }
        } else {
            std::fs::create_dir_all(&dir).map_err(|e| state_err(&dir, format!("create: {e}")))?;
            write_atomic(&meta_path, &expected)?;
        }
        Ok(Self { dir })
    }

    /// The state directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the WAL file inside the directory.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Path of the snapshot file inside the directory.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Serialise `snapshot` and atomically rename it into place.
    /// `before_rename` is the fault-injection hook: it runs after the
    /// temporary file is fully written but before the rename. Returning
    /// `false` simulates a crash at that point — the rename is skipped and
    /// the previous snapshot must stay intact (pass `|| true` normally).
    pub fn save_snapshot(
        &self,
        snapshot: &Snapshot,
        before_rename: impl FnOnce() -> bool,
    ) -> Result<(), HsbpError> {
        let path = self.snapshot_path();
        let mut content = String::new();
        content.push_str("hsbp-serve-snapshot v1\n");
        content.push_str(&format!("epoch {}\n", snapshot.epoch));
        content.push_str(&format!("applied_seq {}\n", snapshot.applied_seq));
        content.push_str(&format!(
            "vertices {}\nnum_blocks {}\n",
            snapshot.graph.num_vertices(),
            snapshot.num_blocks
        ));
        content.push_str("assignment");
        for b in snapshot.assignment.iter() {
            content.push(' ');
            content.push_str(&b.to_string());
        }
        content.push('\n');
        let edges: Vec<(Vertex, Vertex, Weight)> = snapshot.graph.edges().collect();
        content.push_str(&format!("edges {}\n", edges.len()));
        for (u, v, w) in edges {
            content.push_str(&format!("{u} {v} {w}\n"));
        }

        let tmp = path.with_extension("tmp");
        let mut file =
            std::fs::File::create(&tmp).map_err(|e| state_err(&tmp, format!("create: {e}")))?;
        file.write_all(content.as_bytes())
            .and_then(|()| file.sync_all())
            .map_err(|e| state_err(&tmp, format!("write: {e}")))?;
        drop(file);
        if !before_rename() {
            return Ok(()); // injected crash: the rename never happens
        }
        std::fs::rename(&tmp, &path).map_err(|e| state_err(&path, format!("rename: {e}")))
    }

    /// Load the persisted snapshot, or `None` when the directory has never
    /// snapshotted (fresh start). Malformed files are a hard error — the
    /// atomic rename means a torn snapshot can only be operator damage.
    pub fn load_snapshot(&self) -> Result<Option<PersistedSnapshot>, HsbpError> {
        let path = self.snapshot_path();
        if !path.exists() {
            return Ok(None);
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| state_err(&path, format!("read: {e}")))?;
        let bad = |what: &str| state_err(&path, format!("malformed snapshot: {what}"));
        let mut lines = text.lines();
        if lines.next() != Some("hsbp-serve-snapshot v1") {
            return Err(bad("missing header"));
        }
        let mut kv_u64 = |key: &str| -> Result<u64, HsbpError> {
            let line = lines.next().ok_or_else(|| bad(&format!("missing {key}")))?;
            match line.split_once(' ') {
                Some((k, v)) if k == key => v.parse().map_err(|_| bad(&format!("bad {key}"))),
                _ => Err(bad(&format!("expected `{key} <value>`"))),
            }
        };
        let epoch = kv_u64("epoch")?;
        let applied_seq = kv_u64("applied_seq")?;
        let vertices = kv_u64("vertices")? as usize;
        let num_blocks = kv_u64("num_blocks")? as usize;

        let assign_line = lines.next().ok_or_else(|| bad("missing assignment"))?;
        let mut toks = assign_line.split_whitespace();
        if toks.next() != Some("assignment") {
            return Err(bad("expected `assignment` line"));
        }
        let assignment: Vec<Block> = toks
            .map(|t| t.parse().map_err(|_| bad("bad block id")))
            .collect::<Result<_, _>>()?;
        if assignment.len() != vertices {
            return Err(bad(&format!(
                "assignment covers {} vertices, header says {vertices}",
                assignment.len()
            )));
        }
        if vertices > 0
            && assignment
                .iter()
                .any(|&b| (b as usize) >= num_blocks.max(1))
        {
            return Err(bad("block id out of range"));
        }

        let edge_header = lines.next().ok_or_else(|| bad("missing edges header"))?;
        let num_edges: usize = match edge_header.split_once(' ') {
            Some(("edges", v)) => v.parse().map_err(|_| bad("bad edge count"))?,
            _ => return Err(bad("expected `edges <count>`")),
        };
        let mut egraph = EvolvingGraph::with_vertices(vertices);
        let mut seen = 0usize;
        let mut dirty = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            let (Some(u), Some(v), Some(w)) = (parts.next(), parts.next(), parts.next()) else {
                return Err(bad("short edge line"));
            };
            let u: Vertex = u.parse().map_err(|_| bad("bad edge source"))?;
            let v: Vertex = v.parse().map_err(|_| bad("bad edge target"))?;
            let w: Weight = w.parse().map_err(|_| bad("bad edge weight"))?;
            if (u as usize) >= vertices || (v as usize) >= vertices {
                return Err(bad("edge endpoint out of range"));
            }
            egraph.apply(
                &Mutation::AddEdge {
                    from: u,
                    to: v,
                    weight: w,
                },
                &mut dirty,
            );
            seen += 1;
        }
        if seen != num_edges {
            return Err(bad(&format!("{seen} edge lines, header says {num_edges}")));
        }
        Ok(Some(PersistedSnapshot {
            epoch,
            applied_seq,
            egraph,
            assignment,
            num_blocks,
        }))
    }

    /// Warm-restart state: the persisted snapshot plus the WAL tail to
    /// replay. `None` when the directory has no snapshot yet *and* no WAL
    /// records (a genuinely fresh start). With no snapshot but a non-empty
    /// WAL, recovery starts from the empty graph at sequence 0.
    pub fn recover(&self) -> Result<Option<Recovery>, HsbpError> {
        let snapshot = self.load_snapshot()?;
        let replayed = wal::replay(&self.wal_path())?;
        if snapshot.is_none() && replayed.records.is_empty() {
            return Ok(None);
        }
        let snapshot = match snapshot {
            Some(s) => s,
            None => PersistedSnapshot {
                epoch: 0,
                applied_seq: 0,
                egraph: EvolvingGraph::default(),
                assignment: Vec::new(),
                num_blocks: 0,
            },
        };
        // The idempotence guard: only records strictly past the snapshot's
        // sequence, and strictly increasing, are replayed. Anything else is
        // a duplicate (double replay, stale WAL) and skipped whole.
        let mut tail = Vec::new();
        let mut skipped = 0usize;
        let mut last = snapshot.applied_seq;
        for (seq, batch) in replayed.records {
            if seq > last {
                last = seq;
                tail.push((seq, batch));
            } else {
                skipped += 1;
            }
        }
        Ok(Some(Recovery {
            snapshot,
            tail,
            torn_tail_dropped: replayed.torn_tail,
            wal_good_bytes: replayed.good_bytes,
            skipped_duplicates: skipped,
        }))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::wal::{FsyncPolicy, Wal};
    use hsbp_graph::Graph;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsbp-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot(epoch: u64, seq: u64) -> Snapshot {
        let g = Arc::new(Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]));
        Snapshot::evaluate(epoch, seq, g, vec![0, 0, 0, 1], 2, false)
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let dir = tmpdir("roundtrip");
        let state = StateDir::open_or_create(&dir, &SbpConfig::default()).unwrap();
        let snap = sample_snapshot(3, 7);
        state.save_snapshot(&snap, || true).unwrap();
        let loaded = state.load_snapshot().unwrap().expect("snapshot present");
        assert_eq!(loaded.epoch, 3);
        assert_eq!(loaded.applied_seq, 7);
        assert_eq!(loaded.assignment, vec![0, 0, 0, 1]);
        assert_eq!(loaded.num_blocks, 2);
        let rebuilt = loaded.egraph.build_csr();
        let a: Vec<_> = rebuilt.edges().collect();
        let b: Vec<_> = snap.graph.edges().collect();
        assert_eq!(a, b, "CSR rebuilt from the stored twin is bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_rename_keeps_previous_snapshot() {
        let dir = tmpdir("prerename");
        let state = StateDir::open_or_create(&dir, &SbpConfig::default()).unwrap();
        state
            .save_snapshot(&sample_snapshot(1, 2), || true)
            .unwrap();
        // A "crash" in the hook: the tmp file exists, the rename never ran.
        state
            .save_snapshot(&sample_snapshot(2, 5), || false)
            .unwrap();
        let loaded = state.load_snapshot().unwrap().unwrap();
        assert_eq!(loaded.epoch, 1, "previous snapshot intact");
        assert_eq!(loaded.applied_seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_replays_only_tail_and_is_idempotent() {
        let dir = tmpdir("idempotent");
        let state = StateDir::open_or_create(&dir, &SbpConfig::default()).unwrap();
        state
            .save_snapshot(&sample_snapshot(2, 3), || true)
            .unwrap();
        let mut wal = Wal::open(&state.wal_path(), FsyncPolicy::Always, 0).unwrap();
        // Seqs 1..=3 are covered by the snapshot (a log never truncated);
        // 4 and 5 are the real tail; a duplicate 4 afterwards simulates a
        // double replay append.
        for seq in 1..=5u64 {
            wal.append(
                seq,
                &[Mutation::AddVertices {
                    count: seq as usize,
                }],
            )
            .unwrap();
        }
        wal.append(4, &[Mutation::AddVertices { count: 99 }])
            .unwrap();
        drop(wal);
        let rec = state.recover().unwrap().expect("state present");
        let seqs: Vec<u64> = rec.tail.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5], "snapshot-covered and stale seqs skipped");
        assert_eq!(rec.skipped_duplicates, 4);
        assert!(!rec.torn_tail_dropped);
        // Recovering twice from the same directory yields the same plan.
        let rec2 = state.recover().unwrap().unwrap();
        let seqs2: Vec<u64> = rec2.tail.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, seqs2);
        assert_eq!(rec.snapshot.assignment, rec2.snapshot.assignment);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identity_mismatch_is_refused() {
        let dir = tmpdir("identity");
        let cfg = SbpConfig::default();
        StateDir::open_or_create(&dir, &cfg).unwrap();
        let mut other = cfg.clone();
        other.seed = cfg.seed.wrapping_add(1);
        assert!(matches!(
            StateDir::open_or_create(&dir, &other),
            Err(HsbpError::Checkpoint { .. })
        ));
        // Same identity reopens fine.
        StateDir::open_or_create(&dir, &cfg).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_directory_recovers_to_none() {
        let dir = tmpdir("fresh");
        let state = StateDir::open_or_create(&dir, &SbpConfig::default()).unwrap();
        assert!(state.recover().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
