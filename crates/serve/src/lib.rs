//! # hsbp-serve — resident community detection over an evolving graph
//!
//! The paper's algorithms are batch runs; this crate turns them into a
//! long-lived daemon. A std-only TCP server speaks line-delimited JSON
//! (one request object in, one response object out) and owns a graph plus
//! its blockmodel behind an epoch-swapped state handle:
//!
//! * **mutations** (`add_edges`, `remove_edges`, `add_vertices`,
//!   `remove_vertex`) are batched through a [`MutationLog`];
//! * **reads** (`membership`, `block_stats`, `mdl`, `status`) are answered
//!   from the latest immutable [`Snapshot`] — concurrently with, and
//!   unblocked by, refinement;
//! * a **background refinement driver** warm-starts from the current
//!   partition and re-sweeps only the dirty region a batch touched
//!   ([`hsbp_core::refine_partition`]), under a [`hsbp_core::RunBudget`],
//!   cooperatively cancelled the moment a newer batch lands;
//! * with a **state directory** ([`ServeConfig::state_dir`]) every accepted
//!   batch is WAL-logged before its acknowledgement ([`wal`]), snapshots
//!   are persisted on a cadence and at clean shutdown ([`recover`]), and a
//!   restarted daemon warm-starts from the snapshot plus the WAL tail;
//! * **back-pressure** bounds the mutation backlog ([`ServeConfig::max_pending`])
//!   with a typed `busy` protocol error, and the serve durability path can
//!   be crash-tested deterministically via a [`faults::ServeFaultPlan`].
//!
//! ```no_run
//! use hsbp_serve::{Server, ServeConfig};
//! use hsbp_graph::Graph;
//!
//! let handle = Server::spawn(ServeConfig::default(), Graph::from_edges(0, &[]))?;
//! println!("listening on {}", handle.local_addr());
//! handle.join();
//! # Ok::<(), hsbp_core::HsbpError>(())
//! ```

// Serving path: no stray unwraps — every socket and lock failure must map
// to a typed error or a degraded-but-alive behaviour.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod faults;
pub mod json;
pub mod mutlog;
pub mod protocol;
pub mod recover;
pub mod server;
pub mod state;
pub mod wal;

pub use faults::ServeFaultPlan;
pub use mutlog::{AppendError, MutationLog};
pub use protocol::{ErrorKind, Request, BENCH_SERVE_SCHEMA_VERSION, PROTOCOL_VERSION};
pub use recover::{PersistedSnapshot, Recovery, StateDir};
pub use server::{ServeConfig, Server, ServerHandle};
pub use state::{BlockStats, EvolvingGraph, Mutation, Snapshot, StateHandle};
pub use wal::FsyncPolicy;
