//! # hsbp-serve — resident community detection over an evolving graph
//!
//! The paper's algorithms are batch runs; this crate turns them into a
//! long-lived daemon. A std-only TCP server speaks line-delimited JSON
//! (one request object in, one response object out) and owns a graph plus
//! its blockmodel behind an epoch-swapped state handle:
//!
//! * **mutations** (`add_edges`, `remove_edges`, `add_vertices`,
//!   `remove_vertex`) are batched through a [`MutationLog`];
//! * **reads** (`membership`, `block_stats`, `mdl`, `status`) are answered
//!   from the latest immutable [`Snapshot`] — concurrently with, and
//!   unblocked by, refinement;
//! * a **background refinement driver** warm-starts from the current
//!   partition and re-sweeps only the dirty region a batch touched
//!   ([`hsbp_core::refine_partition`]), under a [`hsbp_core::RunBudget`],
//!   cooperatively cancelled the moment a newer batch lands.
//!
//! ```no_run
//! use hsbp_serve::{Server, ServeConfig};
//! use hsbp_graph::Graph;
//!
//! let handle = Server::spawn(ServeConfig::default(), Graph::from_edges(0, &[]))?;
//! println!("listening on {}", handle.local_addr());
//! handle.join();
//! # Ok::<(), hsbp_core::HsbpError>(())
//! ```

// Serving path: no stray unwraps — every socket and lock failure must map
// to a typed error or a degraded-but-alive behaviour.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod json;
pub mod mutlog;
pub mod protocol;
pub mod server;
pub mod state;

pub use mutlog::MutationLog;
pub use protocol::{Request, BENCH_SERVE_SCHEMA_VERSION, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server, ServerHandle};
pub use state::{BlockStats, EvolvingGraph, Mutation, Snapshot, StateHandle};
