//! Cost-weighted chunk plans.
//!
//! A [`ChunkPlan`] splits an index range `0..len` into contiguous chunks whose
//! *cost* (not item count) is roughly equal, given a monotone prefix-sum of
//! per-item costs. For the MCMC sweep the cost of evaluating vertex `v` is
//! proportional to its degree, and the CSR offset arrays are exactly the
//! degree prefix-sum — so boundaries come from `O(chunks · log n)` binary
//! searches with no per-vertex work.

use std::ops::Range;

/// Contiguous chunking of `0..len` with per-chunk cost weights.
///
/// Invariants: `bounds` is strictly increasing, starts at 0, ends at `len`;
/// `weights.len() + 1 == bounds.len()` (both empty when `len == 0`).
#[derive(Debug, Clone)]
pub struct ChunkPlan {
    bounds: Vec<usize>,
    weights: Vec<u64>,
}

impl ChunkPlan {
    /// Equal-item-count chunking (each item costs 1).
    pub fn even(len: usize, target_chunks: usize) -> Self {
        Self::from_prefix(len, target_chunks, |i| i as u64)
    }

    /// Chunking from an explicit per-item cost slice.
    pub fn from_costs(costs: &[u64], target_chunks: usize) -> Self {
        let mut prefix = Vec::with_capacity(costs.len() + 1);
        let mut acc = 0u64;
        prefix.push(0u64);
        for &c in costs {
            acc = acc.saturating_add(c);
            prefix.push(acc);
        }
        Self::from_prefix(costs.len(), target_chunks, |i| prefix[i])
    }

    /// Chunking from a monotone cost prefix-sum: `prefix(i)` is the total cost
    /// of items `0..i` (`prefix(0) == 0`). Boundaries are placed at the
    /// `j/target_chunks` quantiles of total cost via binary search, so a
    /// single high-cost item (a hub vertex) gets its own small chunk instead
    /// of dragging its neighbours' work along with it.
    pub fn from_prefix(len: usize, target_chunks: usize, prefix: impl Fn(usize) -> u64) -> Self {
        if len == 0 {
            return Self {
                bounds: vec![0],
                weights: Vec::new(),
            };
        }
        let k = target_chunks.clamp(1, len);
        let total = prefix(len);
        if total == 0 {
            // Degenerate all-zero costs: fall back to item-count splitting.
            return Self::even_counts(len, k);
        }
        let mut bounds = Vec::with_capacity(k + 1);
        let mut weights = Vec::with_capacity(k);
        bounds.push(0usize);
        let mut start = 0usize;
        for j in 1..=k {
            if start >= len {
                break;
            }
            let goal = (u128::from(total) * j as u128 / k as u128) as u64;
            // Smallest end in (start, len] with prefix(end) >= goal.
            let mut lo = start + 1;
            let mut hi = len;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if prefix(mid) >= goal {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let end = if j == k { len } else { lo };
            if end <= start {
                continue; // a hub already swallowed this quantile
            }
            bounds.push(end);
            weights.push(prefix(end) - prefix(start));
            start = end;
        }
        Self { bounds, weights }
    }

    fn even_counts(len: usize, k: usize) -> Self {
        let mut bounds = Vec::with_capacity(k + 1);
        bounds.push(0usize);
        let mut weights = Vec::with_capacity(k);
        for j in 1..=k {
            let end = len * j / k;
            if end <= bounds[bounds.len() - 1] {
                continue;
            }
            weights.push((end - bounds[bounds.len() - 1]) as u64);
            bounds.push(end);
        }
        Self { bounds, weights }
    }

    /// Total number of items covered by the plan.
    #[inline]
    pub fn len(&self) -> usize {
        self.bounds[self.bounds.len() - 1]
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.weights.len()
    }

    /// Index range of chunk `c`.
    #[inline]
    pub fn chunk(&self, c: usize) -> Range<usize> {
        self.bounds[c]..self.bounds[c + 1]
    }

    /// Cost weight of chunk `c`.
    #[inline]
    pub fn weight(&self, c: usize) -> u64 {
        self.weights[c]
    }

    /// Largest single chunk weight — the barrier-limiting quantity.
    pub fn max_weight(&self) -> u64 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all chunk weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(plan: &ChunkPlan, len: usize) {
        assert_eq!(plan.bounds[0], 0);
        assert_eq!(plan.len(), len);
        assert_eq!(plan.weights.len() + 1, plan.bounds.len());
        for w in plan.bounds.windows(2) {
            assert!(w[0] < w[1], "bounds not strictly increasing: {:?}", w);
        }
    }

    #[test]
    fn even_covers_range() {
        for len in [0usize, 1, 2, 7, 100] {
            for k in [1usize, 2, 8, 200] {
                let plan = ChunkPlan::even(len, k);
                check_invariants(&plan, len);
                let total: usize = (0..plan.num_chunks()).map(|c| plan.chunk(c).len()).sum();
                assert_eq!(total, len);
            }
        }
    }

    #[test]
    fn hub_gets_isolated_chunk() {
        // One hub of cost 1000 among 99 items of cost 1. Equal-count chunking
        // at 8 chunks puts the hub with ~12 others; cost-weighted chunking
        // bounds max chunk weight near total/k.
        let mut costs = vec![1u64; 100];
        costs[40] = 1000;
        let weighted = ChunkPlan::from_costs(&costs, 8);
        check_invariants(&weighted, 100);
        assert_eq!(weighted.total_weight(), 1099);
        // The hub chunk necessarily weighs >= 1000, but every *other* chunk
        // must stay near the quantile step (1099/8 ~ 137).
        let non_hub_max = (0..weighted.num_chunks())
            .filter(|&c| !weighted.chunk(c).contains(&40))
            .map(|c| weighted.weight(c))
            .max()
            .unwrap_or(0);
        assert!(non_hub_max <= 150, "non-hub chunk too heavy: {non_hub_max}");
        // Static equal-count chunking drags 1/8 of the items along with the hub.
        let even = ChunkPlan::even(100, 8);
        let even_hub_weight: u64 = (0..even.num_chunks())
            .filter(|&c| even.chunk(c).contains(&40))
            .flat_map(|c| even.chunk(c))
            .map(|i| costs[i])
            .sum();
        assert!(even_hub_weight >= 1000 + 10);
    }

    #[test]
    fn zero_costs_fall_back_to_counts() {
        let plan = ChunkPlan::from_costs(&[0u64; 64], 4);
        check_invariants(&plan, 64);
        assert_eq!(plan.num_chunks(), 4);
        for c in 0..4 {
            assert_eq!(plan.chunk(c).len(), 16);
        }
    }

    #[test]
    fn more_chunks_than_items_clamps() {
        let plan = ChunkPlan::from_costs(&[5, 5, 5], 16);
        check_invariants(&plan, 3);
        assert_eq!(plan.num_chunks(), 3);
    }

    #[test]
    fn prefix_matches_costs() {
        let costs = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let plan_a = ChunkPlan::from_costs(&costs, 3);
        let mut prefix = vec![0u64];
        for &c in &costs {
            prefix.push(prefix[prefix.len() - 1] + c);
        }
        let plan_b = ChunkPlan::from_prefix(costs.len(), 3, |i| prefix[i]);
        assert_eq!(plan_a.bounds, plan_b.bounds);
        assert_eq!(plan_a.weights, plan_b.weights);
        assert_eq!(plan_a.total_weight(), 31);
    }
}
